//! `trass` — command-line interface to a TraSS deployment.
//!
//! ```text
//! trass load   --data <dir> --csv <file> [--extent lon0,lat0,lon1,lat1]
//! trass sim    --data <dir> --query <tid> --eps <deg> [--measure frechet|hausdorff|dtw]
//! trass topk   --data <dir> --query <tid> --k <n> [--measure ...]
//! trass range  --data <dir> --window lon0,lat0,lon1,lat1
//! trass get    --data <dir> --tid <id>
//! trass stats  --data <dir>
//! trass serve  --data <dir> [--addr host:port]
//! ```
//!
//! The deployment lives under `--data`: a sharded on-disk LSM cluster plus
//! a small `config.json` describing the index (resolution, shards, extent)
//! so reopen uses the exact same space.

use std::collections::HashMap;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use trass::core::{query, TrajectoryStore, TrassConfig};
use trass::geo::{Mbr, NormalizedSpace};
use trass::kv::StoreOptions;
use trass::traj::{io as traj_io, Measure};

// Route every allocation through the stage-tagged counting allocator so
// EXPLAIN output and the telemetry endpoint's `/profile?weight=alloc`
// carry real per-stage byte counts.
#[global_allocator]
static ALLOC: trass::obs::CountingAlloc = trass::obs::CountingAlloc::system();

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, flags)) = parse(&args) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match run(&cmd, &flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  trass load   --data <dir> --csv <file> [--extent lon0,lat0,lon1,lat1] [--resolution N] [--shards N]
  trass sim    --data <dir> --query <tid> --eps <deg> [--measure frechet|hausdorff|dtw]
  trass topk   --data <dir> --query <tid> --k <n> [--measure ...]
  trass range  --data <dir> --window lon0,lat0,lon1,lat1
  trass get    --data <dir> --tid <id>
  trass stats  --data <dir>
  trass serve  --data <dir> [--addr host:port]   (addr default: TRASS_SERVE_ADDR, else 127.0.0.1:0)";

fn parse(args: &[String]) -> Option<(String, HashMap<String, String>)> {
    let cmd = args.first()?.clone();
    let mut flags = HashMap::new();
    let mut i = 1;
    while i < args.len() {
        let key = args[i].strip_prefix("--")?;
        let value = args.get(i + 1)?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Some((cmd, flags))
}

fn run(cmd: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let data_dir = PathBuf::from(flags.get("data").ok_or("--data <dir> is required")?);
    match cmd {
        "load" => load(&data_dir, flags),
        "sim" | "topk" | "range" | "get" | "stats" => {
            let store = open_store(&data_dir)?;
            match cmd {
                "sim" => sim(&store, flags),
                "topk" => topk(&store, flags),
                "range" => range(&store, flags),
                "get" => get(&store, flags),
                "stats" => stats(&store),
                _ => unreachable!(),
            }
        }
        "serve" => serve(&data_dir, flags),
        other => Err(format!("unknown command: {other}\n{USAGE}")),
    }
}

fn config_path(dir: &Path) -> PathBuf {
    dir.join("config.json")
}

/// Persisted deployment parameters (the parts of `TrassConfig` that must
/// agree across sessions).
fn save_config(dir: &Path, cfg: &TrassConfig) -> Result<(), String> {
    let e = cfg.space.extent;
    let json = format!(
        r#"{{"max_resolution":{},"shards":{},"extent":[{},{},{},{}],"dp_theta":{}}}"#,
        cfg.max_resolution, cfg.shards, e.min_x, e.min_y, e.max_x, e.max_y, cfg.dp_theta
    );
    std::fs::write(config_path(dir), json).map_err(|e| e.to_string())
}

fn load_config(dir: &Path) -> Result<TrassConfig, String> {
    let text = std::fs::read_to_string(config_path(dir))
        .map_err(|_| format!("no deployment at {} (run `trass load` first)", dir.display()))?;
    let grab = |key: &str| -> Result<f64, String> {
        let pat = format!("\"{key}\":");
        let start = text.find(&pat).ok_or(format!("config missing {key}"))? + pat.len();
        let rest = &text[start..];
        let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
        rest[..end].trim().parse().map_err(|_| format!("bad {key} in config"))
    };
    let extent_start = text.find("\"extent\":[").ok_or("config missing extent")? + 10;
    let extent_end = text[extent_start..].find(']').ok_or("bad extent")? + extent_start;
    let nums: Vec<f64> = text[extent_start..extent_end]
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| "bad extent number".to_string()))
        .collect::<Result<_, _>>()?;
    if nums.len() != 4 {
        return Err("extent must have 4 numbers".into());
    }
    Ok(TrassConfig {
        max_resolution: grab("max_resolution")? as u8,
        shards: grab("shards")? as u8,
        dp_theta: grab("dp_theta")?,
        space: NormalizedSpace::square(Mbr::new(nums[0], nums[1], nums[2], nums[3])),
        store: StoreOptions::at_dir(dir.join("kv")),
        ..TrassConfig::default()
    })
}

fn open_store(dir: &Path) -> Result<TrajectoryStore, String> {
    let cfg = load_config(dir)?;
    TrajectoryStore::open(cfg).map_err(|e| e.to_string())
}

fn parse_mbr(spec: &str) -> Result<Mbr, String> {
    let nums: Vec<f64> = spec
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad number in '{spec}'")))
        .collect::<Result<_, _>>()?;
    if nums.len() != 4 {
        return Err("expected lon0,lat0,lon1,lat1".into());
    }
    Ok(Mbr::from_corners(
        trass::geo::Point::new(nums[0], nums[1]),
        trass::geo::Point::new(nums[2], nums[3]),
    ))
}

fn parse_measure(flags: &HashMap<String, String>) -> Result<Measure, String> {
    flags.get("measure").map(|m| m.parse::<Measure>()).transpose()?.map_or(Ok(Measure::Frechet), Ok)
}

fn load(dir: &Path, flags: &HashMap<String, String>) -> Result<(), String> {
    let csv = flags.get("csv").ok_or("--csv <file> is required")?;
    let file = std::fs::File::open(csv).map_err(|e| format!("open {csv}: {e}"))?;
    let (trajectories, report) =
        traj_io::read_csv(BufReader::new(file)).map_err(|e| e.to_string())?;
    if trajectories.is_empty() {
        return Err("no trajectories in input".into());
    }
    let extent = match flags.get("extent") {
        Some(spec) => parse_mbr(spec)?,
        None => trajectories
            .iter()
            .map(|t| t.mbr())
            .reduce(|a, b| a.union(&b))
            .expect("non-empty")
            .extended(0.01),
    };
    let cfg = TrassConfig {
        max_resolution: flags
            .get("resolution")
            .map(|r| r.parse().map_err(|_| "bad --resolution"))
            .transpose()?
            .unwrap_or(16),
        shards: flags
            .get("shards")
            .map(|s| s.parse().map_err(|_| "bad --shards"))
            .transpose()?
            .unwrap_or(8),
        space: NormalizedSpace::square(extent),
        store: StoreOptions::at_dir(dir.join("kv")),
        ..TrassConfig::default()
    };
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    save_config(dir, &cfg)?;
    let store = TrajectoryStore::open(cfg).map_err(|e| e.to_string())?;
    let n = store.insert_all(&trajectories).map_err(|e| e.to_string())?;
    store.flush().map_err(|e| e.to_string())?;
    println!(
        "loaded {n} trajectories ({} points, {} lines skipped) into {}",
        report.points,
        report.skipped,
        dir.display()
    );
    Ok(())
}

/// Serves the deployment over the wire protocol until a client sends the
/// shutdown op (or the process is killed). The optional telemetry
/// endpoint starts alongside when the config names an address.
fn serve(dir: &Path, flags: &HashMap<String, String>) -> Result<(), String> {
    let store = std::sync::Arc::new(open_store(dir)?);
    let telemetry = match store.config().telemetry_addr.clone() {
        Some(_) => {
            let t = store.serve_telemetry().map_err(|e| format!("telemetry: {e}"))?;
            println!("telemetry listening on http://{}", t.local_addr());
            Some(t)
        }
        None => None,
    };
    let mut opts = trass::server::ServerOptions::default();
    if let Some(addr) = flags.get("addr") {
        opts.addr = addr.clone();
    }
    let mut server = trass::server::TrassServer::serve(std::sync::Arc::clone(&store), opts)
        .map_err(|e| format!("bind {}: {e}", flags.get("addr").map_or("default addr", |a| a)))?;
    println!("trass-server listening on {}", server.local_addr());
    server.wait();
    server.shutdown();
    drop(telemetry);
    println!("trass-server: shut down cleanly");
    Ok(())
}

fn query_trajectory(
    store: &TrajectoryStore,
    flags: &HashMap<String, String>,
) -> Result<trass::traj::Trajectory, String> {
    let tid: u64 = flags
        .get("query")
        .ok_or("--query <tid> is required")?
        .parse()
        .map_err(|_| "bad --query id")?;
    store.get(tid).map_err(|e| e.to_string())?.ok_or(format!("trajectory {tid} not found"))
}

fn sim(store: &TrajectoryStore, flags: &HashMap<String, String>) -> Result<(), String> {
    let q = query_trajectory(store, flags)?;
    let eps: f64 =
        flags.get("eps").ok_or("--eps <deg> is required")?.parse().map_err(|_| "bad --eps")?;
    let measure = parse_measure(flags)?;
    let r = query::threshold_search(store, &q, eps, measure).map_err(|e| e.to_string())?;
    println!("{} matches within {eps}° ({measure}):", r.results.len());
    for (tid, d) in &r.results {
        println!("  {tid}\t{d:.6}");
    }
    print_stats(&r.stats);
    Ok(())
}

fn topk(store: &TrajectoryStore, flags: &HashMap<String, String>) -> Result<(), String> {
    let q = query_trajectory(store, flags)?;
    let k: usize = flags.get("k").ok_or("--k <n> is required")?.parse().map_err(|_| "bad --k")?;
    let measure = parse_measure(flags)?;
    let r = query::top_k_search(store, &q, k, measure).map_err(|e| e.to_string())?;
    println!("top-{k} ({measure}):");
    for (tid, d) in &r.results {
        println!("  {tid}\t{d:.6}");
    }
    print_stats(&r.stats);
    Ok(())
}

fn range(store: &TrajectoryStore, flags: &HashMap<String, String>) -> Result<(), String> {
    let window = parse_mbr(flags.get("window").ok_or("--window is required")?)?;
    let r = query::range_search(store, &window).map_err(|e| e.to_string())?;
    println!("{} trajectories intersect the window:", r.results.len());
    for (tid, _) in &r.results {
        println!("  {tid}");
    }
    print_stats(&r.stats);
    Ok(())
}

fn get(store: &TrajectoryStore, flags: &HashMap<String, String>) -> Result<(), String> {
    let tid: u64 =
        flags.get("tid").ok_or("--tid <id> is required")?.parse().map_err(|_| "bad --tid")?;
    match store.get(tid).map_err(|e| e.to_string())? {
        Some(t) => {
            println!("trajectory {tid}: {} points", t.len());
            for p in t.points() {
                println!("  {},{}", p.x, p.y);
            }
            Ok(())
        }
        None => Err(format!("trajectory {tid} not found")),
    }
}

fn stats(store: &TrajectoryStore) -> Result<(), String> {
    let counts = store.cluster().region_entry_counts();
    let total: u64 = counts.iter().sum();
    println!("regions: {}", counts.len());
    println!("rows (upper bound incl. shadowed): {total}");
    for (i, c) in counts.iter().enumerate() {
        println!("  region {i}: {c}");
    }
    let m = store.cluster().metrics_snapshot();
    println!(
        "io since open: {} scans, {} rows scanned, {} blocks, {} bytes, {} cache hits",
        m.range_scans, m.entries_scanned, m.blocks_read, m.bytes_read, m.cache_hits
    );
    Ok(())
}

fn print_stats(s: &trass::core::QueryStats) {
    println!(
        "-- {} ranges, {} rows retrieved, {} candidates, precision {:.3}, {:.2} ms total",
        s.n_ranges,
        s.retrieved,
        s.candidates,
        s.precision(),
        s.total_time().as_secs_f64() * 1e3
    );
}
