//! # TraSS — trajectory similarity search on key-value data stores
//!
//! Umbrella crate re-exporting the full workspace API. See the individual
//! crates for deep documentation:
//!
//! * [`geo`] — geometry kernel (points, MBRs, oriented boxes).
//! * [`traj`] — trajectories, similarity measures, Douglas-Peucker
//!   features, workload generators, CSV/T-Drive I/O.
//! * [`kv`] — the embedded LSM key-value store and sharded cluster.
//! * [`index`] — the XZ\* index (the paper's contribution), XZ-Ordering,
//!   and an R-tree substrate.
//! * [`core`] — the TraSS framework: storage schema plus threshold, top-k,
//!   and spatial-range queries.
//! * [`obs`] — observability: metrics, tracing, the telemetry endpoint,
//!   and stage-tagged allocation/CPU profiling.
//! * [`server`] — the network front-end: a length-prefixed binary wire
//!   protocol over TCP, a thread-per-connection server, and a client.
//! * [`baselines`] — the comparison engines of the paper's evaluation.
//!
//! # Example
//!
//! ```
//! use trass::core::{query, TrassConfig, TrajectoryStore};
//! use trass::geo::Point;
//! use trass::traj::{Measure, Trajectory};
//!
//! let store = TrajectoryStore::open(TrassConfig::default()).unwrap();
//! store.insert(&Trajectory::new(1, vec![
//!     Point::new(116.397, 39.909),
//!     Point::new(116.403, 39.915),
//! ])).unwrap();
//!
//! let q = Trajectory::new(0, vec![Point::new(116.398, 39.910)]);
//! let hits = query::threshold_search(&store, &q, 0.02, Measure::Frechet).unwrap();
//! assert_eq!(hits.results.len(), 1);
//!
//! let by_id = store.get(1).unwrap().unwrap();
//! assert_eq!(by_id.len(), 2);
//! ```

#![forbid(unsafe_code)]

pub use trass_baselines as baselines;
pub use trass_core as core;
pub use trass_geo as geo;
pub use trass_index as index;
pub use trass_kv as kv;
pub use trass_obs as obs;
pub use trass_server as server;
pub use trass_traj as traj;
