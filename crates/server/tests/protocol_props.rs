//! Property tests for the wire protocol: randomized byte-level
//! round-trips plus directed malformed-input coverage. No external
//! property-testing crate — a seeded xorshift64* generator drives the
//! randomized cases, so every failure is reproducible from the seed.

use trass_geo::Point;
use trass_server::protocol::{
    self, decode_request, decode_response, encode_request, encode_response, ErrorCode, FrameHeader,
    Op, QueryRef, Request, Response, ALL_OPS, HEADER_LEN, PROTOCOL_VERSION, STATUS_OK,
};
use trass_traj::{Measure, Trajectory};

const ITERS: usize = 250;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() as usize) % (hi - lo + 1)
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// A finite-or-infinite distance value, biased toward edge cases
    /// whose bit patterns must survive the wire exactly.
    fn distance(&mut self) -> f64 {
        match self.next() % 8 {
            0 => 0.0,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::MIN_POSITIVE,
            _ => self.f64_in(-1e6, 1e6),
        }
    }

    fn trajectory(&mut self) -> Trajectory {
        let id = self.next();
        let n = self.usize_in(1, 6);
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(self.f64_in(-180.0, 180.0), self.f64_in(-90.0, 90.0)))
            .collect();
        Trajectory::try_new(id, points).expect("generated trajectory is valid")
    }

    fn query_ref(&mut self) -> QueryRef {
        if self.next() % 2 == 0 {
            QueryRef::Stored(self.next())
        } else {
            QueryRef::Inline(self.trajectory())
        }
    }

    fn measure(&mut self) -> Measure {
        match self.next() % 3 {
            0 => Measure::Frechet,
            1 => Measure::Hausdorff,
            _ => Measure::Dtw,
        }
    }

    fn inner_request(&mut self) -> Request {
        match self.next() % 3 {
            0 => Request::Threshold {
                query: self.query_ref(),
                eps: self.f64_in(0.0, 10.0),
                measure: self.measure(),
            },
            1 => Request::TopK {
                query: self.query_ref(),
                k: (self.next() % 100) as u32,
                measure: self.measure(),
            },
            _ => {
                let x0 = self.f64_in(-180.0, 180.0);
                let y0 = self.f64_in(-90.0, 90.0);
                Request::Range { window: [x0, y0, x0 + 1.0, y0 + 1.0] }
            }
        }
    }

    fn request(&mut self) -> Request {
        match self.next() % 8 {
            0..=2 => self.inner_request(),
            3 => Request::Ingest {
                trajectories: (0..self.usize_in(0, 4)).map(|_| self.trajectory()).collect(),
            },
            4 => Request::Explain { inner: Box::new(self.inner_request()) },
            5 => Request::Health,
            6 => Request::Stats,
            _ => Request::Shutdown,
        }
    }

    fn results(&mut self) -> Vec<(u64, f64)> {
        (0..self.usize_in(0, 8)).map(|_| (self.next(), self.distance())).collect()
    }

    fn string(&mut self) -> String {
        let n = self.usize_in(0, 12);
        (0..n).map(|_| char::from(b'a' + (self.next() % 26) as u8)).collect()
    }

    /// A response whose payload shape matches `request_op`.
    fn response_for(&mut self, request_op: Op) -> Response {
        if self.next() % 5 == 0 {
            let code = ErrorCode::from_code((self.next() % 7 + 1) as u8)
                .expect("codes 1..=7 are all defined");
            return Response::Error { code, message: self.string() };
        }
        match request_op {
            Op::Threshold | Op::TopK | Op::Range => Response::Results(self.results()),
            Op::Ingest => Response::Ingested((self.next() % 1_000) as u32),
            Op::Explain => Response::Explained { results: self.results(), trace: self.string() },
            Op::Health => Response::Health(self.string()),
            Op::Stats => Response::Stats(self.string()),
            Op::Shutdown => Response::ShuttingDown,
        }
    }
}

fn split_frame(bytes: &[u8]) -> (FrameHeader, &[u8]) {
    let header = FrameHeader::parse(bytes).expect("frame has a header");
    let payload = &bytes[HEADER_LEN..];
    assert_eq!(payload.len(), header.payload_len as usize, "frame length is self-consistent");
    assert_eq!(header.version, PROTOCOL_VERSION);
    (header, payload)
}

// ---------------------------------------------------------------------------
// Round-trips
// ---------------------------------------------------------------------------

#[test]
fn request_roundtrip_is_byte_identical() {
    let mut rng = Rng::new(0x7a55_0001);
    for i in 0..ITERS {
        let req = rng.request();
        let bytes = encode_request(&req).expect("encode");
        let (header, payload) = split_frame(&bytes);
        let decoded = decode_request(header.op, payload)
            .unwrap_or_else(|e| panic!("iter {i}: decode failed for {req:?}: {e}"));
        assert_eq!(decoded, req, "iter {i}: structural round-trip");
        let re = encode_request(&decoded).expect("re-encode");
        assert_eq!(re, bytes, "iter {i}: byte-level round-trip");
    }
}

#[test]
fn response_roundtrip_is_byte_identical() {
    let mut rng = Rng::new(0x7a55_0002);
    for i in 0..ITERS {
        let op = ALL_OPS[rng.usize_in(0, ALL_OPS.len() - 1)];
        let resp = rng.response_for(op);
        let bytes = encode_response(&resp).expect("encode");
        let (header, payload) = split_frame(&bytes);
        let decoded = decode_response(op, header.op, payload)
            .unwrap_or_else(|e| panic!("iter {i}: decode failed for {resp:?}: {e}"));
        let re = encode_response(&decoded).expect("re-encode");
        assert_eq!(re, bytes, "iter {i}: byte-level round-trip for {resp:?}");
    }
}

#[test]
fn distance_bits_survive_the_wire() {
    // The byte-identity contract: distances come back with the exact bit
    // pattern they were encoded with, including -0.0 and infinity.
    let specials = [0.0f64, -0.0, f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE, 1.0 / 3.0];
    let results: Vec<(u64, f64)> =
        specials.iter().enumerate().map(|(i, d)| (i as u64, *d)).collect();
    let bytes = encode_response(&Response::Results(results.clone())).expect("encode");
    let (header, payload) = split_frame(&bytes);
    match decode_response(Op::Threshold, header.op, payload).expect("decode") {
        Response::Results(got) => {
            for ((tid, want), (got_tid, got_d)) in results.iter().zip(&got) {
                assert_eq!(tid, got_tid);
                assert_eq!(want.to_bits(), got_d.to_bits(), "bits for {want}");
            }
        }
        other => panic!("unexpected response: {other:?}"),
    }
}

#[test]
fn frame_header_roundtrip() {
    let mut rng = Rng::new(0x7a55_0003);
    for _ in 0..ITERS {
        let header = FrameHeader {
            payload_len: rng.next() as u32,
            version: rng.next() as u8,
            op: rng.next() as u8,
        };
        assert_eq!(FrameHeader::parse(&header.encode()), Some(header));
    }
    for short in 0..HEADER_LEN {
        assert_eq!(FrameHeader::parse(&vec![0u8; short]), None, "short header of {short} bytes");
    }
}

// ---------------------------------------------------------------------------
// Malformed inputs decode to clean errors, never panics
// ---------------------------------------------------------------------------

#[test]
fn every_truncation_of_every_request_is_rejected() {
    let mut rng = Rng::new(0x7a55_0004);
    for i in 0..ITERS {
        let req = rng.request();
        let bytes = encode_request(&req).expect("encode");
        let (header, payload) = split_frame(&bytes);
        for cut in 0..payload.len() {
            let err = decode_request(header.op, &payload[..cut]).expect_err("truncated decodes");
            assert!(
                matches!(err.code, ErrorCode::Malformed | ErrorCode::BadRequest),
                "iter {i} cut {cut}: unexpected code {:?} for {req:?}",
                err.code
            );
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut rng = Rng::new(0x7a55_0005);
    for _ in 0..ITERS {
        let req = rng.request();
        let bytes = encode_request(&req).expect("encode");
        let (header, payload) = split_frame(&bytes);
        let mut extended = payload.to_vec();
        extended.push(rng.next() as u8);
        let err = decode_request(header.op, &extended).expect_err("trailing byte decodes");
        // Usually Malformed ("trailing bytes"); an extended ingest payload
        // may instead fail while parsing the extra byte as data.
        assert!(
            matches!(err.code, ErrorCode::Malformed | ErrorCode::BadRequest),
            "unexpected code {:?}",
            err.code
        );
    }
}

#[test]
fn unknown_opcodes_are_rejected_without_panic() {
    let known: Vec<u8> = ALL_OPS.iter().map(|op| op.code()).collect();
    for code in 0u8..=255 {
        if known.contains(&code) {
            continue;
        }
        let err = decode_request(code, &[]).expect_err("unknown opcode decodes");
        assert_eq!(err.code, ErrorCode::UnknownOp, "opcode 0x{code:02X}");
    }
}

#[test]
fn random_bytes_never_panic_the_decoder() {
    let mut rng = Rng::new(0x7a55_0006);
    for _ in 0..2_000 {
        let op = rng.next() as u8;
        let len = rng.usize_in(0, 64);
        let payload: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        // Any outcome is fine — the property is "returns, never panics".
        let _ = decode_request(op, &payload);
        let status = rng.next() as u8;
        let _ = decode_response(ALL_OPS[rng.usize_in(0, ALL_OPS.len() - 1)], status, &payload);
    }
}

#[test]
fn oversized_counts_are_rejected_before_allocation() {
    // ingest.count = u32::MAX with an empty body must fail fast.
    let mut payload = u32::MAX.to_le_bytes().to_vec();
    let err = decode_request(Op::Ingest.code(), &payload).expect_err("bogus count decodes");
    assert_eq!(err.code, ErrorCode::Malformed);

    // Same for a trajectory's point count inside a threshold query.
    payload = vec![1]; // inline tag
    payload.extend_from_slice(&7u64.to_le_bytes()); // id
    payload.extend_from_slice(&u32::MAX.to_le_bytes()); // point count
    let err = decode_request(Op::Threshold.code(), &payload).expect_err("bogus points decode");
    assert_eq!(err.code, ErrorCode::Malformed);

    // And for a response's result count.
    let err = decode_response(Op::Range, STATUS_OK, &u32::MAX.to_le_bytes())
        .expect_err("bogus results decode");
    assert_eq!(err.code, ErrorCode::Malformed);
}

#[test]
fn semantic_violations_are_bad_request() {
    // Unknown measure code.
    let mut payload = vec![0]; // stored tag
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&0.5f64.to_bits().to_le_bytes());
    payload.push(9); // measure
    let err = decode_request(Op::Threshold.code(), &payload).expect_err("bad measure decodes");
    assert_eq!(err.code, ErrorCode::BadRequest);

    // Negative eps.
    let mut payload = vec![0];
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&(-1.0f64).to_bits().to_le_bytes());
    payload.push(0);
    let err = decode_request(Op::Threshold.code(), &payload).expect_err("negative eps decodes");
    assert_eq!(err.code, ErrorCode::BadRequest);

    // NaN range window coordinate.
    let mut payload = Vec::new();
    for v in [f64::NAN, 0.0, 1.0, 1.0] {
        payload.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    let err = decode_request(Op::Range.code(), &payload).expect_err("NaN window decodes");
    assert_eq!(err.code, ErrorCode::BadRequest);

    // Zero-point inline trajectory.
    let mut payload = vec![1];
    payload.extend_from_slice(&3u64.to_le_bytes());
    payload.extend_from_slice(&0u32.to_le_bytes());
    payload.extend_from_slice(&0.5f64.to_bits().to_le_bytes());
    payload.push(0);
    let err = decode_request(Op::Threshold.code(), &payload).expect_err("empty inline decodes");
    assert_eq!(err.code, ErrorCode::BadRequest);

    // Nested explain.
    let mut payload = vec![Op::Explain.code()];
    payload.push(Op::Range.code());
    let err = decode_request(Op::Explain.code(), &payload).expect_err("nested explain decodes");
    assert_eq!(err.code, ErrorCode::BadRequest);

    // Explain wrapping a non-query op.
    let payload = vec![Op::Shutdown.code()];
    let err = decode_request(Op::Explain.code(), &payload).expect_err("explain shutdown decodes");
    assert_eq!(err.code, ErrorCode::BadRequest);
}

#[test]
fn bad_utf8_in_strings_is_malformed() {
    let mut payload = 2u32.to_le_bytes().to_vec();
    payload.extend_from_slice(&[0xFF, 0xFE]);
    let err = decode_response(Op::Health, STATUS_OK, &payload).expect_err("bad UTF-8 decodes");
    assert_eq!(err.code, ErrorCode::Malformed);

    let err = decode_response(Op::Health, ErrorCode::Internal.code(), &payload)
        .expect_err("bad UTF-8 error message decodes");
    assert_eq!(err.code, ErrorCode::Malformed);
}

#[test]
fn unknown_query_ref_tag_is_malformed() {
    let mut payload = vec![7]; // neither 0 nor 1
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&0.5f64.to_bits().to_le_bytes());
    payload.push(0);
    let err = decode_request(Op::Threshold.code(), &payload).expect_err("bad tag decodes");
    assert_eq!(err.code, ErrorCode::Malformed);
}

#[test]
fn unknown_response_status_is_malformed() {
    let err = decode_response(Op::Health, 0xEE, &[]).expect_err("unknown status decodes");
    assert_eq!(err.code, ErrorCode::Malformed);
}

#[test]
fn op_and_error_code_tables_are_bijective() {
    for op in ALL_OPS {
        assert_eq!(Op::from_code(op.code()), Some(op));
        assert!(!op.name().is_empty());
    }
    for code in 1u8..=7 {
        let e = ErrorCode::from_code(code).expect("codes 1..=7 defined");
        assert_eq!(e.code(), code);
        assert!(!e.name().is_empty());
    }
    assert_eq!(ErrorCode::from_code(STATUS_OK), None);
    assert_eq!(ErrorCode::from_code(0x55), None);
}

#[test]
fn window_mbr_matches_corners() {
    let m = protocol::window_mbr(&[1.0, 2.0, 3.0, 4.0]);
    assert!(m.contains_point(&Point::new(2.0, 3.0)));
    assert!(!m.contains_point(&Point::new(5.0, 3.0)));
}
