//! End-to-end tests: a live in-process server over a seeded store, with
//! every wire result asserted byte-identical (`f64::to_bits`) to
//! embedded execution, concurrent clients, malformed-frame robustness,
//! and graceful shutdown.

use std::net::TcpListener;
use std::sync::Arc;
use trass_core::config::TrassConfig;
use trass_core::query;
use trass_core::store::TrajectoryStore;
use trass_server::protocol::{self, ErrorCode, Op, QueryRef, Request};
use trass_server::{ClientError, ServerOptions, TrassClient, TrassServer};
use trass_traj::{generator, Measure, Trajectory};

const SEED: u64 = 4242;
const EPS: f64 = 0.01;
const K: u32 = 10;

fn build_store(n: usize) -> Arc<TrajectoryStore> {
    let cfg = TrassConfig { max_resolution: 12, trace_sample_every: 0, ..TrassConfig::default() };
    let store = TrajectoryStore::open(cfg).expect("valid config");
    let data = generator::tdrive_like(SEED, n);
    store.insert_all(&data).expect("insert");
    store.flush().expect("flush");
    Arc::new(store)
}

fn start(store: &Arc<TrajectoryStore>) -> TrassServer {
    let opts = ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        max_frame_bytes: protocol::DEFAULT_MAX_FRAME_BYTES,
    };
    TrassServer::serve(Arc::clone(store), opts).expect("bind")
}

fn queries(n: usize) -> Vec<Trajectory> {
    let data = generator::tdrive_like(SEED, 200);
    generator::sample_queries(&data, n, SEED + 1)
}

/// Asserts two result sets are byte-identical: same order, same tids,
/// same IEEE-754 bit patterns.
fn assert_bit_identical(wire: &[(u64, f64)], embedded: &[(u64, f64)], what: &str) {
    assert_eq!(wire.len(), embedded.len(), "{what}: result count");
    for (i, ((wt, wd), (et, ed))) in wire.iter().zip(embedded).enumerate() {
        assert_eq!(wt, et, "{what}[{i}]: tid");
        assert_eq!(wd.to_bits(), ed.to_bits(), "{what}[{i}]: distance bits");
    }
}

#[test]
fn wire_results_are_byte_identical_to_embedded() {
    let store = build_store(200);
    let server = start(&store);
    let mut client = TrassClient::connect(server.local_addr()).expect("connect");

    for q in queries(4) {
        let embedded =
            query::threshold_search(&store, &q, EPS, Measure::Frechet).expect("embedded");
        let wire = client
            .threshold(QueryRef::Inline(q.clone()), EPS, Measure::Frechet)
            .expect("wire threshold");
        assert_bit_identical(&wire, &embedded.results, "threshold");

        let embedded =
            query::top_k_search(&store, &q, K as usize, Measure::Frechet).expect("embedded topk");
        let wire =
            client.top_k(QueryRef::Inline(q.clone()), K, Measure::Frechet).expect("wire topk");
        assert_bit_identical(&wire, &embedded.results, "topk");

        let m = q.mbr().extended(0.02);
        let window = [m.min_x, m.min_y, m.max_x, m.max_y];
        let embedded =
            query::range_search(&store, &protocol::window_mbr(&window)).expect("embedded range");
        let wire = client.range(window).expect("wire range");
        assert_bit_identical(&wire, &embedded.results, "range");

        // Explain returns the same result set plus a non-empty trace.
        let (wire_results, trace) = client
            .explain(Request::Threshold {
                query: QueryRef::Inline(q.clone()),
                eps: EPS,
                measure: Measure::Frechet,
            })
            .expect("wire explain");
        let embedded =
            query::threshold_search(&store, &q, EPS, Measure::Frechet).expect("embedded");
        assert_bit_identical(&wire_results, &embedded.results, "explain");
        assert!(!trace.is_empty(), "explain trace should render");
    }
}

#[test]
fn stored_query_refs_resolve_against_the_store() {
    let store = build_store(100);
    let server = start(&store);
    let mut client = TrassClient::connect(server.local_addr()).expect("connect");

    let tid = 1u64;
    let q = store.get(tid).expect("store read").expect("trajectory 1 exists");
    let embedded = query::threshold_search(&store, &q, EPS, Measure::Frechet).expect("embedded");
    let wire = client.threshold(QueryRef::Stored(tid), EPS, Measure::Frechet).expect("wire stored");
    assert_bit_identical(&wire, &embedded.results, "stored threshold");

    // A missing tid is an in-protocol not-found, not a dead connection.
    match client.threshold(QueryRef::Stored(u64::MAX), EPS, Measure::Frechet) {
        Err(ClientError::Server { code: ErrorCode::NotFound, .. }) => {}
        other => panic!("expected not-found, got {other:?}"),
    }
    // And the connection still works afterwards.
    assert!(client.health().expect("health after error").contains("status: ok"));
}

#[test]
fn ingest_over_the_wire_lands_in_the_store() {
    let store = build_store(50);
    let server = start(&store);
    let mut client = TrassClient::connect(server.local_addr()).expect("connect");

    let fresh = generator::tdrive_like(SEED + 99, 3)
        .into_iter()
        .enumerate()
        .map(|(i, t)| Trajectory::try_new(900_000 + i as u64, t.points().to_vec()).expect("valid"))
        .collect::<Vec<_>>();
    let n = client.ingest(fresh.clone()).expect("wire ingest");
    assert_eq!(n, 3);
    for t in &fresh {
        let got = store.get(t.id).expect("store read").expect("ingested trajectory");
        assert_eq!(got.len(), t.len(), "trajectory {} round-trips", t.id);
    }
}

#[test]
fn eight_concurrent_clients_all_see_identical_results() {
    let store = build_store(200);
    let server = start(&store);
    let addr = server.local_addr();

    let qs = queries(4);
    // Precompute the embedded truth once; every client must match it.
    let expected: Vec<Vec<(u64, f64)>> = qs
        .iter()
        .map(|q| {
            query::threshold_search(&store, q, EPS, Measure::Frechet).expect("embedded").results
        })
        .collect();

    std::thread::scope(|s| {
        for c in 0..8 {
            let qs = &qs;
            let expected = &expected;
            s.spawn(move || {
                let mut client = TrassClient::connect(addr).expect("connect");
                for j in 0..8 {
                    let i = (c + j) % qs.len();
                    let wire = client
                        .threshold(QueryRef::Inline(qs[i].clone()), EPS, Measure::Frechet)
                        .expect("wire threshold");
                    assert_bit_identical(&wire, &expected[i], "concurrent threshold");
                }
            });
        }
    });
}

#[test]
fn malformed_frames_get_clean_errors_and_the_server_survives() {
    let store = build_store(50);
    let server = start(&store);
    let addr = server.local_addr();

    // Unknown opcode: error response, connection keeps working.
    let mut client = TrassClient::connect(addr).expect("connect");
    let reply = client.send_raw(&protocol::frame(0x7E, &[]).expect("frame")).expect("reply");
    assert_eq!(reply.status, ErrorCode::UnknownOp.code());
    assert!(client.health().expect("health after unknown op").contains("status: ok"));

    // Garbage payload under a valid opcode: malformed, connection survives.
    let reply = client
        .send_raw(&protocol::frame(Op::Threshold.code(), &[0xAB]).expect("frame"))
        .expect("reply");
    assert_eq!(reply.status, ErrorCode::Malformed.code());
    assert!(client.health().expect("health after malformed").contains("status: ok"));

    // Unsupported version: error response, then the server hangs up.
    let mut probe = TrassClient::connect(addr).expect("connect");
    let reply = probe.send_raw(&[0, 0, 0, 0, 9, Op::Health.code()]).expect("reply");
    assert_eq!(reply.status, ErrorCode::UnsupportedVersion.code());
    assert!(probe.health().is_err(), "connection should be closed after a version violation");

    // Oversized length prefix: error response, then hang-up, no buffering.
    let mut probe = TrassClient::connect(addr).expect("connect");
    let mut bytes = u32::MAX.to_le_bytes().to_vec();
    bytes.push(protocol::PROTOCOL_VERSION);
    bytes.push(Op::Health.code());
    let reply = probe.send_raw(&bytes).expect("reply");
    assert_eq!(reply.status, ErrorCode::TooLarge.code());

    // A truncated frame followed by disconnect leaves nothing to answer.
    let mut probe = TrassClient::connect(addr).expect("connect");
    let header = protocol::FrameHeader {
        payload_len: 64,
        version: protocol::PROTOCOL_VERSION,
        op: Op::Threshold.code(),
    };
    let mut bytes = header.encode().to_vec();
    bytes.extend_from_slice(&[1, 2, 3]);
    probe.send_raw_no_reply(&bytes).expect("send");
    drop(probe);

    // The original connection and fresh connections both still work.
    assert!(client.health().expect("health after suite").contains("status: ok"));
    let mut fresh = TrassClient::connect(addr).expect("connect");
    assert!(fresh.health().expect("fresh health").contains("status: ok"));
}

#[test]
fn graceful_shutdown_joins_threads_and_releases_the_port() {
    let store = build_store(50);
    let mut server = start(&store);
    let addr = server.local_addr();

    let mut client = TrassClient::connect(addr).expect("connect");
    client.health().expect("health");
    client.shutdown_server().expect("wire shutdown");

    // wait() observes the wire-initiated shutdown; shutdown() then joins
    // the accept thread and every connection thread.
    server.wait();
    server.shutdown();
    drop(server);

    // All threads joined and the listener closed: the port rebinds.
    TcpListener::bind(addr).expect("port released after shutdown");
}

#[test]
fn shutdown_is_idempotent_and_safe_without_clients() {
    let store = build_store(10);
    let mut server = start(&store);
    server.shutdown();
    server.shutdown();
    server.wait(); // already done: returns immediately
}

#[test]
fn server_metrics_are_registered_and_counted() {
    let store = build_store(50);
    let server = start(&store);
    let mut client = TrassClient::connect(server.local_addr()).expect("connect");

    let q = queries(1).remove(0);
    client.threshold(QueryRef::Inline(q), EPS, Measure::Frechet).expect("threshold");
    client.health().expect("health");
    // One protocol error to move the error counter.
    let _ = client.send_raw(&protocol::frame(0x7E, &[]).expect("frame")).expect("reply");

    let prom = store.render_prometheus();
    for series in [
        "trass_server_connections_total",
        "trass_server_active_connections",
        "trass_server_requests_total",
        "trass_server_request_seconds",
        "trass_server_protocol_errors_total",
    ] {
        assert!(prom.contains(series), "{series} missing from prometheus export");
    }
    // Per-op series carry the op label and actually counted.
    assert!(prom.contains("op=\"threshold\""), "per-op label missing");
    for line in prom.lines() {
        if line.starts_with("trass_server_protocol_errors_total") {
            let v: f64 = line.rsplit(' ').next().and_then(|t| t.parse().ok()).unwrap_or(0.0);
            assert!(v >= 1.0, "protocol error counter should have moved: {line}");
        }
    }

    // Wire stats is the same registry snapshot.
    let stats = client.stats().expect("stats");
    assert!(stats.contains("trass_server_requests_total"), "stats lacks server series");
}
