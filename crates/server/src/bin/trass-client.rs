//! `trass-client` — command-line client for a running `trass serve`.
//!
//! ```text
//! trass-client threshold --addr <host:port> --query <tid> --eps <deg> [--measure ...]
//! trass-client topk      --addr <host:port> --query <tid> --k <n> [--measure ...]
//! trass-client range     --addr <host:port> --window lon0,lat0,lon1,lat1
//! trass-client ingest    --addr <host:port> --csv <file>
//! trass-client explain   --addr <host:port> --op threshold|topk|range [op flags]
//! trass-client health    --addr <host:port>
//! trass-client stats     --addr <host:port>
//! trass-client shutdown  --addr <host:port>
//! trass-client badframe  --addr <host:port>
//! ```
//!
//! `--addr` falls back to `TRASS_SERVE_ADDR`. Query commands print
//! result lines in exactly the embedded CLI's format (`  <tid>\t<dist>`
//! for similarity, `  <tid>` for range) so CI can diff wire output
//! against `trass sim` / `trass topk` / `trass range`; summaries go to
//! stderr. `badframe` ships a suite of malformed frames and verifies the
//! server answers each with a clean protocol error and stays up.

use std::collections::HashMap;
use std::io::BufReader;
use std::process::ExitCode;
use trass_server::protocol::{self, ErrorCode, Op, QueryRef, Request};
use trass_server::{ClientError, TrassClient};
use trass_traj::io as traj_io;
use trass_traj::Measure;

const USAGE: &str = "\
usage:
  trass-client threshold --addr <host:port> --query <tid> --eps <deg> [--measure frechet|hausdorff|dtw]
  trass-client topk      --addr <host:port> --query <tid> --k <n> [--measure ...]
  trass-client range     --addr <host:port> --window lon0,lat0,lon1,lat1
  trass-client ingest    --addr <host:port> --csv <file>
  trass-client explain   --addr <host:port> --op threshold|topk|range [op flags]
  trass-client health    --addr <host:port>
  trass-client stats     --addr <host:port>
  trass-client shutdown  --addr <host:port>
  trass-client badframe  --addr <host:port>
(--addr falls back to TRASS_SERVE_ADDR)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, flags)) = parse(&args) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match run(&cmd, &flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn parse(args: &[String]) -> Option<(String, HashMap<String, String>)> {
    let cmd = args.first()?.clone();
    let mut flags = HashMap::new();
    let mut i = 1;
    while i < args.len() {
        let key = args[i].strip_prefix("--")?;
        let value = args.get(i + 1)?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Some((cmd, flags))
}

fn addr(flags: &HashMap<String, String>) -> Result<String, String> {
    if let Some(a) = flags.get("addr") {
        return Ok(a.clone());
    }
    std::env::var("TRASS_SERVE_ADDR")
        .ok()
        .filter(|v| !v.is_empty())
        .ok_or_else(|| "--addr <host:port> is required (or set TRASS_SERVE_ADDR)".to_string())
}

fn connect(flags: &HashMap<String, String>) -> Result<TrassClient, String> {
    let addr = addr(flags)?;
    TrassClient::connect(addr.as_str()).map_err(|e| format!("connect {addr}: {e}"))
}

fn parse_measure(flags: &HashMap<String, String>) -> Result<Measure, String> {
    flags.get("measure").map(|m| m.parse::<Measure>()).transpose()?.map_or(Ok(Measure::Frechet), Ok)
}

fn parse_window(flags: &HashMap<String, String>) -> Result<[f64; 4], String> {
    let spec = flags.get("window").ok_or("--window lon0,lat0,lon1,lat1 is required")?;
    let nums: Vec<f64> = spec
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad number in '{spec}'")))
        .collect::<Result<_, _>>()?;
    if nums.len() != 4 {
        return Err("expected lon0,lat0,lon1,lat1".into());
    }
    Ok([nums[0], nums[1], nums[2], nums[3]])
}

fn stored_query(flags: &HashMap<String, String>) -> Result<QueryRef, String> {
    let tid: u64 = flags
        .get("query")
        .ok_or("--query <tid> is required")?
        .parse()
        .map_err(|_| "bad --query id")?;
    Ok(QueryRef::Stored(tid))
}

fn err_str(e: ClientError) -> String {
    e.to_string()
}

/// Prints similarity results in the embedded CLI's exact format.
fn print_similarity(results: &[(u64, f64)]) {
    for (tid, d) in results {
        println!("  {tid}\t{d:.6}");
    }
}

/// Prints range results in the embedded CLI's exact format.
fn print_range(results: &[(u64, f64)]) {
    for (tid, _) in results {
        println!("  {tid}");
    }
}

fn threshold_request(flags: &HashMap<String, String>) -> Result<Request, String> {
    let eps: f64 =
        flags.get("eps").ok_or("--eps <deg> is required")?.parse().map_err(|_| "bad --eps")?;
    Ok(Request::Threshold { query: stored_query(flags)?, eps, measure: parse_measure(flags)? })
}

fn topk_request(flags: &HashMap<String, String>) -> Result<Request, String> {
    let k: u32 = flags.get("k").ok_or("--k <n> is required")?.parse().map_err(|_| "bad --k")?;
    Ok(Request::TopK { query: stored_query(flags)?, k, measure: parse_measure(flags)? })
}

fn run(cmd: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    match cmd {
        "threshold" => {
            let mut client = connect(flags)?;
            let req = threshold_request(flags)?;
            let results = match client.call(&req).map_err(err_str)? {
                trass_server::Response::Results(r) => r,
                other => return Err(format!("unexpected response: {other:?}")),
            };
            eprintln!("{} matches", results.len());
            print_similarity(&results);
            Ok(())
        }
        "topk" => {
            let mut client = connect(flags)?;
            let req = topk_request(flags)?;
            let results = match client.call(&req).map_err(err_str)? {
                trass_server::Response::Results(r) => r,
                other => return Err(format!("unexpected response: {other:?}")),
            };
            eprintln!("{} results", results.len());
            print_similarity(&results);
            Ok(())
        }
        "range" => {
            let mut client = connect(flags)?;
            let results = client.range(parse_window(flags)?).map_err(err_str)?;
            eprintln!("{} trajectories intersect the window", results.len());
            print_range(&results);
            Ok(())
        }
        "ingest" => {
            let csv = flags.get("csv").ok_or("--csv <file> is required")?;
            let file = std::fs::File::open(csv).map_err(|e| format!("open {csv}: {e}"))?;
            let (trajectories, report) =
                traj_io::read_csv(BufReader::new(file)).map_err(|e| e.to_string())?;
            if trajectories.is_empty() {
                return Err("no trajectories in input".into());
            }
            let mut client = connect(flags)?;
            let n = client.ingest(trajectories).map_err(err_str)?;
            println!(
                "ingested {n} trajectories ({} points, {} lines skipped)",
                report.points, report.skipped
            );
            Ok(())
        }
        "explain" => {
            let inner = match flags.get("op").map(String::as_str) {
                Some("threshold") => threshold_request(flags)?,
                Some("topk") => topk_request(flags)?,
                Some("range") => Request::Range { window: parse_window(flags)? },
                _ => return Err("--op threshold|topk|range is required".into()),
            };
            let is_range = matches!(inner, Request::Range { .. });
            let mut client = connect(flags)?;
            let (results, trace) = client.explain(inner).map_err(err_str)?;
            if is_range {
                print_range(&results);
            } else {
                print_similarity(&results);
            }
            println!("{trace}");
            Ok(())
        }
        "health" => {
            let mut client = connect(flags)?;
            print!("{}", client.health().map_err(err_str)?);
            Ok(())
        }
        "stats" => {
            let mut client = connect(flags)?;
            println!("{}", client.stats().map_err(err_str)?);
            Ok(())
        }
        "shutdown" => {
            let mut client = connect(flags)?;
            client.shutdown_server().map_err(err_str)?;
            println!("server shutting down");
            Ok(())
        }
        "badframe" => badframe(flags),
        other => Err(format!("unknown command: {other}\n{USAGE}")),
    }
}

/// Ships malformed frames and verifies each gets a clean protocol error
/// (and that the server survives the whole suite).
fn badframe(flags: &HashMap<String, String>) -> Result<(), String> {
    let mut passed = 0u32;

    // 1. Unknown opcode: error response, connection survives.
    {
        let mut client = connect(flags)?;
        let reply = client
            .send_raw(&protocol::frame(0x7E, &[]).map_err(|e| e.to_string())?)
            .map_err(err_str)?;
        expect_status(&reply, ErrorCode::UnknownOp, "unknown opcode")?;
        // Same connection must still serve requests.
        client.health().map_err(|e| format!("connection died after unknown op: {e}"))?;
        passed += 1;
        println!(
            "badframe: unknown opcode -> {} (connection survived)",
            ErrorCode::UnknownOp.name()
        );
    }

    // 2. Garbage payload under a valid opcode: malformed, connection survives.
    {
        let mut client = connect(flags)?;
        let reply = client
            .send_raw(
                &protocol::frame(Op::Threshold.code(), &[0xFF, 0x01]).map_err(|e| e.to_string())?,
            )
            .map_err(err_str)?;
        expect_status(&reply, ErrorCode::Malformed, "truncated threshold payload")?;
        client.health().map_err(|e| format!("connection died after malformed payload: {e}"))?;
        passed += 1;
        println!(
            "badframe: truncated payload -> {} (connection survived)",
            ErrorCode::Malformed.name()
        );
    }

    // 3. Unsupported version byte: error response, then the server closes.
    {
        let mut client = connect(flags)?;
        let reply =
            client.send_raw(&[0, 0, 0, 0, 9 /* version */, Op::Health.code()]).map_err(err_str)?;
        expect_status(&reply, ErrorCode::UnsupportedVersion, "bad version byte")?;
        passed += 1;
        println!("badframe: version 9 -> {}", ErrorCode::UnsupportedVersion.name());
    }

    // 4. Oversized length prefix: error response, then the server closes.
    {
        let mut client = connect(flags)?;
        let mut bytes = u32::MAX.to_le_bytes().to_vec();
        bytes.push(protocol::PROTOCOL_VERSION);
        bytes.push(Op::Health.code());
        let reply = client.send_raw(&bytes).map_err(err_str)?;
        expect_status(&reply, ErrorCode::TooLarge, "oversized length prefix")?;
        passed += 1;
        println!("badframe: 4 GiB length prefix -> {}", ErrorCode::TooLarge.name());
    }

    // 5. Truncated frame (header promises more than we send), then close:
    //    nothing to answer; the server must simply survive it.
    {
        let mut client = connect(flags)?;
        let header = protocol::FrameHeader {
            payload_len: 100,
            version: protocol::PROTOCOL_VERSION,
            op: Op::Threshold.code(),
        };
        let mut bytes = header.encode().to_vec();
        bytes.extend_from_slice(&[1, 2, 3]);
        client.send_raw_no_reply(&bytes).map_err(err_str)?;
        drop(client);
        passed += 1;
        println!("badframe: truncated frame then close -> server keeps running");
    }

    // The server must still be healthy after the whole suite.
    let mut client = connect(flags)?;
    let health = client.health().map_err(|e| format!("server unhealthy after suite: {e}"))?;
    if !health.contains("status: ok") {
        return Err(format!("unexpected health after suite: {health}"));
    }
    println!("badframe: all {passed} malformed inputs answered cleanly; server still healthy");
    Ok(())
}

fn expect_status(
    reply: &trass_server::RawReply,
    want: ErrorCode,
    what: &str,
) -> Result<(), String> {
    if reply.status != want.code() {
        return Err(format!(
            "{what}: expected status {} (0x{:02X}), got 0x{:02X} ({:?})",
            want.name(),
            want.code(),
            reply.status,
            reply.error_message()
        ));
    }
    Ok(())
}
