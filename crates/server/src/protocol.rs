//! Wire protocol v1.
//!
//! Every frame — request or response — is a 6-byte header followed by a
//! payload, all integers little-endian:
//!
//! ```text
//! offset  size  field
//! 0       4     payload_len (u32)   bytes after the header
//! 4       1     version     (u8)    always 1
//! 5       1     op          (u8)    request: opcode; response: status
//! 6       n     payload             op-specific, n == payload_len
//! ```
//!
//! Request opcodes:
//!
//! | op   | name      | payload                                          |
//! |------|-----------|--------------------------------------------------|
//! | 0x01 | threshold | query-ref, `eps: f64`, `measure: u8`             |
//! | 0x02 | topk      | query-ref, `k: u32`, `measure: u8`               |
//! | 0x03 | range     | `min_x, min_y, max_x, max_y: f64`                |
//! | 0x04 | ingest    | `count: u32`, then `count` trajectories          |
//! | 0x05 | explain   | inner opcode (`u8`), then that op's payload      |
//! | 0x06 | health    | empty                                            |
//! | 0x07 | stats     | empty                                            |
//! | 0x0F | shutdown  | empty                                            |
//!
//! A response's `op` byte is a status: `0x00` OK, else an [`ErrorCode`].
//! OK payloads mirror the request (a result set for queries, a count for
//! ingest, text for health/stats); error payloads carry one
//! length-prefixed UTF-8 message.
//!
//! Encodings: a *query-ref* is a tag byte — `0` + `tid: u64` for a
//! stored trajectory, `1` + an inline trajectory. A *trajectory* is
//! `id: u64`, `n_points: u32`, then `n_points` × (`x: f64`, `y: f64`). A
//! *result set* is `n: u32`, then `n` × (`tid: u64`, `distance: f64`).
//! Distances are transported as their IEEE-754 bit patterns, so a client
//! can assert byte-identity against embedded execution. A *string* is
//! `len: u32` + UTF-8 bytes.
//!
//! Decoding is total: every malformed input maps to a [`ProtocolError`]
//! whose [`ErrorCode`] becomes the response status — truncated payloads
//! and trailing garbage are [`ErrorCode::Malformed`], unknown opcodes
//! [`ErrorCode::UnknownOp`], semantic violations (bad measure code, empty
//! inline trajectory, nested explain) [`ErrorCode::BadRequest`]. Nothing
//! in this module panics on wire input.

use std::fmt;
use trass_geo::{Mbr, Point};
use trass_traj::{Measure, Trajectory};

/// The only protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;
/// Bytes in a frame header.
pub const HEADER_LEN: usize = 6;
/// Response status byte for success.
pub const STATUS_OK: u8 = 0;
/// Default cap on `payload_len` (overridable via `TRASS_SERVE_MAX_FRAME`).
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Threshold similarity search.
    Threshold,
    /// Top-k similarity search.
    TopK,
    /// Spatial range query.
    Range,
    /// Insert a batch of trajectories.
    Ingest,
    /// Run a query under EXPLAIN ANALYZE, returning the trace text too.
    Explain,
    /// Liveness text (uptime, totals).
    Health,
    /// Registry snapshot as JSON.
    Stats,
    /// Ask the server to stop accepting and join its threads.
    Shutdown,
}

/// Every opcode, in wire order (drives metric pre-registration and tests).
pub const ALL_OPS: [Op; 8] = [
    Op::Threshold,
    Op::TopK,
    Op::Range,
    Op::Ingest,
    Op::Explain,
    Op::Health,
    Op::Stats,
    Op::Shutdown,
];

impl Op {
    /// The wire byte.
    pub fn code(self) -> u8 {
        match self {
            Op::Threshold => 0x01,
            Op::TopK => 0x02,
            Op::Range => 0x03,
            Op::Ingest => 0x04,
            Op::Explain => 0x05,
            Op::Health => 0x06,
            Op::Stats => 0x07,
            Op::Shutdown => 0x0F,
        }
    }

    /// Parses a wire byte; `None` for unknown opcodes.
    pub fn from_code(code: u8) -> Option<Op> {
        ALL_OPS.iter().copied().find(|op| op.code() == code)
    }

    /// The label used in metrics and logs.
    pub fn name(self) -> &'static str {
        match self {
            Op::Threshold => "threshold",
            Op::TopK => "topk",
            Op::Range => "range",
            Op::Ingest => "ingest",
            Op::Explain => "explain",
            Op::Health => "health",
            Op::Stats => "stats",
            Op::Shutdown => "shutdown",
        }
    }
}

/// Response status bytes other than [`STATUS_OK`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The payload does not decode under its opcode (truncated, trailing
    /// garbage, bad UTF-8, …). The connection survives: framing is intact.
    Malformed,
    /// The frame's version byte is not [`PROTOCOL_VERSION`]. The server
    /// closes the connection after responding — it cannot trust the rest
    /// of the stream's framing.
    UnsupportedVersion,
    /// The opcode byte names no operation. The connection survives.
    UnknownOp,
    /// The payload decodes but violates a semantic rule (unknown measure
    /// code, empty inline trajectory, nested explain, non-finite point).
    BadRequest,
    /// A stored query reference names a trajectory the store lacks.
    NotFound,
    /// The store returned an error while executing the request.
    Internal,
    /// `payload_len` exceeds the server's frame cap. The server closes
    /// the connection after responding: it will not buffer the payload.
    TooLarge,
}

impl ErrorCode {
    /// The wire status byte.
    pub fn code(self) -> u8 {
        match self {
            ErrorCode::Malformed => 0x01,
            ErrorCode::UnsupportedVersion => 0x02,
            ErrorCode::UnknownOp => 0x03,
            ErrorCode::BadRequest => 0x04,
            ErrorCode::NotFound => 0x05,
            ErrorCode::Internal => 0x06,
            ErrorCode::TooLarge => 0x07,
        }
    }

    /// Parses a status byte; `None` for [`STATUS_OK`] or unknown bytes.
    pub fn from_code(code: u8) -> Option<ErrorCode> {
        [
            ErrorCode::Malformed,
            ErrorCode::UnsupportedVersion,
            ErrorCode::UnknownOp,
            ErrorCode::BadRequest,
            ErrorCode::NotFound,
            ErrorCode::Internal,
            ErrorCode::TooLarge,
        ]
        .iter()
        .copied()
        .find(|e| e.code() == code)
    }

    /// A stable name for logs and client errors.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed-frame",
            ErrorCode::UnsupportedVersion => "unsupported-version",
            ErrorCode::UnknownOp => "unknown-op",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::NotFound => "not-found",
            ErrorCode::Internal => "internal",
            ErrorCode::TooLarge => "frame-too-large",
        }
    }
}

/// A decoding or encoding failure; `code` becomes the response status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// The status byte the server answers with.
    pub code: ErrorCode,
    /// Human-readable context carried in the error payload.
    pub message: String,
}

impl ProtocolError {
    /// A [`ErrorCode::Malformed`] error with decoding context.
    pub fn malformed(context: &str) -> ProtocolError {
        ProtocolError {
            code: ErrorCode::Malformed,
            message: format!("malformed payload: {context}"),
        }
    }

    /// A [`ErrorCode::BadRequest`] error.
    pub fn bad_request(message: impl Into<String>) -> ProtocolError {
        ProtocolError { code: ErrorCode::BadRequest, message: message.into() }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.name(), self.message)
    }
}

impl std::error::Error for ProtocolError {}

/// A parsed frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Bytes of payload following the header.
    pub payload_len: u32,
    /// Protocol version byte.
    pub version: u8,
    /// Opcode (requests) or status (responses).
    pub op: u8,
}

impl FrameHeader {
    /// Parses the first [`HEADER_LEN`] bytes; `None` when `buf` is shorter.
    pub fn parse(buf: &[u8]) -> Option<FrameHeader> {
        let b = |i: usize| buf.get(i).copied();
        let payload_len = u32::from_le_bytes([b(0)?, b(1)?, b(2)?, b(3)?]);
        Some(FrameHeader { payload_len, version: b(4)?, op: b(5)? })
    }

    /// Encodes the header.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let l = self.payload_len.to_le_bytes();
        [l[0], l[1], l[2], l[3], self.version, self.op]
    }
}

/// How a similarity query names its query trajectory.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryRef {
    /// A trajectory already in the store, by id.
    Stored(u64),
    /// A trajectory shipped inline with the request.
    Inline(Trajectory),
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Threshold similarity search (`f(Q, T) ≤ eps`).
    Threshold {
        /// The query trajectory.
        query: QueryRef,
        /// Similarity threshold in world units.
        eps: f64,
        /// Similarity measure.
        measure: Measure,
    },
    /// Top-k similarity search.
    TopK {
        /// The query trajectory.
        query: QueryRef,
        /// Number of results.
        k: u32,
        /// Similarity measure.
        measure: Measure,
    },
    /// Spatial range query over a window.
    Range {
        /// `[min_x, min_y, max_x, max_y]` in world coordinates.
        window: [f64; 4],
    },
    /// Insert a batch of trajectories.
    Ingest {
        /// The batch; every trajectory is non-empty with finite points.
        trajectories: Vec<Trajectory>,
    },
    /// Run the inner query under EXPLAIN ANALYZE. The inner request is
    /// one of `Threshold` / `TopK` / `Range`; nesting is rejected.
    Explain {
        /// The query to explain.
        inner: Box<Request>,
    },
    /// Liveness text.
    Health,
    /// Registry snapshot as JSON.
    Stats,
    /// Graceful server shutdown.
    Shutdown,
}

impl Request {
    /// The opcode this request travels under.
    pub fn op(&self) -> Op {
        match self {
            Request::Threshold { .. } => Op::Threshold,
            Request::TopK { .. } => Op::TopK,
            Request::Range { .. } => Op::Range,
            Request::Ingest { .. } => Op::Ingest,
            Request::Explain { .. } => Op::Explain,
            Request::Health => Op::Health,
            Request::Stats => Op::Stats,
            Request::Shutdown => Op::Shutdown,
        }
    }
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Result set of a threshold / top-k / range query. Range results
    /// carry distance `0.0`, mirroring embedded execution.
    Results(Vec<(u64, f64)>),
    /// Number of trajectories ingested.
    Ingested(u32),
    /// An explained query: its result set plus the rendered trace tree.
    Explained {
        /// The query's normal result set.
        results: Vec<(u64, f64)>,
        /// `QueryTrace::render_text()` output.
        trace: String,
    },
    /// Liveness text.
    Health(String),
    /// Registry snapshot as JSON.
    Stats(String),
    /// Acknowledgement that the server is shutting down.
    ShuttingDown,
    /// An error status with its message.
    Error {
        /// The status byte.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Frames `payload` under `op` (an opcode or a status byte).
pub fn frame(op: u8, payload: &[u8]) -> Result<Vec<u8>, ProtocolError> {
    let payload_len = u32::try_from(payload.len()).map_err(|_| ProtocolError {
        code: ErrorCode::TooLarge,
        message: format!("payload of {} bytes exceeds the u32 frame limit", payload.len()),
    })?;
    let header = FrameHeader { payload_len, version: PROTOCOL_VERSION, op };
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&header.encode());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Encodes a request as a complete frame.
pub fn encode_request(req: &Request) -> Result<Vec<u8>, ProtocolError> {
    let mut payload = Vec::new();
    encode_request_payload(req, &mut payload)?;
    frame(req.op().code(), &payload)
}

fn encode_request_payload(req: &Request, out: &mut Vec<u8>) -> Result<(), ProtocolError> {
    match req {
        Request::Threshold { query, eps, measure } => {
            put_query_ref(out, query);
            out.extend_from_slice(&eps.to_bits().to_le_bytes());
            out.push(measure_code(*measure));
        }
        Request::TopK { query, k, measure } => {
            put_query_ref(out, query);
            out.extend_from_slice(&k.to_le_bytes());
            out.push(measure_code(*measure));
        }
        Request::Range { window } => {
            for v in window {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        Request::Ingest { trajectories } => {
            let n = u32::try_from(trajectories.len())
                .map_err(|_| ProtocolError::bad_request("ingest batch exceeds u32 entries"))?;
            out.extend_from_slice(&n.to_le_bytes());
            for t in trajectories {
                put_trajectory(out, t);
            }
        }
        Request::Explain { inner } => {
            match inner.as_ref() {
                Request::Threshold { .. } | Request::TopK { .. } | Request::Range { .. } => {}
                other => {
                    return Err(ProtocolError::bad_request(format!(
                        "explain cannot wrap op `{}`",
                        other.op().name()
                    )))
                }
            }
            out.push(inner.op().code());
            encode_request_payload(inner, out)?;
        }
        Request::Health | Request::Stats | Request::Shutdown => {}
    }
    Ok(())
}

/// Encodes a response as a complete frame. The status byte is
/// [`STATUS_OK`] except for [`Response::Error`].
pub fn encode_response(resp: &Response) -> Result<Vec<u8>, ProtocolError> {
    let mut payload = Vec::new();
    let status = match resp {
        Response::Results(results) => {
            put_results(&mut payload, results)?;
            STATUS_OK
        }
        Response::Ingested(n) => {
            payload.extend_from_slice(&n.to_le_bytes());
            STATUS_OK
        }
        Response::Explained { results, trace } => {
            put_results(&mut payload, results)?;
            put_string(&mut payload, trace)?;
            STATUS_OK
        }
        Response::Health(text) => {
            put_string(&mut payload, text)?;
            STATUS_OK
        }
        Response::Stats(text) => {
            put_string(&mut payload, text)?;
            STATUS_OK
        }
        Response::ShuttingDown => STATUS_OK,
        Response::Error { code, message } => {
            put_string(&mut payload, message)?;
            code.code()
        }
    };
    // `ShuttingDown` and OK result sets share STATUS_OK; the client knows
    // which payload shape to expect from the op it sent.
    frame(status, &payload)
}

fn put_query_ref(out: &mut Vec<u8>, q: &QueryRef) {
    match q {
        QueryRef::Stored(tid) => {
            out.push(0);
            out.extend_from_slice(&tid.to_le_bytes());
        }
        QueryRef::Inline(t) => {
            out.push(1);
            put_trajectory(out, t);
        }
    }
}

fn put_trajectory(out: &mut Vec<u8>, t: &Trajectory) {
    out.extend_from_slice(&t.id.to_le_bytes());
    let n = u32::try_from(t.len()).unwrap_or(u32::MAX);
    out.extend_from_slice(&n.to_le_bytes());
    for p in t.points() {
        out.extend_from_slice(&p.x.to_bits().to_le_bytes());
        out.extend_from_slice(&p.y.to_bits().to_le_bytes());
    }
}

fn put_results(out: &mut Vec<u8>, results: &[(u64, f64)]) -> Result<(), ProtocolError> {
    let n = u32::try_from(results.len()).map_err(|_| ProtocolError {
        code: ErrorCode::TooLarge,
        message: "result set exceeds u32 entries".to_string(),
    })?;
    out.extend_from_slice(&n.to_le_bytes());
    for (tid, d) in results {
        out.extend_from_slice(&tid.to_le_bytes());
        out.extend_from_slice(&d.to_bits().to_le_bytes());
    }
    Ok(())
}

fn put_string(out: &mut Vec<u8>, s: &str) -> Result<(), ProtocolError> {
    let n = u32::try_from(s.len()).map_err(|_| ProtocolError {
        code: ErrorCode::TooLarge,
        message: "string exceeds u32 bytes".to_string(),
    })?;
    out.extend_from_slice(&n.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn measure_code(m: Measure) -> u8 {
    match m {
        Measure::Frechet => 0,
        Measure::Hausdorff => 1,
        Measure::Dtw => 2,
    }
}

fn measure_from_code(code: u8) -> Result<Measure, ProtocolError> {
    match code {
        0 => Ok(Measure::Frechet),
        1 => Ok(Measure::Hausdorff),
        2 => Ok(Measure::Dtw),
        other => Err(ProtocolError::bad_request(format!("unknown measure code {other}"))),
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A checked little-endian payload reader; every read is bounds-checked
/// and a failure carries the field being decoded.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize, context: &str) -> Result<&'a [u8], ProtocolError> {
        let end = self.pos.checked_add(n).ok_or_else(|| ProtocolError::malformed(context))?;
        let slice = self.buf.get(self.pos..end).ok_or_else(|| ProtocolError::malformed(context))?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, context: &str) -> Result<u8, ProtocolError> {
        Ok(self.take(1, context)?.first().copied().unwrap_or_default())
    }

    fn u32(&mut self, context: &str) -> Result<u32, ProtocolError> {
        let b = self.take(4, context)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    fn u64(&mut self, context: &str) -> Result<u64, ProtocolError> {
        let b = self.take(8, context)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self, context: &str) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    fn string(&mut self, context: &str) -> Result<String, ProtocolError> {
        let n = self.u32(context)? as usize;
        let bytes = self.take(n, context)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtocolError::malformed(&format!("{context}: invalid UTF-8")))
    }

    /// Rejects trailing bytes: a frame that decodes but has leftovers was
    /// framed wrong, and silently ignoring the tail would mask it.
    fn expect_end(&self, context: &str) -> Result<(), ProtocolError> {
        if self.remaining() != 0 {
            return Err(ProtocolError::malformed(&format!(
                "{context}: {} trailing byte(s) after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Decodes a request payload under its opcode byte.
pub fn decode_request(op: u8, payload: &[u8]) -> Result<Request, ProtocolError> {
    let op = Op::from_code(op).ok_or(ProtocolError {
        code: ErrorCode::UnknownOp,
        message: format!("unknown opcode 0x{op:02X}"),
    })?;
    let mut r = Reader::new(payload);
    let req = decode_request_body(op, &mut r, false)?;
    r.expect_end(op.name())?;
    Ok(req)
}

fn decode_request_body(
    op: Op,
    r: &mut Reader<'_>,
    inside_explain: bool,
) -> Result<Request, ProtocolError> {
    match op {
        Op::Threshold => {
            let query = read_query_ref(r)?;
            let eps = r.f64("threshold.eps")?;
            let measure = measure_from_code(r.u8("threshold.measure")?)?;
            if !eps.is_finite() || eps < 0.0 {
                return Err(ProtocolError::bad_request(format!(
                    "threshold eps must be finite and non-negative, got {eps}"
                )));
            }
            Ok(Request::Threshold { query, eps, measure })
        }
        Op::TopK => {
            let query = read_query_ref(r)?;
            let k = r.u32("topk.k")?;
            let measure = measure_from_code(r.u8("topk.measure")?)?;
            Ok(Request::TopK { query, k, measure })
        }
        Op::Range => {
            let mut window = [0.0f64; 4];
            for (i, v) in window.iter_mut().enumerate() {
                *v = r.f64(&format!("range.window[{i}]"))?;
                if !v.is_finite() {
                    return Err(ProtocolError::bad_request(
                        "range window coordinates must be finite",
                    ));
                }
            }
            Ok(Request::Range { window })
        }
        Op::Ingest => {
            let n = r.u32("ingest.count")? as usize;
            // Each trajectory is at least 8 + 4 + 16 bytes; reject counts
            // the payload cannot possibly hold before allocating.
            match n.checked_mul(28) {
                Some(need) if need <= r.remaining() => {}
                _ => {
                    return Err(ProtocolError::malformed(
                        "ingest.count larger than the payload can hold",
                    ))
                }
            }
            let mut trajectories = Vec::with_capacity(n);
            for i in 0..n {
                trajectories.push(read_trajectory(r, &format!("ingest[{i}]"))?);
            }
            Ok(Request::Ingest { trajectories })
        }
        Op::Explain => {
            if inside_explain {
                return Err(ProtocolError::bad_request("explain cannot nest"));
            }
            let inner_code = r.u8("explain.inner_op")?;
            let inner_op = Op::from_code(inner_code).ok_or(ProtocolError {
                code: ErrorCode::UnknownOp,
                message: format!("explain wraps unknown opcode 0x{inner_code:02X}"),
            })?;
            match inner_op {
                Op::Threshold | Op::TopK | Op::Range => {}
                other => {
                    return Err(ProtocolError::bad_request(format!(
                        "explain cannot wrap op `{}`",
                        other.name()
                    )))
                }
            }
            let inner = decode_request_body(inner_op, r, true)?;
            Ok(Request::Explain { inner: Box::new(inner) })
        }
        Op::Health => Ok(Request::Health),
        Op::Stats => Ok(Request::Stats),
        Op::Shutdown => Ok(Request::Shutdown),
    }
}

fn read_query_ref(r: &mut Reader<'_>) -> Result<QueryRef, ProtocolError> {
    match r.u8("query_ref.tag")? {
        0 => Ok(QueryRef::Stored(r.u64("query_ref.tid")?)),
        1 => Ok(QueryRef::Inline(read_trajectory(r, "query_ref.inline")?)),
        other => Err(ProtocolError::malformed(&format!("unknown query-ref tag {other}"))),
    }
}

fn read_trajectory(r: &mut Reader<'_>, context: &str) -> Result<Trajectory, ProtocolError> {
    let id = r.u64(context)?;
    let n = r.u32(context)? as usize;
    match n.checked_mul(16) {
        Some(need) if need <= r.remaining() => {}
        _ => {
            return Err(ProtocolError::malformed(&format!(
                "{context}: point count larger than the payload can hold"
            )))
        }
    }
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let x = r.f64(context)?;
        let y = r.f64(context)?;
        points.push(Point::new(x, y));
    }
    Trajectory::try_new(id, points).ok_or_else(|| {
        ProtocolError::bad_request(format!(
            "{context}: trajectory {id} must be non-empty with finite coordinates"
        ))
    })
}

/// Decodes a response payload. `request_op` selects the OK payload shape
/// (the client knows what it asked); `status` is the frame's op byte.
pub fn decode_response(
    request_op: Op,
    status: u8,
    payload: &[u8],
) -> Result<Response, ProtocolError> {
    let mut r = Reader::new(payload);
    if status != STATUS_OK {
        let code = ErrorCode::from_code(status).ok_or_else(|| {
            ProtocolError::malformed(&format!("unknown response status 0x{status:02X}"))
        })?;
        let message = r.string("error.message")?;
        r.expect_end("error")?;
        return Ok(Response::Error { code, message });
    }
    let resp = match request_op {
        Op::Threshold | Op::TopK | Op::Range => Response::Results(read_results(&mut r)?),
        Op::Ingest => Response::Ingested(r.u32("ingested.count")?),
        Op::Explain => {
            let results = read_results(&mut r)?;
            let trace = r.string("explained.trace")?;
            Response::Explained { results, trace }
        }
        Op::Health => Response::Health(r.string("health.text")?),
        Op::Stats => Response::Stats(r.string("stats.text")?),
        Op::Shutdown => Response::ShuttingDown,
    };
    r.expect_end(request_op.name())?;
    Ok(resp)
}

fn read_results(r: &mut Reader<'_>) -> Result<Vec<(u64, f64)>, ProtocolError> {
    let n = r.u32("results.count")? as usize;
    match n.checked_mul(16) {
        Some(need) if need <= r.remaining() => {}
        _ => {
            return Err(ProtocolError::malformed("results.count larger than the payload can hold"))
        }
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let tid = r.u64("results.tid")?;
        let d = r.f64("results.distance")?;
        out.push((tid, d));
    }
    Ok(out)
}

/// Builds the query window [`Mbr`] from a decoded range request.
pub fn window_mbr(window: &[f64; 4]) -> Mbr {
    Mbr::from_corners(Point::new(window[0], window[1]), Point::new(window[2], window[3]))
}
