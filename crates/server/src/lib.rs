//! # trass-server — the TraSS network front-end
//!
//! TraSS is designed as a service layer over a key-value store (§I of the
//! paper: "serve millions of users"), but the rest of this workspace is
//! embedded-only. This crate puts the existing query surface on a wire:
//!
//! * [`protocol`] — wire protocol v1: a length-prefixed binary frame
//!   format with a versioned header, opcodes for every store operation
//!   (threshold, top-k, range, ingest, explain, health, stats, shutdown),
//!   and checked decoding that turns malformed input into typed
//!   [`protocol::ProtocolError`]s instead of panics.
//! * [`server`] — [`server::TrassServer`]: a thread-per-connection TCP
//!   server over a shared [`trass_core::store::TrajectoryStore`]. Query
//!   parallelism comes from the store's own `trass-exec` refine pool, so
//!   a connection thread is cheap; graceful shutdown mirrors the
//!   telemetry endpoint's join discipline (stop flag, wake-connect, join
//!   every thread ever spawned).
//! * [`client`] — [`client::TrassClient`]: a blocking client used by the
//!   `trass-client` binary, the `repro loadtest` harness, and the e2e
//!   tests. Distances travel as raw IEEE-754 bits, so a wire result can
//!   be asserted byte-identical to embedded execution.
//!
//! The server publishes `trass_server_*` metrics into the store's
//! registry (scrapeable through the existing telemetry endpoint):
//! connection and request counters, per-op latency histograms, and a
//! protocol-error counter. Knobs: `TRASS_SERVE_ADDR` (bind address) and
//! `TRASS_SERVE_MAX_FRAME` (frame size limit in bytes).

#![forbid(unsafe_code)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{ClientError, RawReply, TrassClient};
pub use protocol::{ErrorCode, Op, ProtocolError, QueryRef, Request, Response};
pub use server::{ServerOptions, TrassServer};
