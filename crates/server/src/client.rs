//! A blocking client for the wire protocol.
//!
//! [`TrassClient`] owns one TCP connection and issues one request at a
//! time (the protocol has no pipelining or request ids — responses come
//! back in order). It is the substrate for the `trass-client` binary,
//! the `repro loadtest` harness, and the e2e tests;
//! [`TrassClient::send_raw`] exists so robustness tests can ship
//! malformed frames and observe the server's error responses.
//!
//! Result distances cross the wire as IEEE-754 bit patterns, so
//! `got.to_bits() == expected.to_bits()` is a meaningful byte-identity
//! assertion against embedded execution.

use crate::protocol::{
    self, ErrorCode, FrameHeader, Op, QueryRef, Request, Response, HEADER_LEN, PROTOCOL_VERSION,
};
use std::fmt;
use std::io::{Read as _, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use trass_traj::{Measure, Trajectory};

/// Default socket timeout: generous enough for a cold query, small
/// enough that a dead server fails the call instead of hanging it.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(std::io::Error),
    /// The server's bytes did not decode as a protocol response.
    Protocol(String),
    /// The server answered with an in-protocol error response.
    Server {
        /// The response status.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({}): {message}", code.name())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A raw response frame, for tests probing the server with hand-built
/// (possibly malformed) bytes.
#[derive(Debug, Clone)]
pub struct RawReply {
    /// The response header's version byte.
    pub version: u8,
    /// The response status byte.
    pub status: u8,
    /// The undecoded payload.
    pub payload: Vec<u8>,
}

impl RawReply {
    /// Decodes the payload as the error message the server sent (error
    /// payloads are one length-prefixed string).
    pub fn error_message(&self) -> Option<String> {
        match protocol::decode_response(Op::Health, self.status, &self.payload) {
            Ok(Response::Error { message, .. }) => Some(message),
            _ => None,
        }
    }
}

/// A connected client.
pub struct TrassClient {
    stream: TcpStream,
    max_frame: u32,
}

impl TrassClient {
    /// Connects to `addr` (e.g. `"127.0.0.1:4750"`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<TrassClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
        stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
        stream.set_nodelay(true)?;
        Ok(TrassClient { stream, max_frame: protocol::DEFAULT_MAX_FRAME_BYTES })
    }

    /// Sends one request and decodes its response. [`Response::Error`]
    /// becomes [`ClientError::Server`].
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let bytes =
            protocol::encode_request(request).map_err(|e| ClientError::Protocol(e.to_string()))?;
        self.stream.write_all(&bytes)?;
        let (header, payload) = self.read_reply()?;
        match protocol::decode_response(request.op(), header.op, &payload) {
            Ok(Response::Error { code, message }) => Err(ClientError::Server { code, message }),
            Ok(resp) => Ok(resp),
            Err(e) => Err(ClientError::Protocol(e.to_string())),
        }
    }

    /// Threshold similarity search.
    pub fn threshold(
        &mut self,
        query: QueryRef,
        eps: f64,
        measure: Measure,
    ) -> Result<Vec<(u64, f64)>, ClientError> {
        match self.call(&Request::Threshold { query, eps, measure })? {
            Response::Results(r) => Ok(r),
            other => Err(unexpected(&other)),
        }
    }

    /// Top-k similarity search.
    pub fn top_k(
        &mut self,
        query: QueryRef,
        k: u32,
        measure: Measure,
    ) -> Result<Vec<(u64, f64)>, ClientError> {
        match self.call(&Request::TopK { query, k, measure })? {
            Response::Results(r) => Ok(r),
            other => Err(unexpected(&other)),
        }
    }

    /// Spatial range query; distances in the result set are `0.0`.
    pub fn range(&mut self, window: [f64; 4]) -> Result<Vec<(u64, f64)>, ClientError> {
        match self.call(&Request::Range { window })? {
            Response::Results(r) => Ok(r),
            other => Err(unexpected(&other)),
        }
    }

    /// Inserts a batch; returns the server's ingested count.
    pub fn ingest(&mut self, trajectories: Vec<Trajectory>) -> Result<u32, ClientError> {
        match self.call(&Request::Ingest { trajectories })? {
            Response::Ingested(n) => Ok(n),
            other => Err(unexpected(&other)),
        }
    }

    /// Runs `inner` (threshold / top-k / range) under EXPLAIN ANALYZE;
    /// returns the result set and the rendered trace.
    pub fn explain(&mut self, inner: Request) -> Result<(Vec<(u64, f64)>, String), ClientError> {
        match self.call(&Request::Explain { inner: Box::new(inner) })? {
            Response::Explained { results, trace } => Ok((results, trace)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the server's liveness text.
    pub fn health(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Health)? {
            Response::Health(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the registry snapshot as JSON.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Ships raw bytes and reads one response frame — the robustness
    /// tests' hook for malformed input. The bytes are sent verbatim; the
    /// reply is returned undecoded.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<RawReply, ClientError> {
        self.stream.write_all(bytes)?;
        let (header, payload) = self.read_reply()?;
        Ok(RawReply { version: header.version, status: header.op, payload })
    }

    /// Ships raw bytes without waiting for a reply — for probes whose
    /// point is to abandon the connection mid-frame.
    pub fn send_raw_no_reply(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    fn read_reply(&mut self) -> Result<(FrameHeader, Vec<u8>), ClientError> {
        let mut head = [0u8; HEADER_LEN];
        self.stream.read_exact(&mut head)?;
        let header = FrameHeader::parse(&head)
            .ok_or_else(|| ClientError::Protocol("short response header".to_string()))?;
        if header.version != PROTOCOL_VERSION {
            return Err(ClientError::Protocol(format!(
                "server answered with protocol version {}",
                header.version
            )));
        }
        if header.payload_len > self.max_frame {
            return Err(ClientError::Protocol(format!(
                "response frame of {} bytes exceeds the {}-byte limit",
                header.payload_len, self.max_frame
            )));
        }
        let mut payload = vec![0u8; header.payload_len as usize];
        self.stream.read_exact(&mut payload)?;
        Ok((header, payload))
    }
}

impl fmt::Debug for TrassClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrassClient").field("peer", &self.stream.peer_addr().ok()).finish()
    }
}

fn unexpected(resp: &Response) -> ClientError {
    ClientError::Protocol(format!("unexpected response variant: {resp:?}"))
}
