//! The TCP server: thread-per-connection over a shared store.
//!
//! [`TrassServer::serve`] binds a listener and spawns an accept thread;
//! each connection gets its own thread running a read-loop that peels
//! complete frames off a buffer, executes them against the shared
//! [`TrajectoryStore`], and writes one response frame per request.
//! Connection threads stay cheap because query parallelism lives inside
//! the store (its `trass-exec` refine pool is shared across
//! connections), exactly as the paper's HBase deployment shares region
//! servers across clients.
//!
//! Shutdown mirrors `trass_obs::http::HttpServer`'s join discipline: a
//! stop flag, a wake-connect to unblock `accept()`, and a join of every
//! thread ever spawned — idempotent, also on drop. Connections poll the
//! stop flag between reads (short read timeout), so shutdown latency is
//! bounded by [`POLL_INTERVAL`] plus any in-flight query.
//!
//! Error handling is the protocol's: malformed payloads and unknown
//! opcodes produce error responses and the connection survives (framing
//! is intact); an unsupported version byte or an oversized length prefix
//! produces an error response and then closes the connection, because
//! the rest of the stream cannot be trusted. Nothing here panics on wire
//! input.
//!
//! Metrics (all in the store's registry, scrapeable via telemetry):
//!
//! | series                              | kind      | labels |
//! |-------------------------------------|-----------|--------|
//! | `trass_server_connections_total`    | counter   |        |
//! | `trass_server_active_connections`   | gauge     |        |
//! | `trass_server_requests_total`       | counter   | `op`   |
//! | `trass_server_request_seconds`      | histogram | `op`   |
//! | `trass_server_protocol_errors_total`| counter   |        |

use crate::protocol::{
    self, ErrorCode, FrameHeader, Request, Response, ALL_OPS, DEFAULT_MAX_FRAME_BYTES, HEADER_LEN,
    PROTOCOL_VERSION,
};
use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use trass_core::query;
use trass_core::store::{ExplainQuery, TrajectoryStore};
use trass_obs::{Counter, Gauge, Histogram, Span};
use trass_traj::Trajectory;

/// How often an idle connection checks the stop flag (its read timeout).
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// Write timeout: a stalled client cannot hold a connection thread (and
/// therefore shutdown) hostage for longer than this.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Server tuning; [`ServerOptions::default`] reads the env knobs.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address. Default: `TRASS_SERVE_ADDR`, else `127.0.0.1:0`
    /// (ephemeral port).
    pub addr: String,
    /// Largest accepted `payload_len`. Default: `TRASS_SERVE_MAX_FRAME`
    /// (bytes, clamped to ≥ 1024), else
    /// [`DEFAULT_MAX_FRAME_BYTES`].
    pub max_frame_bytes: u32,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions { addr: default_serve_addr(), max_frame_bytes: default_max_frame() }
    }
}

/// The `addr` default: `TRASS_SERVE_ADDR` when set and non-empty,
/// otherwise loopback on an ephemeral port.
pub fn default_serve_addr() -> String {
    std::env::var("TRASS_SERVE_ADDR")
        .ok()
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| "127.0.0.1:0".to_string())
}

/// The `max_frame_bytes` default: `TRASS_SERVE_MAX_FRAME` when set to a
/// valid byte count (clamped to ≥ 1024 so a header+minimal request always
/// fits), otherwise [`DEFAULT_MAX_FRAME_BYTES`].
pub fn default_max_frame() -> u32 {
    std::env::var("TRASS_SERVE_MAX_FRAME")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .map(|v| v.max(1024))
        .unwrap_or(DEFAULT_MAX_FRAME_BYTES)
}

/// Pre-resolved per-op metric handles (labels `op=<name>`).
struct OpMetrics {
    requests: Arc<Counter>,
    seconds: Arc<Histogram>,
}

/// State shared between the accept thread, connection threads, and the
/// [`TrassServer`] handle.
struct Shared {
    store: Arc<TrajectoryStore>,
    addr: SocketAddr,
    stop: AtomicBool,
    max_frame: u32,
    started: Instant,
    connections_total: Arc<Counter>,
    active_connections: Arc<Gauge>,
    protocol_errors: Arc<Counter>,
    requests_total: AtomicU64,
    per_op: HashMap<u8, OpMetrics>,
    /// Set when shutdown is requested (wire op or [`TrassServer::shutdown`]);
    /// [`TrassServer::wait`] blocks on it.
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Shared {
    /// Flips the stop flag, wakes [`TrassServer::wait`] callers, and
    /// unblocks the accept loop. Idempotent.
    fn request_shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        *done = true;
        drop(done);
        self.done_cv.notify_all();
        // The accept loop blocks in accept(); a throwaway connection
        // unblocks it so it can observe the flag.
        if let Ok(s) = TcpStream::connect_timeout(&self.addr, WRITE_TIMEOUT) {
            drop(s);
        }
    }
}

/// A running server; dropping it shuts it down and joins every thread.
pub struct TrassServer {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TrassServer {
    /// Binds `opts.addr` and starts serving `store`.
    pub fn serve(store: Arc<TrajectoryStore>, opts: ServerOptions) -> std::io::Result<TrassServer> {
        let listener = TcpListener::bind(opts.addr.as_str())?;
        let addr = listener.local_addr()?;
        let registry = Arc::clone(store.registry());
        let mut per_op = HashMap::new();
        // Pre-register every op's series so the metric surface is visible
        // (and scrapeable) before the first request arrives.
        for op in ALL_OPS {
            let labels = [("op", op.name())];
            per_op.insert(
                op.code(),
                OpMetrics {
                    requests: registry.counter("trass_server_requests_total", &labels),
                    seconds: registry.timer("trass_server_request_seconds", &labels),
                },
            );
        }
        let shared = Arc::new(Shared {
            store,
            addr,
            stop: AtomicBool::new(false),
            max_frame: opts.max_frame_bytes,
            started: Instant::now(),
            connections_total: registry.counter("trass_server_connections_total", &[]),
            active_connections: registry.gauge("trass_server_active_connections", &[]),
            protocol_errors: registry.counter("trass_server_protocol_errors_total", &[]),
            requests_total: AtomicU64::new(0),
            per_op,
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread =
            std::thread::Builder::new().name("trass-server".into()).spawn(move || {
                let mut conns: Vec<JoinHandle<()>> = Vec::new();
                for stream in listener.incoming() {
                    if accept_shared.stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Reap finished handlers so the vec stays bounded by
                    // the number of concurrent connections.
                    conns.retain(|h| !h.is_finished());
                    let conn_shared = Arc::clone(&accept_shared);
                    let spawned = std::thread::Builder::new()
                        .name("trass-server-conn".into())
                        .spawn(move || handle_connection(stream, &conn_shared));
                    match spawned {
                        Ok(h) => conns.push(h),
                        Err(_) => continue, // connection dropped; client retries
                    }
                }
                for h in conns {
                    let _ = h.join();
                }
            })?;
        Ok(TrassServer { shared, accept_thread: Some(accept_thread) })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Blocks until shutdown is requested — by a wire `shutdown` op or by
    /// [`TrassServer::shutdown`] from another thread.
    pub fn wait(&self) {
        let done = self.shared.done.lock().unwrap_or_else(PoisonError::into_inner);
        let result = self.shared.done_cv.wait_while(done, |d| !*d);
        drop(result.unwrap_or_else(PoisonError::into_inner));
    }

    /// Stops accepting, waits for in-flight requests, joins every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.request_shutdown();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TrassServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for TrassServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrassServer").field("addr", &self.shared.addr).finish()
    }
}

/// What to do with the connection after answering a frame.
enum Disposition {
    /// Keep reading frames.
    KeepOpen,
    /// Close: the stream's framing can no longer be trusted, or the
    /// server is shutting down.
    Close,
}

/// One complete scan of the connection buffer.
enum FrameScan {
    /// Not enough bytes for a header or payload yet.
    Need,
    /// A complete frame: its opcode and payload, plus bytes to drain.
    Frame { op: u8, payload: Vec<u8>, consumed: usize },
    /// A header-level violation the connection cannot recover from.
    Fatal { code: ErrorCode, message: String },
}

/// Peels the next frame off `buf` without consuming it.
fn scan_frame(buf: &[u8], max_frame: u32) -> FrameScan {
    let Some(header) = FrameHeader::parse(buf) else { return FrameScan::Need };
    if header.version != PROTOCOL_VERSION {
        return FrameScan::Fatal {
            code: ErrorCode::UnsupportedVersion,
            message: format!(
                "protocol version {} not supported (this server speaks {PROTOCOL_VERSION})",
                header.version
            ),
        };
    }
    if header.payload_len > max_frame {
        return FrameScan::Fatal {
            code: ErrorCode::TooLarge,
            message: format!(
                "frame of {} bytes exceeds the {max_frame}-byte limit",
                header.payload_len
            ),
        };
    }
    let total = HEADER_LEN + header.payload_len as usize;
    let Some(payload) = buf.get(HEADER_LEN..total) else { return FrameScan::Need };
    FrameScan::Frame { op: header.op, payload: payload.to_vec(), consumed: total }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    shared.connections_total.inc();
    shared.active_connections.add(1);
    serve_connection(&mut stream, shared);
    shared.active_connections.add(-1);
}

fn serve_connection(stream: &mut TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Drain every complete frame already buffered.
        loop {
            match scan_frame(&buf, shared.max_frame) {
                FrameScan::Need => break,
                FrameScan::Fatal { code, message } => {
                    shared.protocol_errors.inc();
                    let _ = write_response(stream, &Response::Error { code, message });
                    return;
                }
                FrameScan::Frame { op, payload, consumed } => {
                    buf.drain(..consumed);
                    match handle_frame(stream, shared, op, &payload) {
                        Disposition::KeepOpen => {}
                        Disposition::Close => return,
                    }
                }
            }
        }
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // EOF (possibly mid-frame: nothing to answer)
            Ok(n) => buf.extend_from_slice(chunk.get(..n).unwrap_or_default()),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                continue; // poll tick: re-check the stop flag
            }
            Err(_) => return,
        }
    }
}

/// Decodes, executes, and answers one frame.
fn handle_frame(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    op: u8,
    payload: &[u8],
) -> Disposition {
    let response = match protocol::decode_request(op, payload) {
        Ok(request) => {
            shared.requests_total.fetch_add(1, Ordering::Relaxed);
            let metrics = shared.per_op.get(&request.op().code());
            if let Some(m) = metrics {
                m.requests.inc();
            }
            let span = metrics.map(|m| Span::on(Arc::clone(&m.seconds)));
            let response = execute(shared, request);
            if let Some(s) = span {
                s.finish();
            }
            response
        }
        Err(e) => {
            shared.protocol_errors.inc();
            Response::Error { code: e.code, message: e.message }
        }
    };
    let shutting_down = matches!(response, Response::ShuttingDown);
    let written = write_response(stream, &response);
    if shutting_down {
        shared.request_shutdown();
        return Disposition::Close;
    }
    match written {
        Ok(()) => Disposition::KeepOpen,
        Err(_) => Disposition::Close,
    }
}

fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let bytes = match protocol::encode_response(response) {
        Ok(b) => b,
        Err(e) => {
            // Response too big to frame (e.g. a gigantic trace): degrade
            // to an in-protocol error rather than hanging up silently.
            let fallback = Response::Error { code: e.code, message: e.message };
            protocol::encode_response(&fallback).unwrap_or_default()
        }
    };
    stream.write_all(&bytes)?;
    stream.flush()
}

fn error_response(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error { code, message: message.into() }
}

/// Resolves a query reference to a concrete trajectory.
fn resolve_query(shared: &Shared, query: protocol::QueryRef) -> Result<Trajectory, Response> {
    match query {
        protocol::QueryRef::Inline(t) => Ok(t),
        protocol::QueryRef::Stored(tid) => match shared.store.get(tid) {
            Ok(Some(t)) => Ok(t),
            Ok(None) => {
                Err(error_response(ErrorCode::NotFound, format!("trajectory {tid} not found")))
            }
            Err(e) => Err(error_response(ErrorCode::Internal, e.to_string())),
        },
    }
}

/// Executes a decoded request against the shared store.
fn execute(shared: &Arc<Shared>, request: Request) -> Response {
    match request {
        Request::Threshold { query, eps, measure } => {
            let q = match resolve_query(shared, query) {
                Ok(q) => q,
                Err(resp) => return resp,
            };
            match query::threshold_search(&shared.store, &q, eps, measure) {
                Ok(r) => Response::Results(r.results),
                Err(e) => error_response(ErrorCode::Internal, e.to_string()),
            }
        }
        Request::TopK { query, k, measure } => {
            let q = match resolve_query(shared, query) {
                Ok(q) => q,
                Err(resp) => return resp,
            };
            match query::top_k_search(&shared.store, &q, k as usize, measure) {
                Ok(r) => Response::Results(r.results),
                Err(e) => error_response(ErrorCode::Internal, e.to_string()),
            }
        }
        Request::Range { window } => {
            match query::range_search(&shared.store, &protocol::window_mbr(&window)) {
                Ok(r) => Response::Results(r.results),
                Err(e) => error_response(ErrorCode::Internal, e.to_string()),
            }
        }
        Request::Ingest { trajectories } => match shared.store.insert_all(trajectories.iter()) {
            Ok(n) => Response::Ingested(u32::try_from(n).unwrap_or(u32::MAX)),
            Err(e) => error_response(ErrorCode::Internal, e.to_string()),
        },
        Request::Explain { inner } => execute_explain(shared, *inner),
        Request::Health => Response::Health(health_text(shared)),
        Request::Stats => Response::Stats(shared.store.render_json()),
        Request::Shutdown => Response::ShuttingDown,
    }
}

fn execute_explain(shared: &Arc<Shared>, inner: Request) -> Response {
    let explained = match inner {
        Request::Threshold { query, eps, measure } => {
            let q = match resolve_query(shared, query) {
                Ok(q) => q,
                Err(resp) => return resp,
            };
            shared.store.explain(ExplainQuery::Threshold { query: &q, eps, measure })
        }
        Request::TopK { query, k, measure } => {
            let q = match resolve_query(shared, query) {
                Ok(q) => q,
                Err(resp) => return resp,
            };
            shared.store.explain(ExplainQuery::TopK { query: &q, k: k as usize, measure })
        }
        Request::Range { window } => {
            shared.store.explain(ExplainQuery::Range { window: protocol::window_mbr(&window) })
        }
        // decode_request only builds Explain around the three query ops.
        other => {
            return error_response(
                ErrorCode::BadRequest,
                format!("explain cannot wrap op `{}`", other.op().name()),
            )
        }
    };
    match explained {
        Ok(e) => Response::Explained { results: e.result.results, trace: e.trace.render_text() },
        Err(e) => error_response(ErrorCode::Internal, e.to_string()),
    }
}

fn health_text(shared: &Shared) -> String {
    format!(
        "status: ok\nuptime_seconds: {}\nconnections_total: {}\nrequests_total: {}\n",
        shared.started.elapsed().as_secs(),
        shared.connections_total.get(),
        shared.requests_total.load(Ordering::Relaxed),
    )
}
