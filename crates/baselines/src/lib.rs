//! Baseline trajectory-similarity engines for the TraSS evaluation (§VI).
//!
//! The paper compares TraSS against four published systems. They are
//! full distributed stacks (Spark, HBase coprocessors); this crate
//! reproduces their *algorithmic* filtering behaviour so the evaluation's
//! relative shape is preserved (see DESIGN.md for per-system substitution
//! notes):
//!
//! * [`xz_kv::XzKvEngine`] — JUST / TrajMesa: XZ-Ordering (GeoMesa XZ2) on
//!   the same key-value cluster TraSS uses, with MBR + endpoint local
//!   filtering. This is the apples-to-apples I/O comparator for the
//!   paper's 66.4 % I/O-reduction claim.
//! * [`dft::DftEngine`] — DFT (VLDB'17): an R-tree over trajectory MBRs
//!   with the sample-`c·k` threshold scheme for top-k.
//! * [`dita::DitaEngine`] — DITA (SIGMOD'18): pivot-point (first/last)
//!   grid trie with MBR coverage filtering.
//! * [`repose::ReposeEngine`] — REPOSE (ICDE'21): reference-point distance
//!   lower bounds; top-k only, exactly as the paper notes.
//!
//! All engines implement [`SimilarityEngine`] and report the same
//! retrieved/candidates accounting as TraSS so Figures 9–11 can be
//! regenerated on one axis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dft;
pub mod dita;
pub mod repose;
pub mod xz_kv;

use std::time::Duration;
use trass_traj::{Measure, Trajectory, TrajectoryId};

/// The outcome of a baseline query, with the paper's accounting.
#[derive(Debug, Clone, Default)]
pub struct EngineResult {
    /// Matching `(tid, distance)` pairs; threshold results sorted by id,
    /// top-k by distance.
    pub results: Vec<(TrajectoryId, f64)>,
    /// Rows/trajectories touched by the engine (its I/O volume).
    pub retrieved: u64,
    /// Trajectories that survived the engine's cheap filters and paid an
    /// exact similarity computation.
    pub candidates: u64,
    /// Wall-clock query time.
    pub query_time: Duration,
}

impl EngineResult {
    /// `results / candidates`, the Fig. 11(c) precision.
    pub fn precision(&self) -> f64 {
        if self.candidates == 0 {
            1.0
        } else {
            self.results.len() as f64 / self.candidates as f64
        }
    }
}

/// Common interface over all comparison engines.
pub trait SimilarityEngine {
    /// Display name used by the experiment harness.
    fn name(&self) -> &'static str;

    /// Time spent building the index over the dataset.
    fn build_time(&self) -> Duration;

    /// Threshold similarity search; `None` when the engine does not
    /// support it (REPOSE).
    fn threshold(&self, query: &Trajectory, eps: f64, measure: Measure) -> Option<EngineResult>;

    /// Top-k similarity search; `None` when unsupported.
    fn top_k(&self, query: &Trajectory, k: usize, measure: Measure) -> Option<EngineResult>;
}

/// Sorts and truncates exact-distance pairs into a top-k result list.
pub(crate) fn finish_topk(
    mut scored: Vec<(TrajectoryId, f64)>,
    k: usize,
) -> Vec<(TrajectoryId, f64)> {
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN distances").then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_guards_division() {
        let r = EngineResult::default();
        assert_eq!(r.precision(), 1.0);
    }

    #[test]
    fn finish_topk_sorts_and_truncates() {
        let got = finish_topk(vec![(1, 3.0), (2, 1.0), (3, 2.0), (4, 0.5)], 2);
        assert_eq!(got, vec![(4, 0.5), (2, 1.0)]);
    }
}
