//! The DFT baseline (VLDB'17), simplified to one node.
//!
//! DFT partitions trajectory data with an R-tree and answers top-k by
//! sampling `c·k` trajectories from the partitions intersecting the query
//! to obtain a distance threshold, then verifying everything within that
//! threshold — the behaviour §VI-B blames for its large candidate sets. We
//! reproduce exactly that scheme over an in-memory R-tree of trajectory
//! MBRs.

use crate::{finish_topk, EngineResult, SimilarityEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use trass_geo::Mbr;
use trass_index::rtree::RTree;
use trass_traj::{Measure, Trajectory, TrajectoryId};

/// The DFT-like engine.
pub struct DftEngine {
    tree: RTree<usize>,
    data: Vec<Trajectory>,
    build_time: Duration,
    /// The sample multiplier `c` (paper default 5).
    pub sample_c: usize,
    seed: u64,
}

impl DftEngine {
    /// Builds the engine (incremental R-tree inserts — DFT's index is
    /// dynamic, which is what Fig. 13(a) measures).
    pub fn build(data: Vec<Trajectory>, seed: u64) -> Self {
        let t0 = Instant::now();
        let mut tree = RTree::new();
        for (i, t) in data.iter().enumerate() {
            tree.insert(t.mbr(), i);
        }
        DftEngine { tree, data, build_time: t0.elapsed(), sample_c: 5, seed }
    }

    fn intersecting(&self, window: &Mbr) -> Vec<usize> {
        self.tree.query_intersecting(window).into_iter().map(|(_, &i)| i).collect()
    }
}

impl SimilarityEngine for DftEngine {
    fn name(&self) -> &'static str {
        "DFT"
    }

    fn build_time(&self) -> Duration {
        self.build_time
    }

    fn threshold(&self, query: &Trajectory, eps: f64, measure: Measure) -> Option<EngineResult> {
        let t0 = Instant::now();
        let window = query.mbr().extended(eps);
        let hits = self.intersecting(&window);
        let retrieved = hits.len() as u64;
        // DFT's filter is partition-level only; every intersecting
        // trajectory is a candidate.
        let mut results: Vec<(TrajectoryId, f64)> = Vec::new();
        for i in &hits {
            let t = &self.data[*i];
            if measure.within(query.points(), t.points(), eps) {
                results.push((t.id, measure.distance(query.points(), t.points())));
            }
        }
        results.sort_by_key(|&(tid, _)| tid);
        Some(EngineResult { results, retrieved, candidates: retrieved, query_time: t0.elapsed() })
    }

    fn top_k(&self, query: &Trajectory, k: usize, measure: Measure) -> Option<EngineResult> {
        let t0 = Instant::now();
        if self.data.is_empty() || k == 0 {
            return Some(EngineResult::default());
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ query.id);
        // Step 1: sample c·k trajectories from partitions intersecting the
        // query MBR (fall back to the whole dataset when too few).
        let mut pool = self.intersecting(&query.mbr());
        if pool.len() < self.sample_c * k {
            pool = (0..self.data.len()).collect();
        }
        let mut threshold: f64 = 0.0;
        let mut sample_best: Vec<(TrajectoryId, f64)> = Vec::new();
        let sample_n = (self.sample_c * k).min(pool.len());
        for _ in 0..sample_n {
            let i = pool[rng.gen_range(0..pool.len())];
            let t = &self.data[i];
            let d = measure.distance(query.points(), t.points());
            sample_best.push((t.id, d));
        }
        sample_best.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));
        sample_best.dedup_by_key(|e| e.0);
        if let Some(&(_, kth)) = sample_best.get(k.saturating_sub(1)).or(sample_best.last()) {
            threshold = kth;
        }
        // Step 2: verify every trajectory whose MBR falls within the
        // sampled threshold of the query — the candidate explosion.
        let window = query.mbr().extended(threshold);
        let hits = self.intersecting(&window);
        let retrieved = sample_n as u64 + hits.len() as u64;
        let mut scored: Vec<(TrajectoryId, f64)> = Vec::with_capacity(hits.len());
        for i in hits {
            let t = &self.data[i];
            scored.push((t.id, measure.distance(query.points(), t.points())));
        }
        let candidates = scored.len() as u64;
        let results = finish_topk(scored, k);
        Some(EngineResult { results, retrieved, candidates, query_time: t0.elapsed() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Vec<Trajectory> {
        trass_traj::generator::tdrive_like(5, 200)
    }

    #[test]
    fn threshold_matches_brute_force() {
        let data = dataset();
        let e = DftEngine::build(data.clone(), 1);
        let q = &data[3];
        let eps = 0.004;
        let got = e.threshold(q, eps, Measure::Frechet).unwrap();
        let got_ids: Vec<u64> = got.results.iter().map(|&(id, _)| id).collect();
        let mut expected: Vec<u64> = data
            .iter()
            .filter(|t| Measure::Frechet.within(q.points(), t.points(), eps))
            .map(|t| t.id)
            .collect();
        expected.sort_unstable();
        assert_eq!(got_ids, expected);
    }

    #[test]
    fn topk_is_correct_despite_sampling() {
        // The sampled threshold is an upper bound obtained from real
        // distances, so the final answer is exact.
        let data = dataset();
        let e = DftEngine::build(data.clone(), 2);
        let q = &data[8];
        let got = e.top_k(q, 10, Measure::Frechet).unwrap();
        assert_eq!(got.results.len(), 10);
        let mut all: Vec<f64> =
            data.iter().map(|t| Measure::Frechet.distance(q.points(), t.points())).collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (got, want) in got.results.iter().zip(all.iter()) {
            assert!((got.1 - want).abs() < 1e-9, "{got:?} vs {want}");
        }
    }

    #[test]
    fn topk_retrieves_many_candidates() {
        // DFT's known weakness (§VI-B): the sampled threshold covers many
        // candidates.
        let data = dataset();
        let e = DftEngine::build(data.clone(), 3);
        let q = &data[0];
        let got = e.top_k(q, 5, Measure::Frechet).unwrap();
        assert!(got.candidates >= 5);
        assert!(got.retrieved >= got.candidates);
    }

    #[test]
    fn empty_and_zero_k() {
        let e = DftEngine::build(Vec::new(), 1);
        assert!(e.top_k(&dataset()[0], 5, Measure::Frechet).unwrap().results.is_empty());
        let e = DftEngine::build(dataset(), 1);
        assert!(e.top_k(&dataset()[0], 0, Measure::Frechet).unwrap().results.is_empty());
    }
}
