//! The REPOSE baseline (ICDE'21), simplified to one node.
//!
//! REPOSE builds a reference-point trie (RP-Trie) on pivot trajectories
//! and supports *only* top-k similarity search (§VI baselines note). We
//! reproduce its essence: a set of reference points, per-trajectory
//! endpoint-to-reference distances precomputed at build time, and the
//! triangle-inequality lower bound
//! `f(Q,T) ≥ max_r |d(q₁,r) − d(t₁,r)|` (endpoints couple under Fréchet
//! and DTW, and each coupled pair obeys the triangle inequality through
//! any reference point). Candidates are verified in increasing lower-bound
//! order until the bound exceeds the k-th best — the classic pivot-table
//! scheme. Its paper-documented weakness is preserved: reference quality
//! degrades on wide-extent datasets (§VI-B's Lorry discussion).

use crate::{EngineResult, SimilarityEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use trass_geo::Point;
use trass_traj::{Measure, Trajectory, TrajectoryId};

/// Number of reference points.
const N_REFS: usize = 16;

/// The REPOSE-like engine.
pub struct ReposeEngine {
    refs: Vec<Point>,
    /// Per trajectory: distances from its first and last point to every
    /// reference point.
    start_dists: Vec<[f64; N_REFS]>,
    end_dists: Vec<[f64; N_REFS]>,
    data: Vec<Trajectory>,
    build_time: Duration,
}

impl ReposeEngine {
    /// Builds the reference table over the dataset.
    pub fn build(data: Vec<Trajectory>, seed: u64) -> Self {
        let t0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed);
        // Reference points drawn from the data's own endpoints (REPOSE
        // selects pivots from the data distribution).
        let refs: Vec<Point> = if data.is_empty() {
            (0..N_REFS).map(|i| Point::new(i as f64, 0.0)).collect()
        } else {
            (0..N_REFS)
                .map(|_| {
                    let t = &data[rng.gen_range(0..data.len())];
                    if rng.gen_bool(0.5) {
                        t.start()
                    } else {
                        t.end()
                    }
                })
                .collect()
        };
        let mut start_dists = Vec::with_capacity(data.len());
        let mut end_dists = Vec::with_capacity(data.len());
        for t in &data {
            let mut sd = [0.0; N_REFS];
            let mut ed = [0.0; N_REFS];
            for (j, r) in refs.iter().enumerate() {
                sd[j] = t.start().distance(r);
                ed[j] = t.end().distance(r);
            }
            start_dists.push(sd);
            end_dists.push(ed);
        }
        ReposeEngine { refs, start_dists, end_dists, data, build_time: t0.elapsed() }
    }

    /// The triangle-inequality lower bound on `f(Q, T)`.
    fn lower_bound(&self, q_sd: &[f64; N_REFS], q_ed: &[f64; N_REFS], i: usize) -> f64 {
        let mut lb = 0.0f64;
        for j in 0..N_REFS {
            lb = lb.max((q_sd[j] - self.start_dists[i][j]).abs());
            lb = lb.max((q_ed[j] - self.end_dists[i][j]).abs());
        }
        lb
    }
}

impl SimilarityEngine for ReposeEngine {
    fn name(&self) -> &'static str {
        "REPOSE"
    }

    fn build_time(&self) -> Duration {
        self.build_time
    }

    /// REPOSE supports only top-k similarity search (§VI).
    fn threshold(&self, _q: &Trajectory, _eps: f64, _m: Measure) -> Option<EngineResult> {
        None
    }

    fn top_k(&self, query: &Trajectory, k: usize, measure: Measure) -> Option<EngineResult> {
        // The endpoint triangle bound needs endpoint coupling.
        if !measure.supports_endpoint_lemma() {
            return None;
        }
        let t0 = Instant::now();
        if self.data.is_empty() || k == 0 {
            return Some(EngineResult::default());
        }
        let mut q_sd = [0.0; N_REFS];
        let mut q_ed = [0.0; N_REFS];
        for (j, r) in self.refs.iter().enumerate() {
            q_sd[j] = query.start().distance(r);
            q_ed[j] = query.end().distance(r);
        }
        // Order by lower bound, verify until the bound passes the kth best.
        let mut order: Vec<(f64, usize)> =
            (0..self.data.len()).map(|i| (self.lower_bound(&q_sd, &q_ed, i), i)).collect();
        order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));

        let mut best: Vec<(TrajectoryId, f64)> = Vec::new();
        let mut kth = f64::INFINITY;
        let mut candidates = 0u64;
        for &(lb, i) in &order {
            if best.len() >= k && lb > kth {
                break;
            }
            candidates += 1;
            let t = &self.data[i];
            let d = measure.distance(query.points(), t.points());
            if best.len() < k {
                best.push((t.id, d));
                best.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));
                if best.len() == k {
                    kth = best[k - 1].1;
                }
            } else if d < kth {
                best.pop();
                best.push((t.id, d));
                best.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));
                kth = best[k - 1].1;
            }
        }
        Some(EngineResult {
            results: best,
            retrieved: self.data.len() as u64, // the reference table is scanned in full
            candidates,
            query_time: t0.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Vec<Trajectory> {
        trass_traj::generator::tdrive_like(13, 200)
    }

    #[test]
    fn topk_matches_brute_force_distances() {
        let data = dataset();
        let e = ReposeEngine::build(data.clone(), 7);
        let q = &data[19];
        let got = e.top_k(q, 10, Measure::Frechet).unwrap();
        assert_eq!(got.results.len(), 10);
        let mut all: Vec<f64> =
            data.iter().map(|t| Measure::Frechet.distance(q.points(), t.points())).collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (got, want) in got.results.iter().zip(all.iter()) {
            assert!((got.1 - want).abs() < 1e-9);
        }
    }

    #[test]
    fn threshold_unsupported() {
        let data = dataset();
        let e = ReposeEngine::build(data.clone(), 7);
        assert!(e.threshold(&data[0], 0.01, Measure::Frechet).is_none());
    }

    #[test]
    fn hausdorff_unsupported() {
        let data = dataset();
        let e = ReposeEngine::build(data.clone(), 7);
        assert!(e.top_k(&data[0], 5, Measure::Hausdorff).is_none());
    }

    #[test]
    fn pruning_verifies_fewer_than_everything() {
        let data = dataset();
        let e = ReposeEngine::build(data.clone(), 7);
        let got = e.top_k(&data[4], 5, Measure::Frechet).unwrap();
        assert!(
            got.candidates < data.len() as u64,
            "verified {} of {} — lower bounds never fired",
            got.candidates,
            data.len()
        );
    }

    #[test]
    fn wide_extent_degrades_pruning() {
        // §VI-B: on the China-wide Lorry data the RP structure prunes
        // poorly. Compare candidate ratios between a compact and a wide
        // dataset.
        let compact = dataset();
        let wide = trass_traj::generator::lorry_like(13, 200);
        let ec = ReposeEngine::build(compact.clone(), 3);
        let ew = ReposeEngine::build(wide.clone(), 3);
        let rc = ec.top_k(&compact[0], 5, Measure::Frechet).unwrap();
        let rw = ew.top_k(&wide[0], 5, Measure::Frechet).unwrap();
        // Both prune something; wide-extent pruning is reported for the
        // experiment harness rather than asserted strictly (distributions
        // vary), but candidates must stay within the dataset size.
        assert!(rc.candidates <= compact.len() as u64);
        assert!(rw.candidates <= wide.len() as u64);
    }

    #[test]
    fn empty_dataset() {
        let e = ReposeEngine::build(Vec::new(), 1);
        let q = dataset().remove(0);
        assert!(e.top_k(&q, 5, Measure::Frechet).unwrap().results.is_empty());
    }
}
