//! The JUST / TrajMesa baseline: XZ-Ordering on the key-value cluster.
//!
//! JUST (ICDE'20) and TrajMesa store trajectories in HBase under GeoMesa's
//! XZ2 index and filter candidates by MBR and pivot (start/end) points —
//! no shape information, no resolution banding. Running it on the *same*
//! LSM cluster as TraSS makes the rows-scanned comparison the paper's
//! Fig. 11(b) / §VI-C I/O claim.

use crate::{finish_topk, EngineResult, SimilarityEngine};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use trass_core::schema::{parse_rowkey, rowkey, rowkey_range, shard_of, RowValue};
use trass_geo::{Mbr, NormalizedSpace};
use trass_index::xz2::Xz2;
use trass_kv::{Cluster, ClusterOptions, FilterDecision, KeyRange, ScanFilter, StoreOptions};
use trass_traj::{DpFeatures, Measure, Trajectory};

/// Configuration of the XZ-KV baseline.
#[derive(Debug, Clone)]
pub struct XzKvConfig {
    /// Maximum XZ2 resolution (same default as TraSS for fairness).
    pub max_resolution: u8,
    /// Rowkey shards.
    pub shards: u8,
    /// Square world extent.
    pub space: NormalizedSpace,
    /// DP tolerance — rows store the same value payload as TraSS so byte
    /// volumes are comparable.
    pub dp_theta: f64,
}

impl Default for XzKvConfig {
    fn default() -> Self {
        XzKvConfig { max_resolution: 16, shards: 8, space: trass_geo::WORLD_SQUARE, dp_theta: 0.01 }
    }
}

/// The engine: an XZ2 index over a sharded KV cluster.
pub struct XzKvEngine {
    config: XzKvConfig,
    index: Xz2,
    cluster: Cluster,
    build_time: Duration,
    n: usize,
}

impl XzKvEngine {
    /// Builds the engine over a dataset (in-memory cluster).
    pub fn build(data: &[Trajectory], config: XzKvConfig) -> Self {
        let t0 = Instant::now();
        let cluster = Cluster::open(ClusterOptions {
            shards: config.shards,
            store: StoreOptions::in_memory(),
            ..ClusterOptions::default()
        })
        .expect("in-memory cluster always opens");
        let index = Xz2::new(config.max_resolution);
        for traj in data {
            let unit_mbr = config.space.mbr_to_unit(&traj.mbr());
            let code = index.encode(&index.index_mbr(&unit_mbr));
            let shard = shard_of(traj.id, config.shards);
            let key = rowkey(shard, code, traj.id);
            let row = RowValue {
                points: traj.points().to_vec(),
                features: DpFeatures::extract(traj, config.dp_theta),
            };
            cluster.put(key, row.encode()).expect("in-memory put");
        }
        cluster.flush().expect("flush");
        XzKvEngine { config, index, cluster, build_time: t0.elapsed(), n: data.len() }
    }

    /// The underlying cluster (for I/O metrics in experiments).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Runs a threshold query and reports stats.
    fn run_threshold(&self, query: &Trajectory, eps: f64, measure: Measure) -> EngineResult {
        let t0 = Instant::now();
        let q_mbr = query.mbr();
        let ext = q_mbr.extended(eps);
        let unit_window = self.config.space.mbr_to_unit(&ext);
        let value_ranges = self.index.query_ranges(&unit_window, 0);
        let mut key_ranges: Vec<KeyRange> =
            Vec::with_capacity(value_ranges.len() * self.config.shards as usize);
        for shard in 0..self.config.shards {
            for vr in &value_ranges {
                key_ranges.push(rowkey_range(shard, vr.start, vr.end));
            }
        }

        let io_before = self.cluster.metrics_snapshot();
        // JUST-style local filter: MBR containment in the extended window
        // plus start/end pivots (for coupling measures).
        let filter = MbrEndpointFilter::new(query, ext, eps, measure);
        let rows = self.cluster.scan_ranges(&key_ranges, &filter).expect("scan");
        let retrieved = self.cluster.metrics_snapshot().since(&io_before).entries_scanned;

        let mut results = Vec::new();
        for row in rows {
            let Some((_, _, tid)) = parse_rowkey(&row.key) else { continue };
            let Ok(value) = RowValue::decode(&row.value) else { continue };
            if measure.within(query.points(), &value.points, eps) {
                let d = measure.distance(query.points(), &value.points);
                results.push((tid, d));
            }
        }
        results.sort_by_key(|&(tid, _)| tid);
        EngineResult { results, retrieved, candidates: filter.kept(), query_time: t0.elapsed() }
    }
}

impl SimilarityEngine for XzKvEngine {
    fn name(&self) -> &'static str {
        "JUST(XZ2)"
    }

    fn build_time(&self) -> Duration {
        self.build_time
    }

    fn threshold(&self, query: &Trajectory, eps: f64, measure: Measure) -> Option<EngineResult> {
        Some(self.run_threshold(query, eps, measure))
    }

    fn top_k(&self, query: &Trajectory, k: usize, measure: Measure) -> Option<EngineResult> {
        // JUST answers top-k by iterative threshold expansion: start from a
        // small radius and double until k results exist.
        let t0 = Instant::now();
        let mut eps = query.mbr().width().max(query.mbr().height()).max(1e-4) * 0.1;
        let mut agg = EngineResult::default();
        for _ in 0..32 {
            let r = self.run_threshold(query, eps, measure);
            agg.retrieved += r.retrieved;
            agg.candidates += r.candidates;
            if r.results.len() >= k || agg.retrieved as usize >= self.n {
                agg.results = finish_topk(r.results, k);
                agg.query_time = t0.elapsed();
                return Some(agg);
            }
            eps *= 2.0;
        }
        agg.query_time = t0.elapsed();
        Some(agg)
    }
}

/// The JUST-style push-down filter: MBR inside the extended window +
/// endpoint pivots.
struct MbrEndpointFilter {
    q_start: trass_geo::Point,
    q_end: trass_geo::Point,
    ext: Mbr,
    eps: f64,
    endpoint_check: bool,
    kept: AtomicU64,
}

impl MbrEndpointFilter {
    fn new(query: &Trajectory, ext: Mbr, eps: f64, measure: Measure) -> Self {
        MbrEndpointFilter {
            q_start: query.start(),
            q_end: query.end(),
            ext,
            eps,
            endpoint_check: measure.supports_endpoint_lemma(),
            kept: AtomicU64::new(0),
        }
    }

    fn kept(&self) -> u64 {
        self.kept.load(Ordering::Relaxed)
    }
}

impl ScanFilter for MbrEndpointFilter {
    fn check(&self, _key: &[u8], value: &[u8]) -> FilterDecision {
        let Ok(row) = RowValue::decode(value) else { return FilterDecision::Skip };
        let Some(mbr) = Mbr::from_points(row.points.iter()) else {
            return FilterDecision::Skip;
        };
        // Any similar trajectory lies wholly inside Ext(Q.MBR, eps).
        if !self.ext.contains(&mbr) {
            return FilterDecision::Skip;
        }
        if self.endpoint_check {
            let t_start = row.points[0];
            let t_end = *row.points.last().expect("non-empty");
            if self.q_start.distance(&t_start) > self.eps || self.q_end.distance(&t_end) > self.eps
            {
                return FilterDecision::Skip;
            }
        }
        self.kept.fetch_add(1, Ordering::Relaxed);
        FilterDecision::Keep
    }
}

/// Helper for experiments: build with an explicit square extent.
pub fn build_for_extent(data: &[Trajectory], extent: Mbr) -> XzKvEngine {
    XzKvEngine::build(
        data,
        XzKvConfig { space: NormalizedSpace::square(extent), ..XzKvConfig::default() },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Vec<Trajectory> {
        trass_traj::generator::tdrive_like(3, 200)
    }

    fn engine(data: &[Trajectory]) -> XzKvEngine {
        build_for_extent(data, trass_traj::generator::BEIJING)
    }

    #[test]
    fn threshold_matches_brute_force() {
        let data = dataset();
        let e = engine(&data);
        let q = &data[10];
        let eps = 0.005;
        let got = e.threshold(q, eps, Measure::Frechet).unwrap();
        let got_ids: Vec<u64> = got.results.iter().map(|&(id, _)| id).collect();
        let mut expected: Vec<u64> = data
            .iter()
            .filter(|t| Measure::Frechet.within(q.points(), t.points(), eps))
            .map(|t| t.id)
            .collect();
        expected.sort_unstable();
        assert_eq!(got_ids, expected);
    }

    #[test]
    fn topk_matches_brute_force_distances() {
        let data = dataset();
        let e = engine(&data);
        let q = &data[42];
        let got = e.top_k(q, 8, Measure::Frechet).unwrap();
        assert_eq!(got.results.len(), 8);
        let mut all: Vec<f64> =
            data.iter().map(|t| Measure::Frechet.distance(q.points(), t.points())).collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (got, want) in got.results.iter().zip(all.iter()) {
            assert!((got.1 - want).abs() < 1e-9);
        }
    }

    #[test]
    fn retrieves_more_than_needed() {
        // The known weakness the paper exploits: XZ2 has no shape pruning,
        // so retrieved >> results.
        let data = dataset();
        let e = engine(&data);
        let q = &data[5];
        let r = e.threshold(q, 0.002, Measure::Frechet).unwrap();
        assert!(r.retrieved >= r.candidates);
        assert!(r.candidates as usize >= r.results.len());
    }

    #[test]
    fn engine_metadata() {
        let data = dataset();
        let e = engine(&data);
        assert_eq!(e.name(), "JUST(XZ2)");
        assert!(e.build_time() > Duration::ZERO);
    }
}
