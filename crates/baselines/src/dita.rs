//! The DITA baseline (SIGMOD'18), simplified to one node.
//!
//! DITA builds a trie over pivot points (first point, last point, then
//! interior pivots) with MBR-based node pruning. We reproduce the
//! first/last-pivot levels as a two-level grid trie and keep its
//! characteristic weakness the paper calls out: "a trajectory may appear
//! in a small area of its representative MBR", so MBR coverage filtering
//! leaves many candidates.

use crate::{finish_topk, EngineResult, SimilarityEngine};
use std::collections::HashMap;
use std::time::{Duration, Instant};
use trass_geo::{Mbr, Point};
use trass_traj::{Measure, Trajectory, TrajectoryId};

/// Grid resolution of the pivot trie (cells per axis over the dataset
/// extent).
const GRID: usize = 64;

/// The DITA-like engine.
pub struct DitaEngine {
    /// (start-cell, end-cell) → trajectory indexes.
    trie: HashMap<(u32, u32), Vec<usize>>,
    data: Vec<Trajectory>,
    extent: Mbr,
    build_time: Duration,
}

impl DitaEngine {
    /// Builds the trie over the dataset.
    pub fn build(data: Vec<Trajectory>) -> Self {
        let t0 = Instant::now();
        let extent = data
            .iter()
            .map(|t| t.mbr())
            .reduce(|a, b| a.union(&b))
            .unwrap_or(Mbr::new(0.0, 0.0, 1.0, 1.0));
        let mut trie: HashMap<(u32, u32), Vec<usize>> = HashMap::new();
        for (i, t) in data.iter().enumerate() {
            let key = (cell_of(&t.start(), &extent), cell_of(&t.end(), &extent));
            trie.entry(key).or_default().push(i);
        }
        DitaEngine { trie, data, extent, build_time: t0.elapsed() }
    }

    /// Indexes of trajectories whose start/end cells are within `eps` of
    /// the query's start/end points.
    fn pivot_candidates(&self, query: &Trajectory, eps: f64) -> Vec<usize> {
        let start_cells = cells_within(&query.start(), eps, &self.extent);
        let end_cells = cells_within(&query.end(), eps, &self.extent);
        let mut out = Vec::new();
        for &s in &start_cells {
            for &e in &end_cells {
                if let Some(ids) = self.trie.get(&(s, e)) {
                    out.extend_from_slice(ids);
                }
            }
        }
        out
    }
}

impl SimilarityEngine for DitaEngine {
    fn name(&self) -> &'static str {
        "DITA"
    }

    fn build_time(&self) -> Duration {
        self.build_time
    }

    fn threshold(&self, query: &Trajectory, eps: f64, measure: Measure) -> Option<EngineResult> {
        let t0 = Instant::now();
        // DITA's trie prunes on pivots only for coupling measures; for
        // Hausdorff it cannot (and the real system does not support it).
        if !measure.supports_endpoint_lemma() {
            return None;
        }
        let hits = self.pivot_candidates(query, eps);
        let retrieved = hits.len() as u64;
        let window = query.mbr().extended(eps);
        // MBR coverage filter, then exact.
        let mut candidates = 0u64;
        let mut results: Vec<(TrajectoryId, f64)> = Vec::new();
        for i in hits {
            let t = &self.data[i];
            if !window.contains(&t.mbr()) {
                continue;
            }
            candidates += 1;
            if measure.within(query.points(), t.points(), eps) {
                results.push((t.id, measure.distance(query.points(), t.points())));
            }
        }
        results.sort_by_key(|&(tid, _)| tid);
        Some(EngineResult { results, retrieved, candidates, query_time: t0.elapsed() })
    }

    fn top_k(&self, query: &Trajectory, k: usize, measure: Measure) -> Option<EngineResult> {
        if !measure.supports_endpoint_lemma() {
            return None;
        }
        let t0 = Instant::now();
        // Iterative radius doubling over the pivot trie.
        let mut eps = self.extent.width().max(self.extent.height()) / GRID as f64;
        let mut agg = EngineResult::default();
        for _ in 0..24 {
            let r = self.threshold(query, eps, measure)?;
            agg.retrieved += r.retrieved;
            agg.candidates += r.candidates;
            if r.results.len() >= k {
                agg.results = finish_topk(r.results, k);
                agg.query_time = t0.elapsed();
                return Some(agg);
            }
            eps *= 2.0;
        }
        // Radius exhausted the extent: fall back to a full scan.
        let mut scored: Vec<(TrajectoryId, f64)> = self
            .data
            .iter()
            .map(|t| (t.id, measure.distance(query.points(), t.points())))
            .collect();
        agg.retrieved += self.data.len() as u64;
        agg.candidates += scored.len() as u64;
        scored = finish_topk(scored, k);
        agg.results = scored;
        agg.query_time = t0.elapsed();
        Some(agg)
    }
}

fn cell_of(p: &Point, extent: &Mbr) -> u32 {
    let gx = (((p.x - extent.min_x) / extent.width().max(1e-12)) * GRID as f64)
        .clamp(0.0, GRID as f64 - 1.0) as u32;
    let gy = (((p.y - extent.min_y) / extent.height().max(1e-12)) * GRID as f64)
        .clamp(0.0, GRID as f64 - 1.0) as u32;
    gy * GRID as u32 + gx
}

/// All grid cells intersecting the disc of radius `eps` around `p`
/// (approximated by its bounding square — a superset, so sound).
fn cells_within(p: &Point, eps: f64, extent: &Mbr) -> Vec<u32> {
    let cw = extent.width() / GRID as f64;
    let ch = extent.height() / GRID as f64;
    let gx0 = (((p.x - eps - extent.min_x) / cw).floor().max(0.0)) as i64;
    let gx1 = (((p.x + eps - extent.min_x) / cw).floor()).min(GRID as f64 - 1.0) as i64;
    let gy0 = (((p.y - eps - extent.min_y) / ch).floor().max(0.0)) as i64;
    let gy1 = (((p.y + eps - extent.min_y) / ch).floor()).min(GRID as f64 - 1.0) as i64;
    let mut out = Vec::new();
    for gy in gy0..=gy1.max(gy0) {
        for gx in gx0..=gx1.max(gx0) {
            if (0..GRID as i64).contains(&gx) && (0..GRID as i64).contains(&gy) {
                out.push(gy as u32 * GRID as u32 + gx as u32);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Vec<Trajectory> {
        trass_traj::generator::tdrive_like(9, 200)
    }

    #[test]
    fn threshold_matches_brute_force() {
        let data = dataset();
        let e = DitaEngine::build(data.clone());
        let q = &data[7];
        let eps = 0.004;
        let got = e.threshold(q, eps, Measure::Frechet).unwrap();
        let got_ids: Vec<u64> = got.results.iter().map(|&(id, _)| id).collect();
        let mut expected: Vec<u64> = data
            .iter()
            .filter(|t| Measure::Frechet.within(q.points(), t.points(), eps))
            .map(|t| t.id)
            .collect();
        expected.sort_unstable();
        assert_eq!(got_ids, expected);
    }

    #[test]
    fn hausdorff_unsupported() {
        // §VII-C: "DITA does not support the Hausdorff distance".
        let data = dataset();
        let e = DitaEngine::build(data.clone());
        assert!(e.threshold(&data[0], 0.01, Measure::Hausdorff).is_none());
        assert!(e.top_k(&data[0], 5, Measure::Hausdorff).is_none());
    }

    #[test]
    fn topk_matches_brute_force_distances() {
        let data = dataset();
        let e = DitaEngine::build(data.clone());
        let q = &data[11];
        let got = e.top_k(q, 10, Measure::Frechet).unwrap();
        assert_eq!(got.results.len(), 10);
        let mut all: Vec<f64> =
            data.iter().map(|t| Measure::Frechet.distance(q.points(), t.points())).collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (got, want) in got.results.iter().zip(all.iter()) {
            assert!((got.1 - want).abs() < 1e-9);
        }
    }

    #[test]
    fn dtw_topk_works() {
        let data = dataset();
        let e = DitaEngine::build(data.clone());
        let got = e.top_k(&data[2], 5, Measure::Dtw).unwrap();
        assert_eq!(got.results.len(), 5);
    }
}
