//! An embedded, dependency-free telemetry HTTP endpoint.
//!
//! [`HttpServer`] is a deliberately minimal HTTP/1.1 server over
//! [`std::net::TcpListener`]: GET-only, one request per connection,
//! thread-per-connection with a graceful-shutdown handle that joins every
//! thread it ever spawned. It exists to put the observability surface on a
//! wire for `curl` and Prometheus — it is not a general web server and
//! never parses bodies.
//!
//! [`Telemetry`] composes the server with a running
//! [`Collector`](crate::collector) and wires the standard routes:
//!
//! | route           | content                                              |
//! |-----------------|------------------------------------------------------|
//! | `/metrics`      | Prometheus text exposition                           |
//! | `/metrics.json` | JSON snapshot of the registry                        |
//! | `/traces`       | flight-recorder dump (`?format=json` for JSON)       |
//! | `/slowlog`      | the slow-query log (`?format=json` for JSON)         |
//! | `/profile`      | collapsed-stack flame-graph lines folded from the    |
//! |                 | flight recorder (`?weight=wall\|alloc\|cpu`)         |
//! | `/workload`     | per-fingerprint workload summary (`?format=json`)    |
//! | `/vars/history` | collector ring buffers as rate/delta time series     |
//! | `/healthz`      | probes + SLO verdicts; 503 on failure or burn breach |
//! | `/readyz`       | probes only; 503 on failure                          |

use crate::collector::{Collector, CollectorHandle, CollectorOptions};
use crate::export::json_string;
use crate::health::{HealthRegistry, SloEvaluator, SloObjective, SloStatus};
use crate::registry::Registry;
use crate::trace::FlightRecorder;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest request head (request line + headers) the server reads.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Per-connection socket timeout: a stalled client cannot hold a handler
/// thread (and therefore shutdown) hostage for longer than this.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(5);

/// A parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// HTTP method (`GET`, …), uppercase as received.
    pub method: String,
    /// Path component, without the query string.
    pub path: String,
    /// Raw query string (no leading `?`; empty when absent).
    pub query: String,
}

impl Request {
    /// True when the query string contains `key=value` as one `&`-separated
    /// component (no percent-decoding — telemetry queries are ASCII).
    pub fn query_has(&self, key: &str, value: &str) -> bool {
        self.query.split('&').any(|kv| {
            let mut it = kv.splitn(2, '=');
            it.next() == Some(key) && it.next() == Some(value)
        })
    }
}

/// A response: status, content type, body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 text/plain` response.
    pub fn text(body: impl Into<String>) -> Response {
        Response { status: 200, content_type: "text/plain; charset=utf-8", body: body.into() }
    }

    /// A `200 application/json` response.
    pub fn json(body: impl Into<String>) -> Response {
        Response { status: 200, content_type: "application/json", body: body.into() }
    }

    /// A plain-text response with an explicit status code.
    pub fn status(status: u16, body: impl Into<String>) -> Response {
        Response { status, ..Response::text(body) }
    }
}

/// The request handler a server routes every request through.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// A minimal threaded HTTP/1.1 server with graceful shutdown.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting; every request is answered by `handler`.
    pub fn serve(addr: &str, handler: Handler) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread =
            std::thread::Builder::new().name("trass-telemetry".into()).spawn(move || {
                let mut conns: Vec<JoinHandle<()>> = Vec::new();
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Reap finished handlers so the vec stays bounded by
                    // the number of concurrent connections.
                    conns.retain(|h| !h.is_finished());
                    let handler = Arc::clone(&handler);
                    let spawned = std::thread::Builder::new()
                        .name("trass-telemetry-conn".into())
                        .spawn(move || handle_connection(stream, &handler));
                    match spawned {
                        Ok(h) => conns.push(h),
                        Err(_) => continue, // connection dropped; client retries
                    }
                }
                for h in conns {
                    let _ = h.join();
                }
            })?;
        Ok(HttpServer { addr: local, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, waits for in-flight requests, joins every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // The accept loop blocks in accept(); a throwaway connection
        // unblocks it so it can observe the flag.
        if let Ok(s) = TcpStream::connect_timeout(&self.addr, SOCKET_TIMEOUT) {
            drop(s);
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer").field("addr", &self.addr).finish()
    }
}

/// Serves one connection: parse, route, respond, close.
fn handle_connection(mut stream: TcpStream, handler: &Handler) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let response = match read_request(&mut stream) {
        Ok(Some(req)) if req.method == "GET" => handler(&req),
        Ok(Some(_)) => Response::status(405, "only GET is supported\n"),
        Ok(None) => return, // client connected and said nothing (e.g. the shutdown wake-up)
        Err(_) => Response::status(400, "malformed request\n"),
    };
    let _ = write_response(&mut stream, &response);
}

/// Reads and parses the request head. `Ok(None)` when the peer closed
/// without sending anything.
fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<Request>> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "request too large"));
        }
    }
    if buf.is_empty() {
        return Ok(None);
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next().unwrap_or_default();
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "bad request line"));
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(Some(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        query: query.to_string(),
    }))
}

fn write_response(stream: &mut TcpStream, r: &Response) -> std::io::Result<()> {
    let reason = match r.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        r.status,
        reason,
        r.content_type,
        r.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(r.body.as_bytes())?;
    stream.flush()
}

/// Telemetry endpoint tuning.
#[derive(Debug, Clone)]
pub struct TelemetryOptions {
    /// Bind address; `"127.0.0.1:0"` picks an ephemeral port.
    pub addr: String,
    /// Collector sampling interval.
    pub interval: Duration,
    /// Collector ring capacity (samples per series).
    pub history: usize,
    /// SLO objectives evaluated each collector tick.
    pub objectives: Vec<SloObjective>,
}

impl Default for TelemetryOptions {
    fn default() -> Self {
        TelemetryOptions {
            addr: "127.0.0.1:0".to_string(),
            interval: Duration::from_secs(1),
            history: 120,
            objectives: Vec::new(),
        }
    }
}

/// What the endpoint serves. Only `registry` and `health` are mandatory;
/// routes whose source is absent answer 404.
#[derive(Clone)]
pub struct TelemetrySources {
    /// The metric registry behind `/metrics`, `/metrics.json`, and the
    /// collector.
    pub registry: Arc<Registry>,
    /// Runs before every scrape and collector sample (mirror external
    /// counters into the registry here).
    pub refresh: Option<Arc<dyn Fn() + Send + Sync>>,
    /// Flight recorder behind `/traces` and `/profile`.
    pub flight: Option<Arc<FlightRecorder>>,
    /// Renders the slow-query log for `/slowlog`; the argument selects
    /// JSON (`true`, for `?format=json`) or text rendering.
    pub slowlog: Option<Arc<dyn Fn(bool) -> String + Send + Sync>>,
    /// Workload summary behind `/workload`.
    pub workload: Option<Arc<crate::fingerprint::WorkloadSummary>>,
    /// Probes behind `/healthz` and `/readyz`.
    pub health: Arc<HealthRegistry>,
}

impl std::fmt::Debug for TelemetrySources {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetrySources")
            .field("flight", &self.flight.is_some())
            .field("slowlog", &self.slowlog.is_some())
            .field("workload", &self.workload.is_some())
            .field("probes", &self.health.len())
            .finish()
    }
}

/// A running telemetry endpoint: the HTTP server plus its background
/// collector. Shuts down cleanly on [`Telemetry::shutdown`] or drop.
#[derive(Debug)]
pub struct Telemetry {
    server: HttpServer,
    collector: Arc<Collector>,
    collector_handle: CollectorHandle,
    slo: Arc<SloEvaluator>,
    health: Arc<HealthRegistry>,
}

impl Telemetry {
    /// Binds the endpoint, starts the collector thread, and wires every
    /// route described in the module docs.
    pub fn serve(opts: TelemetryOptions, sources: TelemetrySources) -> std::io::Result<Telemetry> {
        let slo = Arc::new(SloEvaluator::new(&sources.registry, opts.objectives.clone()));
        let collector = Arc::new(Collector::new(
            Arc::clone(&sources.registry),
            sources.refresh.clone(),
            Some(Arc::clone(&slo)),
            CollectorOptions { interval: opts.interval, capacity: opts.history },
        ));
        let collector_handle = collector.start()?;
        let handler = router(sources.clone(), Arc::clone(&collector), Arc::clone(&slo));
        let server = HttpServer::serve(&opts.addr, handler)?;
        Ok(Telemetry { server, collector, collector_handle, slo, health: sources.health })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The background collector (exposed so tests and deterministic
    /// drivers can step it with `collect_once`).
    pub fn collector(&self) -> &Arc<Collector> {
        &self.collector
    }

    /// The SLO evaluator driving `/healthz`.
    pub fn slo(&self) -> &Arc<SloEvaluator> {
        &self.slo
    }

    /// The probe set behind `/healthz` and `/readyz`.
    pub fn health(&self) -> &Arc<HealthRegistry> {
        &self.health
    }

    /// Stops the collector and the server, joining every thread.
    pub fn shutdown(mut self) {
        self.collector_handle.stop();
        self.server.shutdown();
    }
}

/// Builds the route table.
fn router(sources: TelemetrySources, collector: Arc<Collector>, slo: Arc<SloEvaluator>) -> Handler {
    Arc::new(move |req: &Request| {
        match req.path.as_str() {
            "/" => Response::text(
                "trass telemetry\n\n/metrics\n/metrics.json\n/traces\n/slowlog\n/profile\n/workload\n/vars/history\n/healthz\n/readyz\n",
            ),
            "/metrics" => {
                if let Some(refresh) = &sources.refresh {
                    refresh();
                }
                Response {
                    content_type: "text/plain; version=0.0.4; charset=utf-8",
                    ..Response::text(sources.registry.render_prometheus())
                }
            }
            "/metrics.json" => {
                if let Some(refresh) = &sources.refresh {
                    refresh();
                }
                Response::json(sources.registry.render_json())
            }
            "/traces" => match &sources.flight {
                None => Response::status(404, "no flight recorder attached\n"),
                Some(flight) => {
                    let traces = flight.snapshot();
                    if req.query_has("format", "json") {
                        let docs: Vec<String> =
                            traces.iter().map(|t| t.render_json()).collect();
                        Response::json(format!("[{}]", docs.join(",")))
                    } else {
                        let mut out = format!("{} retained trace(s)\n\n", traces.len());
                        for t in &traces {
                            out.push_str(&t.render_text());
                            out.push('\n');
                        }
                        Response::text(out)
                    }
                }
            },
            "/slowlog" => match &sources.slowlog {
                None => Response::status(404, "no slow-query log attached\n"),
                Some(render) => {
                    if req.query_has("format", "json") {
                        Response::json(render(true))
                    } else {
                        Response::text(render(false))
                    }
                }
            },
            "/profile" => match &sources.flight {
                None => Response::status(404, "no flight recorder attached\n"),
                Some(flight) => {
                    let weight = req
                        .query
                        .split('&')
                        .find_map(|kv| kv.strip_prefix("weight="))
                        .unwrap_or("wall");
                    match crate::profile::ProfileWeight::parse(weight) {
                        None => Response::status(
                            400,
                            "unknown weight; use weight=wall|alloc|cpu\n",
                        ),
                        Some(w) => Response::text(crate::profile::render_flight(flight, w)),
                    }
                }
            },
            "/workload" => match &sources.workload {
                None => Response::status(404, "no workload summary attached\n"),
                Some(workload) => {
                    if req.query_has("format", "json") {
                        Response::json(workload.render_json())
                    } else {
                        Response::text(workload.render_text())
                    }
                }
            },
            "/vars/history" => Response::json(collector.render_history()),
            "/healthz" => render_health(&sources.health, Some(&slo)),
            "/readyz" => render_health(&sources.health, None),
            _ => Response::status(404, "not found\n"),
        }
    })
}

/// Renders probe results (and, for `/healthz`, SLO verdicts) as a
/// plain-text report with a 200/503 status.
fn render_health(health: &HealthRegistry, slo: Option<&Arc<SloEvaluator>>) -> Response {
    let mut ok = true;
    let mut body = String::new();
    for report in health.check() {
        match &report.result {
            Ok(()) => body.push_str(&format!("ok   probe {}\n", report.name)),
            Err(reason) => {
                ok = false;
                body.push_str(&format!("FAIL probe {}: {}\n", report.name, reason));
            }
        }
    }
    if let Some(slo) = slo {
        for status in slo.statuses() {
            body.push_str(&render_slo_line(&status));
            if status.breached {
                ok = false;
            }
        }
    }
    if body.is_empty() {
        body.push_str("no probes registered\n");
    }
    body.insert_str(0, if ok { "status: ok\n" } else { "status: unhealthy\n" });
    Response::status(if ok { 200 } else { 503 }, body)
}

fn render_slo_line(s: &SloStatus) -> String {
    format!(
        "{} slo {} fast_burn={:.2} slow_burn={:.2}\n",
        if s.breached { "FAIL" } else { "ok  " },
        // The name is operator-provided free text; keep the line greppable.
        json_string(&s.name),
        s.fast_burn,
        s.slow_burn
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A raw one-shot HTTP client: sends `GET path` and returns
    /// `(status, body)`.
    fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
            .expect("send");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad response: {raw:?}"));
        let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (status, body)
    }

    fn hello_server() -> HttpServer {
        HttpServer::serve(
            "127.0.0.1:0",
            Arc::new(|req: &Request| match req.path.as_str() {
                "/hello" => Response::text("hi"),
                "/json" => Response::json("{\"a\":1}"),
                _ => Response::status(404, "nope"),
            }),
        )
        .expect("bind")
    }

    #[test]
    fn serves_and_routes_requests() {
        let server = hello_server();
        let addr = server.local_addr();
        assert_eq!(http_get(addr, "/hello"), (200, "hi".to_string()));
        assert_eq!(http_get(addr, "/json").0, 200);
        assert_eq!(http_get(addr, "/missing").0, 404);
    }

    #[test]
    fn non_get_methods_rejected() {
        let server = hello_server();
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.write_all(b"POST /hello HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
    }

    #[test]
    fn malformed_request_answers_400() {
        let server = hello_server();
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.write_all(b"nonsense\r\n\r\n").expect("send");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
    }

    #[test]
    fn shutdown_joins_and_unbinds() {
        let mut server = hello_server();
        let addr = server.local_addr();
        assert_eq!(http_get(addr, "/hello").0, 200);
        server.shutdown();
        // The listener is gone: a fresh connection must fail (the port was
        // released) or at least never be served. Binding the same port
        // again proves release.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port still held after shutdown");
        server.shutdown(); // idempotent
    }

    #[test]
    fn concurrent_requests_are_all_served() {
        let server = Arc::new(hello_server());
        let addr = server.local_addr();
        let mut handles = Vec::new();
        for _ in 0..8 {
            handles.push(std::thread::spawn(move || http_get(addr, "/hello")));
        }
        for h in handles {
            assert_eq!(h.join().expect("client"), (200, "hi".to_string()));
        }
    }

    fn telemetry_fixture(objectives: Vec<SloObjective>) -> (Arc<Registry>, Telemetry) {
        let registry = Registry::new_shared();
        registry.counter("demo_total", &[]).add(5);
        registry.timer("demo_seconds", &[]).record(1_000_000);
        let health = HealthRegistry::new_shared();
        health.register("self", || Ok(()));
        let telemetry = Telemetry::serve(
            TelemetryOptions {
                interval: Duration::from_millis(3_600_000), // effectively manual
                history: 4,
                objectives,
                ..TelemetryOptions::default()
            },
            TelemetrySources {
                registry: Arc::clone(&registry),
                refresh: None,
                flight: None,
                slowlog: None,
                workload: None,
                health,
            },
        )
        .expect("serve telemetry");
        (registry, telemetry)
    }

    #[test]
    fn telemetry_serves_every_route() {
        let (_registry, telemetry) = telemetry_fixture(Vec::new());
        let addr = telemetry.local_addr();
        let (status, metrics) = http_get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(metrics.contains("# TYPE demo_total counter"), "{metrics}");
        assert!(metrics.contains("demo_seconds_bucket"), "{metrics}");
        let (status, json) = http_get(addr, "/metrics.json");
        assert_eq!(status, 200);
        assert!(json.contains("\"demo_total\""), "{json}");
        assert_eq!(http_get(addr, "/").0, 200);
        assert_eq!(http_get(addr, "/traces").0, 404, "no flight recorder attached");
        assert_eq!(http_get(addr, "/slowlog").0, 404);
        assert_eq!(http_get(addr, "/profile").0, 404, "no flight recorder attached");
        assert_eq!(http_get(addr, "/workload").0, 404, "no workload summary attached");
        let (status, health) = http_get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(health.contains("ok   probe self"), "{health}");
        assert_eq!(http_get(addr, "/readyz").0, 200);
        telemetry.collector().collect_once();
        let (status, history) = http_get(addr, "/vars/history");
        assert_eq!(status, 200);
        assert!(history.contains("\"demo_total\""), "{history}");
        telemetry.shutdown();
    }

    #[test]
    fn healthz_fails_on_probe_failure() {
        let registry = Registry::new_shared();
        let health = HealthRegistry::new_shared();
        health.register("disk", || Err("disk full".to_string()));
        let telemetry = Telemetry::serve(
            TelemetryOptions::default(),
            TelemetrySources {
                registry,
                refresh: None,
                flight: None,
                slowlog: None,
                workload: None,
                health,
            },
        )
        .expect("serve");
        let (status, body) = http_get(telemetry.local_addr(), "/healthz");
        assert_eq!(status, 503);
        assert!(body.contains("FAIL probe disk: disk full"), "{body}");
        let (status, _) = http_get(telemetry.local_addr(), "/readyz");
        assert_eq!(status, 503);
        telemetry.shutdown();
    }

    #[test]
    fn healthz_flips_on_slo_breach_and_recovery_is_possible() {
        let mut objective = SloObjective::latency_under("lat", "demo_seconds", 0.5, 0.99);
        objective.fast_window = 2;
        objective.slow_window = 4;
        let (registry, telemetry) = telemetry_fixture(vec![objective]);
        let addr = telemetry.local_addr();
        assert_eq!(http_get(addr, "/healthz").0, 200);
        // Injected latency spike: every sample blows the 500 ms threshold.
        let t = registry.timer("demo_seconds", &[]);
        for _ in 0..5 {
            for _ in 0..10 {
                t.record(2_000_000_000);
            }
            telemetry.collector().collect_once();
        }
        let (status, body) = http_get(addr, "/healthz");
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("FAIL slo \"lat\""), "{body}");
        // /readyz ignores SLOs: the process is still able to serve.
        assert_eq!(http_get(addr, "/readyz").0, 200);
        // The verdict is also a scrapeable gauge.
        let (_, metrics) = http_get(addr, "/metrics");
        assert!(metrics.contains("trass_slo_ok{objective=\"lat\"} 0"), "{metrics}");
        telemetry.shutdown();
    }

    #[test]
    fn telemetry_shutdown_is_clean() {
        // The acceptance criterion: shutdown returns (joining the accept
        // thread, every connection thread, and the collector), and the
        // port is released.
        let (_registry, telemetry) = telemetry_fixture(Vec::new());
        let addr = telemetry.local_addr();
        assert_eq!(http_get(addr, "/metrics").0, 200);
        telemetry.shutdown();
        assert!(TcpListener::bind(addr).is_ok(), "port still held after shutdown");
    }

    /// A telemetry endpoint with every optional source attached: one
    /// recorded trace, a two-format slowlog stub, and a workload summary
    /// with one fingerprint.
    fn full_fixture() -> Telemetry {
        use crate::fingerprint::{QueryFingerprint, WorkloadStats, WorkloadSummary};
        use crate::trace::TraceCtx;
        let registry = Registry::new_shared();
        let flight = Arc::new(FlightRecorder::new(4));
        let ctx = TraceCtx::enabled();
        let mut root = ctx.root("threshold");
        root.set_field("eps", 0.01);
        {
            let mut scan = root.child("scan");
            scan.set_duration(Duration::from_millis(1));
            scan.finish();
        }
        root.set_duration(Duration::from_millis(3));
        root.finish();
        flight.push(Arc::new(ctx.finish().expect("trace")));
        let workload = Arc::new(WorkloadSummary::new(8));
        workload.record(
            &QueryFingerprint::threshold("frechet", 0.01, 100),
            &WorkloadStats {
                latency: Duration::from_millis(3),
                bytes_scanned: 64,
                retrieved: 10,
                candidates: 4,
                results: 2,
                refine_pruned: 0,
                alloc_bytes: 512,
            },
        );
        Telemetry::serve(
            TelemetryOptions::default(),
            TelemetrySources {
                registry,
                refresh: None,
                flight: Some(flight),
                slowlog: Some(Arc::new(|json| {
                    if json {
                        "[{\"rank\":1}]".to_string()
                    } else {
                        "slow queries: none\n".to_string()
                    }
                })),
                workload: Some(workload),
                health: HealthRegistry::new_shared(),
            },
        )
        .expect("serve")
    }

    #[test]
    fn traces_routes_render_both_formats() {
        let telemetry = full_fixture();
        let addr = telemetry.local_addr();
        let (status, text) = http_get(addr, "/traces");
        assert_eq!(status, 200);
        assert!(text.contains("1 retained trace(s)"), "{text}");
        assert!(text.contains("threshold"), "{text}");
        let (status, json) = http_get(addr, "/traces?format=json");
        assert_eq!(status, 200);
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"threshold\""), "{json}");
        telemetry.shutdown();
    }

    #[test]
    fn slowlog_route_renders_both_formats() {
        let telemetry = full_fixture();
        let addr = telemetry.local_addr();
        let (status, slow) = http_get(addr, "/slowlog");
        assert_eq!(status, 200);
        assert!(slow.contains("slow queries"), "{slow}");
        let (status, json) = http_get(addr, "/slowlog?format=json");
        assert_eq!(status, 200);
        assert!(json.contains("\"rank\":1"), "{json}");
        telemetry.shutdown();
    }

    #[test]
    fn profile_route_folds_the_flight_recorder() {
        let telemetry = full_fixture();
        let addr = telemetry.local_addr();
        for path in ["/profile", "/profile?weight=wall"] {
            let (status, folded) = http_get(addr, path);
            assert_eq!(status, 200);
            assert!(folded.contains("threshold;scan "), "{folded}");
            assert!(folded.lines().all(|l| l.rsplit(' ').next().is_some()), "{folded}");
        }
        // alloc/cpu weights are valid even when span fields are absent —
        // they just fold to empty output.
        assert_eq!(http_get(addr, "/profile?weight=alloc").0, 200);
        assert_eq!(http_get(addr, "/profile?weight=cpu").0, 200);
        assert_eq!(http_get(addr, "/profile?weight=bogus").0, 400);
        telemetry.shutdown();
    }

    #[test]
    fn workload_route_renders_both_formats() {
        let telemetry = full_fixture();
        let addr = telemetry.local_addr();
        let (status, text) = http_get(addr, "/workload");
        assert_eq!(status, 200);
        assert!(text.contains("threshold|frechet"), "{text}");
        let (status, json) = http_get(addr, "/workload?format=json");
        assert_eq!(status, 200);
        assert!(json.contains("\"fingerprint\":\"threshold|frechet"), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
        telemetry.shutdown();
    }
}
