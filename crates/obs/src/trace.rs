//! Per-query trace recording: span trees, sampling, and a flight recorder.
//!
//! Aggregate metrics ([`crate::Registry`]) answer "how is the system
//! doing?"; they cannot answer "why was *this* query slow?". A
//! [`TraceCtx`] records one query's execution as a tree of [`SpanRecord`]s
//! — each with a name, labels, typed [`FieldValue`] payloads, and wall
//! time — which renders as an `EXPLAIN ANALYZE`-style tree
//! ([`QueryTrace::render_text`]) or JSON ([`QueryTrace::render_json`],
//! round-tripped by [`QueryTrace::from_json`]).
//!
//! Cost model: tracing is *sampled*. A disabled [`TraceCtx`] hands out
//! disabled [`TraceSpan`]s whose every method is a no-op behind a single
//! `Option` branch — no allocation, no clock reads — so the hot path pays
//! one branch per would-be span. [`TraceSampler`] decides 1-in-N with a
//! deterministic counter (no RNG): queries 0, N, 2N, … are traced.
//! Explain-style callers force an enabled context instead.
//!
//! Completed traces land in the [`FlightRecorder`], a fixed-capacity ring
//! buffer of the last N traces, so "what just happened?" is answerable
//! after the fact without external collectors.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A typed value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned counter-like payload (row counts, byte counts).
    U64(u64),
    /// Floating-point payload (thresholds, distances).
    F64(f64),
    /// Textual payload (verdicts, identifiers).
    Str(String),
    /// Boolean payload (flags, capped markers).
    Bool(bool),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// One completed span: a named, labelled, timed node of the trace tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanRecord {
    /// Stage name (`"threshold"`, `"pruning"`, `"region-scan"`, …).
    pub name: String,
    /// Identity labels (`("shard", "3")`), in insertion order.
    pub labels: Vec<(String, String)>,
    /// Typed payloads (`("rows_scanned", U64(512))`), in insertion order.
    pub fields: Vec<(String, FieldValue)>,
    /// Start offset from the trace root's start, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Child spans, ordered by `start_ns`.
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// The first child with the given name, if any.
    pub fn child(&self, name: &str) -> Option<&SpanRecord> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All children with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// The value of a `u64` field, if present.
    pub fn field_u64(&self, name: &str) -> Option<u64> {
        self.fields.iter().find_map(|(k, v)| match v {
            FieldValue::U64(n) if k == name => Some(*n),
            _ => None,
        })
    }

    /// The value of a label, if present.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels.iter().find_map(|(k, v)| (k == name).then_some(v.as_str()))
    }

    /// Depth-first search for the first descendant (or self) with `name`.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Total number of spans in this subtree (including self).
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(SpanRecord::span_count).sum::<usize>()
    }
}

/// A completed span in flat (pre-assembly) form.
#[derive(Debug)]
struct FlatSpan {
    id: u32,
    parent: u32,
    name: String,
    labels: Vec<(String, String)>,
    fields: Vec<(String, FieldValue)>,
    start_ns: u64,
    duration_ns: u64,
}

/// Sentinel parent id of the root span.
const NO_PARENT: u32 = u32::MAX;

/// Shared state of one enabled trace.
struct TraceInner {
    start: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<FlatSpan>>,
}

impl TraceInner {
    fn new() -> Self {
        TraceInner {
            start: Instant::now(),
            next_id: AtomicU64::new(0),
            spans: Mutex::new(Vec::new()),
        }
    }

    fn alloc_id(&self) -> u32 {
        self.next_id.fetch_add(1, Ordering::Relaxed) as u32
    }
}

/// A per-query trace recorder. Cheap to clone; a disabled context is a
/// `None` and every operation derived from it is a no-op.
#[derive(Clone)]
pub struct TraceCtx(Option<Arc<TraceInner>>);

impl TraceCtx {
    /// A context that records nothing: the sampled-out fast path.
    pub fn disabled() -> TraceCtx {
        TraceCtx(None)
    }

    /// A context that records every span opened under it.
    pub fn enabled() -> TraceCtx {
        TraceCtx(Some(Arc::new(TraceInner::new())))
    }

    /// Whether spans opened under this context record anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Opens the root span. Call once per trace; the root must be finished
    /// (or dropped) before [`TraceCtx::finish`].
    pub fn root(&self, name: &str) -> TraceSpan {
        match &self.0 {
            Some(inner) => TraceSpan::open(Arc::clone(inner), NO_PARENT, name),
            None => TraceSpan::disabled(),
        }
    }

    /// Assembles the recorded spans into a [`QueryTrace`]. Returns `None`
    /// for a disabled context or when no root span was recorded.
    pub fn finish(self) -> Option<QueryTrace> {
        let inner = self.0?;
        let flats = std::mem::take(
            &mut *inner.spans.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        assemble(flats).map(|root| QueryTrace { root })
    }
}

impl fmt::Debug for TraceCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceCtx").field("enabled", &self.is_enabled()).finish()
    }
}

/// Builds the span tree from completed flat spans. Spans whose parent was
/// never completed attach to the root (best effort; drivers finish spans
/// in LIFO order so this only happens on error paths).
fn assemble(mut flats: Vec<FlatSpan>) -> Option<SpanRecord> {
    // Tie-break equal start times by allocation id so a parent always
    // sorts before children it opened within the same nanosecond.
    flats.sort_by_key(|s| (s.start_ns, s.id));
    let root_at = flats.iter().position(|s| s.parent == NO_PARENT)?;
    let root_id = flats[root_at].id;
    let mut nodes: Vec<(u32, u32, SpanRecord)> = flats
        .into_iter()
        .map(|f| {
            let record = SpanRecord {
                name: f.name,
                labels: f.labels,
                fields: f.fields,
                start_ns: f.start_ns,
                duration_ns: f.duration_ns,
                children: Vec::new(),
            };
            (f.id, f.parent, record)
        })
        .collect();
    // Attach children to parents, deepest-start first so grandchildren are
    // already in place when their parent moves. Quadratic in span count,
    // which is bounded (tens of spans per query).
    let known: std::collections::HashSet<u32> = nodes.iter().map(|&(id, _, _)| id).collect();
    while nodes.len() > 1 {
        // Take the last span that is not the root; its children (if any)
        // were appended already because children start after parents and
        // the list is start-sorted.
        let idx = (0..nodes.len()).rev().find(|&i| nodes[i].0 != root_id)?;
        let (id, parent, record) = nodes.remove(idx);
        let parent = if known.contains(&parent) { parent } else { root_id };
        // Spans are removed in descending (start, id) order, so inserting
        // at the front leaves each child list ascending; the later stable
        // sort then only has to handle clock ties.
        match nodes.iter_mut().find(|(pid, _, _)| *pid == parent) {
            Some((_, _, p)) => p.children.insert(0, record),
            None => return None, // parent vanished: malformed trace
        }
        let _ = id;
    }
    let (_, _, mut root) = nodes.pop()?;
    sort_children(&mut root);
    Some(root)
}

fn sort_children(s: &mut SpanRecord) {
    s.children.sort_by_key(|c| c.start_ns);
    for c in &mut s.children {
        sort_children(c);
    }
}

/// Live state of one open span.
struct SpanState {
    ctx: Arc<TraceInner>,
    id: u32,
    parent: u32,
    name: String,
    labels: Vec<(String, String)>,
    fields: Vec<(String, FieldValue)>,
    started: Instant,
    start_ns: u64,
    /// Explicit duration override (for attributing time measured
    /// elsewhere, e.g. filter time accumulated across scan threads).
    duration_override: Option<Duration>,
    /// Resource marks taken at open, so finishing on the same thread can
    /// self-report alloc/CPU deltas (see [`record_state`]). Spans that
    /// finish on a different thread (kv region scans) set explicit fields
    /// from the worker instead.
    opened_on: std::thread::ThreadId,
    alloc_mark: crate::alloc::AllocSnapshot,
    cpu_mark: Option<u64>,
}

/// An open span: finishing (or dropping) it appends a [`SpanRecord`] to
/// its trace. A disabled span (from a disabled [`TraceCtx`]) is a no-op
/// and costs one branch per call.
pub struct TraceSpan(Option<SpanState>);

impl TraceSpan {
    /// A span that records nothing — the hot-path stand-in.
    pub fn disabled() -> TraceSpan {
        TraceSpan(None)
    }

    fn open(ctx: Arc<TraceInner>, parent: u32, name: &str) -> TraceSpan {
        let id = ctx.alloc_id();
        let start_ns = ctx.start.elapsed().as_nanos() as u64;
        TraceSpan(Some(SpanState {
            ctx,
            id,
            parent,
            name: name.to_string(),
            labels: Vec::new(),
            fields: Vec::new(),
            started: Instant::now(),
            start_ns,
            duration_override: None,
            opened_on: std::thread::current().id(),
            alloc_mark: crate::alloc::thread_alloc_snapshot(),
            cpu_mark: crate::alloc::thread_cpu_ns(),
        }))
    }

    /// Whether this span records anything. Callers can gate expensive
    /// payload computation (metric snapshots, formatting) on this.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Opens a child span. Children of a disabled span are disabled.
    pub fn child(&self, name: &str) -> TraceSpan {
        match &self.0 {
            Some(s) => TraceSpan::open(Arc::clone(&s.ctx), s.id, name),
            None => TraceSpan::disabled(),
        }
    }

    /// Attaches an identity label.
    pub fn set_label(&mut self, key: &str, value: &str) {
        if let Some(s) = &mut self.0 {
            s.labels.push((key.to_string(), value.to_string()));
        }
    }

    /// Attaches a typed payload field.
    pub fn set_field(&mut self, key: &str, value: impl Into<FieldValue>) {
        if let Some(s) = &mut self.0 {
            s.fields.push((key.to_string(), value.into()));
        }
    }

    /// Overrides the recorded duration (for time measured out-of-band,
    /// e.g. accumulated across scan threads).
    pub fn set_duration(&mut self, d: Duration) {
        if let Some(s) = &mut self.0 {
            s.duration_override = Some(d);
        }
    }

    /// Ends the span, recording its elapsed wall time, and returns that
    /// elapsed time (zero for disabled spans).
    pub fn finish(mut self) -> Duration {
        match self.0.take() {
            Some(s) => record_state(s),
            None => Duration::ZERO,
        }
    }
}

fn record_state(s: SpanState) -> Duration {
    let elapsed = s.started.elapsed();
    let recorded = s.duration_override.unwrap_or(elapsed);
    let mut fields = s.fields;
    // Self-report resource deltas when the span closes on the thread that
    // opened it (per-thread counters are meaningless across threads) and
    // no explicit field of the same name was set by the caller.
    if std::thread::current().id() == s.opened_on {
        let has = |fields: &[(String, FieldValue)], k: &str| fields.iter().any(|(key, _)| key == k);
        if crate::alloc::allocator_installed() && !has(&fields, "alloc_bytes") {
            let d = crate::alloc::thread_alloc_snapshot().since(&s.alloc_mark);
            fields.push(("alloc_bytes".to_string(), FieldValue::U64(d.bytes)));
            fields.push(("allocs".to_string(), FieldValue::U64(d.count)));
        }
        if let (Some(mark), false) = (s.cpu_mark, has(&fields, "cpu_ns")) {
            if let Some(now) = crate::alloc::thread_cpu_ns() {
                fields.push(("cpu_ns".to_string(), FieldValue::U64(now.saturating_sub(mark))));
            }
        }
    }
    let flat = FlatSpan {
        id: s.id,
        parent: s.parent,
        name: s.name,
        labels: s.labels,
        fields,
        start_ns: s.start_ns,
        duration_ns: recorded.as_nanos() as u64,
    };
    s.ctx.spans.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(flat);
    elapsed
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some(s) = self.0.take() {
            record_state(s);
        }
    }
}

impl fmt::Debug for TraceSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(s) => f.debug_struct("TraceSpan").field("name", &s.name).finish(),
            None => f.write_str("TraceSpan(disabled)"),
        }
    }
}

/// A completed per-query trace: the span tree of one query's execution.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// The query's root span.
    pub root: SpanRecord,
}

impl QueryTrace {
    /// Depth-first search for the first span with `name`.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        self.root.find(name)
    }

    /// Renders the trace as an indented `EXPLAIN ANALYZE`-style tree:
    /// one line per span with its wall time, percentage of parent time,
    /// labels, and fields.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        render_span(&mut out, &self.root, 0, None);
        out
    }

    /// Renders the trace as a JSON document (no external dependencies;
    /// parse it back with [`QueryTrace::from_json`]).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        json::write_span(&mut out, &self.root);
        out
    }

    /// Parses a document produced by [`QueryTrace::render_json`].
    pub fn from_json(s: &str) -> Result<QueryTrace, String> {
        json::parse_span(s).map(|root| QueryTrace { root })
    }
}

fn render_span(out: &mut String, s: &SpanRecord, depth: usize, parent_ns: Option<u64>) {
    use std::fmt::Write as _;
    for _ in 0..depth {
        out.push_str("  ");
    }
    let _ = write!(out, "{}", s.name);
    if !s.labels.is_empty() {
        out.push_str(" [");
        for (i, (k, v)) in s.labels.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{k}={v}");
        }
        out.push(']');
    }
    let _ = write!(out, "  {}", fmt_duration(s.duration_ns));
    if let Some(parent_ns) = parent_ns {
        if parent_ns > 0 {
            let _ = write!(out, " ({:.1}%)", s.duration_ns as f64 / parent_ns as f64 * 100.0);
        }
    }
    for (k, v) in &s.fields {
        let _ = write!(out, "  {k}={v}");
    }
    out.push('\n');
    for c in &s.children {
        render_span(out, c, depth + 1, Some(s.duration_ns));
    }
}

/// Human-scale duration: picks ns/µs/ms/s.
fn fmt_duration(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Deterministic 1-in-N sampling: no RNG, queries `0, N, 2N, …` sample.
#[derive(Debug)]
pub struct TraceSampler {
    every: u64,
    counter: AtomicU64,
}

impl TraceSampler {
    /// Samples one query in `every`. `every == 0` disables sampling
    /// entirely, `every == 1` traces everything.
    pub fn every(every: u64) -> Self {
        TraceSampler { every, counter: AtomicU64::new(0) }
    }

    /// Decides the current query: true for the 1st, N+1th, 2N+1th, ….
    pub fn sample(&self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.counter.fetch_add(1, Ordering::Relaxed) % self.every == 0
    }

    /// The sampling period (0 = disabled).
    pub fn period(&self) -> u64 {
        self.every
    }
}

/// A fixed-capacity ring buffer of the last N completed traces.
pub struct FlightRecorder {
    traces: Mutex<VecDeque<Arc<QueryTrace>>>,
    capacity: usize,
}

impl FlightRecorder {
    /// Creates a recorder retaining the `capacity` most recent traces.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder { traces: Mutex::new(VecDeque::new()), capacity: capacity.max(1) }
    }

    /// Appends a trace, evicting the oldest past capacity.
    pub fn push(&self, trace: Arc<QueryTrace>) {
        let mut traces = self.traces.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if traces.len() == self.capacity {
            traces.pop_front();
        }
        traces.push_back(trace);
    }

    /// The retained traces, oldest first.
    pub fn snapshot(&self) -> Vec<Arc<QueryTrace>> {
        self.traces
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.traces.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// True when no trace has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of retained traces.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every retained trace.
    pub fn clear(&self) {
        self.traces.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    }
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

/// Hand-rolled JSON emit/parse for the trace schema, so the crate stays
/// dependency-free. The parser accepts exactly the grammar the writer
/// emits (objects, arrays, strings, unsigned integers, floats, booleans).
mod json {
    use super::{FieldValue, SpanRecord};
    use std::fmt::Write as _;

    pub(super) fn write_span(out: &mut String, s: &SpanRecord) {
        let _ = write!(out, "{{\"name\":{}", string(&s.name));
        out.push_str(",\"labels\":{");
        for (i, (k, v)) in s.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", string(k), string(v));
        }
        out.push_str("},\"fields\":{");
        for (i, (k, v)) in s.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:", string(k));
            match v {
                FieldValue::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                // Floats always carry a decimal point or exponent so the
                // parser can tell them from integers on the way back in.
                FieldValue::F64(x) if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 => {
                    let _ = write!(out, "{x:.1}");
                }
                FieldValue::F64(x) if x.is_finite() => {
                    let _ = write!(out, "{x}");
                }
                FieldValue::F64(_) => out.push_str("null"),
                FieldValue::Str(t) => out.push_str(&string(t)),
                FieldValue::Bool(b) => {
                    let _ = write!(out, "{b}");
                }
            }
        }
        let _ = write!(out, "}},\"start_ns\":{},\"duration_ns\":{}", s.start_ns, s.duration_ns);
        out.push_str(",\"children\":[");
        for (i, c) in s.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_span(out, c);
        }
        out.push_str("]}");
    }

    fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    pub(super) fn parse_span(s: &str) -> Result<SpanRecord, String> {
        let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
        let span = p.span()?;
        p.ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(span)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn ws(&mut self) {
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
                self.pos += 1;
            }
        }

        fn peek(&mut self) -> Option<u8> {
            self.ws();
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", b as char, self.pos))
            }
        }

        fn eat(&mut self, b: u8) -> bool {
            if self.peek() == Some(b) {
                self.pos += 1;
                true
            } else {
                false
            }
        }

        fn keyword(&mut self, word: &str) -> bool {
            self.ws();
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                true
            } else {
                false
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.bytes.get(self.pos).copied() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.bytes.get(self.pos).copied() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                                self.pos += 4;
                            }
                            _ => return Err("bad escape".into()),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Multi-byte UTF-8 sequences pass through intact.
                        let start = self.pos;
                        let s =
                            std::str::from_utf8(&self.bytes[start..]).map_err(|e| e.to_string())?;
                        let c = s.chars().next().ok_or("unterminated string")?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<FieldValue, String> {
            self.ws();
            let start = self.pos;
            while self.bytes.get(self.pos).is_some_and(|b| {
                b.is_ascii_digit() || matches!(b, b'.' | b'-' | b'+' | b'e' | b'E')
            }) {
                self.pos += 1;
            }
            let text =
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
            if text.contains(['.', 'e', 'E']) {
                text.parse::<f64>().map(FieldValue::F64).map_err(|e| e.to_string())
            } else {
                text.parse::<u64>().map(FieldValue::U64).map_err(|e| e.to_string())
            }
        }

        fn value(&mut self) -> Result<FieldValue, String> {
            match self.peek() {
                Some(b'"') => self.string().map(FieldValue::Str),
                Some(b't') if self.keyword("true") => Ok(FieldValue::Bool(true)),
                Some(b'f') if self.keyword("false") => Ok(FieldValue::Bool(false)),
                Some(b'n') if self.keyword("null") => Ok(FieldValue::F64(f64::NAN)),
                _ => self.number(),
            }
        }

        /// `{"k": <v>, ...}` with `parse` handling each value.
        fn object<T>(
            &mut self,
            mut parse: impl FnMut(&mut Self, String) -> Result<T, String>,
        ) -> Result<Vec<T>, String> {
            self.expect(b'{')?;
            let mut out = Vec::new();
            if self.eat(b'}') {
                return Ok(out);
            }
            loop {
                let key = self.string()?;
                self.expect(b':')?;
                out.push(parse(self, key)?);
                if !self.eat(b',') {
                    break;
                }
            }
            self.expect(b'}')?;
            Ok(out)
        }

        fn span(&mut self) -> Result<SpanRecord, String> {
            let mut span = SpanRecord::default();
            self.object(|p, key| {
                match key.as_str() {
                    "name" => span.name = p.string()?,
                    "labels" => {
                        span.labels = p.object(|p, k| Ok((k, p.string()?)))?;
                    }
                    "fields" => {
                        span.fields = p.object(|p, k| Ok((k, p.value()?)))?;
                    }
                    "start_ns" => match p.number()? {
                        FieldValue::U64(n) => span.start_ns = n,
                        _ => return Err("start_ns must be an integer".into()),
                    },
                    "duration_ns" => match p.number()? {
                        FieldValue::U64(n) => span.duration_ns = n,
                        _ => return Err("duration_ns must be an integer".into()),
                    },
                    "children" => {
                        p.expect(b'[')?;
                        if !p.eat(b']') {
                            loop {
                                span.children.push(p.span()?);
                                if !p.eat(b',') {
                                    break;
                                }
                            }
                            p.expect(b']')?;
                        }
                    }
                    other => return Err(format!("unknown key {other:?}")),
                }
                Ok(())
            })?;
            Ok(span)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sleepless_trace() -> QueryTrace {
        let ctx = TraceCtx::enabled();
        let mut root = ctx.root("threshold");
        root.set_label("measure", "frechet");
        root.set_field("eps", 0.002);
        {
            let mut pruning = root.child("pruning");
            pruning.set_field("visited", 42u64);
            pruning.finish();
        }
        {
            let scan = root.child("scan");
            for shard in 0..3 {
                let mut region = scan.child("region-scan");
                region.set_label("shard", &shard.to_string());
                region.set_field("rows_scanned", 10u64 + shard);
                region.finish();
            }
            scan.finish();
        }
        root.finish();
        ctx.finish().expect("enabled trace")
    }

    #[test]
    fn tree_shape_matches_span_nesting() {
        let t = sleepless_trace();
        assert_eq!(t.root.name, "threshold");
        assert_eq!(t.root.children.len(), 2);
        assert_eq!(t.root.children[0].name, "pruning");
        assert_eq!(t.root.children[1].name, "scan");
        assert_eq!(t.root.children[1].children.len(), 3);
        assert_eq!(t.root.span_count(), 6);
        let shards: Vec<&str> = t.root.children[1]
            .children_named("region-scan")
            .map(|s| s.label("shard").unwrap())
            .collect();
        assert_eq!(shards, vec!["0", "1", "2"]);
        assert_eq!(t.find("pruning").unwrap().field_u64("visited"), Some(42));
    }

    #[test]
    fn disabled_ctx_records_nothing() {
        let ctx = TraceCtx::disabled();
        assert!(!ctx.is_enabled());
        let mut root = ctx.root("threshold");
        assert!(!root.is_enabled());
        root.set_field("eps", 1.0);
        let child = root.child("scan");
        assert!(!child.is_enabled());
        child.finish();
        root.finish();
        assert!(ctx.finish().is_none());
    }

    #[test]
    fn cross_thread_children_attach_to_parent() {
        let ctx = TraceCtx::enabled();
        let root = ctx.root("topk");
        std::thread::scope(|s| {
            for i in 0..4 {
                let root = &root;
                s.spawn(move || {
                    let mut c = root.child("region-scan");
                    c.set_label("shard", &i.to_string());
                    c.finish();
                });
            }
        });
        root.finish();
        let t = ctx.finish().unwrap();
        assert_eq!(t.root.children.len(), 4);
        assert!(t.root.children.iter().all(|c| c.name == "region-scan"));
    }

    #[test]
    fn text_rendering_shows_tree_and_percentages() {
        let t = sleepless_trace();
        let text = t.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("threshold [measure=frechet]"), "{text}");
        assert!(lines[0].contains("eps=0.002"));
        assert!(lines[1].starts_with("  pruning"), "{text}");
        assert!(lines[1].contains("visited=42"));
        // Child lines show a percent-of-parent figure.
        assert!(lines[1].contains('%'), "{text}");
        assert!(lines.iter().any(|l| l.starts_with("    region-scan [shard=2]")), "{text}");
    }

    #[test]
    fn json_round_trips_exactly() {
        let t = sleepless_trace();
        let json = t.render_json();
        let back = QueryTrace::from_json(&json).expect("parse");
        assert_eq!(back, t);
        // And the re-rendered document is byte-identical.
        assert_eq!(back.render_json(), json);
    }

    #[test]
    fn json_round_trips_typed_fields() {
        let mut root = SpanRecord { name: "q".into(), ..SpanRecord::default() };
        root.fields = vec![
            ("count".into(), FieldValue::U64(u64::MAX)),
            ("eps".into(), FieldValue::F64(0.25)),
            ("whole".into(), FieldValue::F64(2.0)),
            ("verdict".into(), FieldValue::Str("keep \"x\"\n".into())),
            ("capped".into(), FieldValue::Bool(true)),
        ];
        let t = QueryTrace { root };
        let back = QueryTrace::from_json(&t.render_json()).expect("parse");
        assert_eq!(back, t);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(QueryTrace::from_json("").is_err());
        assert!(QueryTrace::from_json("{\"name\":\"q\"").is_err());
        assert!(QueryTrace::from_json("{\"nope\":1}").is_err());
        let t = sleepless_trace();
        let json = t.render_json();
        assert!(QueryTrace::from_json(&format!("{json}trailing")).is_err());
    }

    #[test]
    fn sampler_is_deterministic_one_in_n() {
        let s = TraceSampler::every(3);
        let picks: Vec<bool> = (0..9).map(|_| s.sample()).collect();
        assert_eq!(picks, vec![true, false, false, true, false, false, true, false, false]);
        let never = TraceSampler::every(0);
        assert!((0..10).all(|_| !never.sample()));
        let always = TraceSampler::every(1);
        assert!((0..10).all(|_| always.sample()));
    }

    #[test]
    fn flight_recorder_keeps_last_n() {
        let fr = FlightRecorder::new(2);
        assert!(fr.is_empty());
        for name in ["a", "b", "c"] {
            let ctx = TraceCtx::enabled();
            ctx.root(name).finish();
            fr.push(Arc::new(ctx.finish().unwrap()));
        }
        assert_eq!(fr.len(), 2);
        let names: Vec<String> = fr.snapshot().iter().map(|t| t.root.name.clone()).collect();
        assert_eq!(names, vec!["b", "c"]);
        fr.clear();
        assert!(fr.is_empty());
    }

    #[test]
    fn flight_recorder_json_round_trips_under_concurrent_push() {
        // Writers push fresh traces while readers snapshot and round-trip
        // every retained trace through the JSON renderer. Every snapshot
        // must be a consistent set of fully-formed traces — a torn or
        // half-written entry would fail the parse or the equality check.
        let fr = Arc::new(FlightRecorder::new(8));
        std::thread::scope(|s| {
            for w in 0..2 {
                let fr = Arc::clone(&fr);
                s.spawn(move || {
                    for i in 0..50 {
                        let ctx = TraceCtx::enabled();
                        let mut root = ctx.root("threshold");
                        root.set_field("writer", w as u64);
                        root.set_field("seq", i as u64);
                        let mut scan = root.child("scan");
                        scan.set_field("rows_scanned", (w * 100 + i) as u64);
                        scan.finish();
                        root.finish();
                        fr.push(Arc::new(ctx.finish().expect("enabled trace")));
                    }
                });
            }
            for _ in 0..2 {
                let fr = Arc::clone(&fr);
                s.spawn(move || {
                    for _ in 0..50 {
                        for t in fr.snapshot() {
                            let back = QueryTrace::from_json(&t.render_json()).expect("round-trip");
                            assert_eq!(&back, t.as_ref());
                            assert_eq!(back.root.span_count(), 2);
                        }
                    }
                });
            }
        });
        assert_eq!(fr.len(), 8, "recorder should be full after 100 pushes");
        for t in fr.snapshot() {
            assert_eq!(
                QueryTrace::from_json(&t.render_json()).expect("parse").root.name,
                "threshold"
            );
        }
    }

    #[test]
    fn duration_override_wins() {
        let ctx = TraceCtx::enabled();
        let root = ctx.root("q");
        let mut filter = root.child("local-filter");
        filter.set_duration(Duration::from_millis(123));
        filter.finish();
        root.finish();
        let t = ctx.finish().unwrap();
        assert_eq!(t.root.children[0].duration_ns, 123_000_000);
    }

    #[test]
    fn dropped_span_still_records() {
        let ctx = TraceCtx::enabled();
        {
            let root = ctx.root("q");
            let _child = root.child("scan");
            // Both dropped here without explicit finish.
        }
        let t = ctx.finish().unwrap();
        assert_eq!(t.root.name, "q");
        assert_eq!(t.root.children.len(), 1);
    }
}
