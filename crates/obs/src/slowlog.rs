//! Fixed-capacity slow-query log.
//!
//! Keeps the top-N slowest items seen so far, ranked by a `u64` cost key
//! (total query nanoseconds in practice), each with an attached payload
//! (the query's full stats). Recording is O(capacity) under a mutex —
//! negligible next to the millisecond-scale queries worth logging.

use std::sync::Mutex;

/// A bounded keep-the-worst log.
pub struct SlowLog<T> {
    entries: Mutex<Vec<(u64, T)>>,
    capacity: usize,
}

impl<T: Clone> SlowLog<T> {
    /// Creates a log keeping the `capacity` largest-key items.
    pub fn new(capacity: usize) -> Self {
        SlowLog { entries: Mutex::new(Vec::new()), capacity: capacity.max(1) }
    }

    /// Offers an item; it is kept iff it ranks among the top `capacity`
    /// keys seen so far.
    pub fn record(&self, key: u64, item: T) {
        let mut entries = self.entries.lock().expect("slowlog poisoned");
        if entries.len() < self.capacity {
            entries.push((key, item));
            return;
        }
        // Replace the current minimum if this item beats it.
        let (min_idx, min_key) = entries
            .iter()
            .enumerate()
            .map(|(i, (k, _))| (i, *k))
            .min_by_key(|&(_, k)| k)
            .expect("capacity >= 1");
        if key > min_key {
            entries[min_idx] = (key, item);
        }
    }

    /// The retained items, slowest first.
    pub fn snapshot(&self) -> Vec<(u64, T)> {
        let mut out = self.entries.lock().expect("slowlog poisoned").clone();
        out.sort_by_key(|e| std::cmp::Reverse(e.0));
        out
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("slowlog poisoned").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of retained items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears the log.
    pub fn clear(&self) {
        self.entries.lock().expect("slowlog poisoned").clear();
    }
}

impl<T> std::fmt::Debug for SlowLog<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowLog")
            .field("len", &self.entries.lock().expect("slowlog poisoned").len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_top_n() {
        let log = SlowLog::new(3);
        for k in [5u64, 1, 9, 3, 7, 2] {
            log.record(k, format!("q{k}"));
        }
        let snap = log.snapshot();
        let keys: Vec<u64> = snap.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![9, 7, 5]);
        assert_eq!(snap[0].1, "q9");
    }

    #[test]
    fn below_capacity_keeps_everything() {
        let log = SlowLog::new(10);
        log.record(1, ());
        log.record(2, ());
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn ties_do_not_evict() {
        let log = SlowLog::new(1);
        log.record(5, "first");
        log.record(5, "second");
        assert_eq!(log.snapshot()[0].1, "first");
        log.record(6, "third");
        assert_eq!(log.snapshot()[0].1, "third");
    }

    #[test]
    fn clear_empties() {
        let log = SlowLog::new(2);
        log.record(1, ());
        log.clear();
        assert!(log.is_empty());
    }
}
