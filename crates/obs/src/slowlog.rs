//! Fixed-capacity slow-query log.
//!
//! Keeps the top-N slowest items seen so far, ranked by a `u64` cost key
//! (total query nanoseconds in practice), each with an attached payload
//! (the query's full stats). The common case — the log is full and the
//! offered item is not slow enough — is decided by one atomic load of the
//! cached minimum key, without taking the mutex; only genuine insertions
//! pay the O(capacity) min rescan.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A bounded keep-the-worst log.
pub struct SlowLog<T> {
    entries: Mutex<Vec<(u64, T)>>,
    capacity: usize,
    /// Cached smallest retained key, valid once `full` is set. Updated
    /// under the `entries` lock; read optimistically before locking.
    min_key: AtomicU64,
    /// Whether the log has reached capacity (and `min_key` is meaningful).
    full: AtomicBool,
}

impl<T: Clone> SlowLog<T> {
    /// Creates a log keeping the `capacity` largest-key items.
    pub fn new(capacity: usize) -> Self {
        SlowLog {
            entries: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
            min_key: AtomicU64::new(0),
            full: AtomicBool::new(false),
        }
    }

    /// Offers an item; it is kept iff it ranks among the top `capacity`
    /// keys seen so far. Ties never evict, so once the log is full an
    /// offer with `key <= min` can be rejected without locking. The
    /// unlocked check is conservative: `min_key` only grows, so a stale
    /// read can admit an item the locked recheck then rejects — never
    /// the reverse.
    pub fn record(&self, key: u64, item: T) {
        if self.full.load(Ordering::Acquire) && key <= self.min_key.load(Ordering::Acquire) {
            return;
        }
        let mut entries = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if entries.len() < self.capacity {
            entries.push((key, item));
            if entries.len() == self.capacity {
                let min = entries.iter().map(|(k, _)| *k).min().unwrap_or(0);
                self.min_key.store(min, Ordering::Release);
                self.full.store(true, Ordering::Release);
            }
            return;
        }
        // Replace the current minimum if this item beats it, then recache
        // the new minimum.
        let Some((min_idx, min_key)) =
            entries.iter().enumerate().map(|(i, (k, _))| (i, *k)).min_by_key(|&(_, k)| k)
        else {
            return; // capacity 0: retain nothing
        };
        if key > min_key {
            entries[min_idx] = (key, item);
            let min = entries.iter().map(|(k, _)| *k).min().unwrap_or(0);
            self.min_key.store(min, Ordering::Release);
        }
    }

    /// The retained items, slowest first.
    pub fn snapshot(&self) -> Vec<(u64, T)> {
        let mut out =
            self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
        out.sort_by_key(|e| std::cmp::Reverse(e.0));
        out
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of retained items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears the log.
    pub fn clear(&self) {
        let mut entries = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        entries.clear();
        self.full.store(false, Ordering::Release);
        self.min_key.store(0, Ordering::Release);
    }
}

impl<T> std::fmt::Debug for SlowLog<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowLog")
            .field(
                "len",
                &self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len(),
            )
            .field("capacity", &self.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_top_n() {
        let log = SlowLog::new(3);
        for k in [5u64, 1, 9, 3, 7, 2] {
            log.record(k, format!("q{k}"));
        }
        let snap = log.snapshot();
        let keys: Vec<u64> = snap.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![9, 7, 5]);
        assert_eq!(snap[0].1, "q9");
    }

    #[test]
    fn below_capacity_keeps_everything() {
        let log = SlowLog::new(10);
        log.record(1, ());
        log.record(2, ());
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn ties_do_not_evict() {
        let log = SlowLog::new(1);
        log.record(5, "first");
        log.record(5, "second");
        assert_eq!(log.snapshot()[0].1, "first");
        log.record(6, "third");
        assert_eq!(log.snapshot()[0].1, "third");
    }

    #[test]
    fn fast_path_rejections_do_not_lose_admissions() {
        // Saturate, then interleave rejected and admitted offers; the
        // cached minimum must track every replacement.
        let log = SlowLog::new(4);
        for k in [10u64, 20, 30, 40] {
            log.record(k, k);
        }
        log.record(5, 5); // below min: fast-path reject
        log.record(10, 10); // tie with min: reject
        log.record(25, 25); // evicts 10; min becomes 20
        log.record(15, 15); // below new min: reject
        log.record(21, 21); // evicts 20; min becomes 21
        let keys: Vec<u64> = log.snapshot().iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![40, 30, 25, 21]);
    }

    #[test]
    fn clear_reopens_the_log() {
        let log = SlowLog::new(2);
        log.record(100, ());
        log.record(200, ());
        log.clear();
        assert!(log.is_empty());
        // After clear, small keys must be admitted again.
        log.record(1, ());
        assert_eq!(log.len(), 1);
    }
}
