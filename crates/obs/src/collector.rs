//! Background time-series collection over a [`Registry`].
//!
//! A scrape shows the *current* cumulative state; diagnosing "what changed
//! two minutes ago" needs history. The [`Collector`] snapshots the whole
//! registry on a fixed interval into per-series ring buffers of the last N
//! samples — counters keep their cumulative values (rates are derived as
//! consecutive deltas at render time), gauges keep raw values, and each
//! histogram contributes its cumulative count and its live p99. The rings
//! are rendered as one JSON document by [`Collector::render_history`]
//! (served at `/vars/history`), and every tick also advances the
//! [`SloEvaluator`] so burn-rate windows march in collector time.
//!
//! Everything is bounded: `capacity` samples per series, one ring per
//! series ever seen. Memory is `O(series × capacity)` and does not grow
//! with uptime.

use crate::export::{self, MetricValue};
use crate::health::SloEvaluator;
use crate::registry::Registry;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Collector tuning.
#[derive(Debug, Clone)]
pub struct CollectorOptions {
    /// Sampling interval of the background thread.
    pub interval: Duration,
    /// Retained samples per series (the ring size).
    pub capacity: usize,
}

impl Default for CollectorOptions {
    fn default() -> Self {
        CollectorOptions { interval: Duration::from_secs(1), capacity: 120 }
    }
}

/// A fixed-capacity ring of samples plus the count of everything ever
/// pushed (so renderers can tell a full ring from a wrapped one).
struct Ring {
    buf: Vec<f64>,
    /// Index the *next* push overwrites once the ring is full.
    head: usize,
    /// Total samples ever pushed (≥ `buf.len()`).
    total: u64,
}

impl Ring {
    fn new() -> Ring {
        Ring { buf: Vec::new(), head: 0, total: 0 }
    }

    fn push(&mut self, capacity: usize, v: f64) {
        self.total += 1;
        if self.buf.len() < capacity {
            self.buf.push(v);
            return;
        }
        self.buf[self.head] = v;
        self.head = (self.head + 1) % self.buf.len();
    }

    fn wrapped(&self) -> bool {
        self.total > self.buf.len() as u64
    }

    /// Retained samples, oldest first.
    fn values(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// One tracked series: its ring plus how to interpret the samples.
struct Series {
    /// `"counter"` (cumulative, deltas meaningful) or `"gauge"` (raw).
    kind: &'static str,
    ring: Ring,
}

/// Snapshots a [`Registry`] into per-series history rings; see the module
/// docs. Create with [`Collector::new`], drive with either a background
/// [`Collector::start`] thread or explicit [`Collector::collect_once`]
/// calls (tests and deterministic demos).
pub struct Collector {
    registry: Arc<Registry>,
    /// Called before every snapshot (e.g. to mirror external counters
    /// into the registry, the same refresh a scrape performs).
    refresh: Option<Arc<dyn Fn() + Send + Sync>>,
    slo: Option<Arc<SloEvaluator>>,
    interval: Duration,
    capacity: usize,
    series: Mutex<BTreeMap<String, Series>>,
    ticks: AtomicU64,
}

impl Collector {
    /// Creates a collector over `registry`. `refresh` (if any) runs before
    /// each snapshot; `slo` (if any) is ticked after it.
    pub fn new(
        registry: Arc<Registry>,
        refresh: Option<Arc<dyn Fn() + Send + Sync>>,
        slo: Option<Arc<SloEvaluator>>,
        opts: CollectorOptions,
    ) -> Self {
        Collector {
            registry,
            refresh,
            slo,
            interval: opts.interval,
            capacity: opts.capacity.max(2),
            series: Mutex::new(BTreeMap::new()),
            ticks: AtomicU64::new(0),
        }
    }

    /// The configured sampling interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Retained samples per series.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of samples taken so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Takes one sample of every registered metric and advances the SLO
    /// evaluator. Called by the background thread; public so tests and
    /// deterministic drivers can step collection manually.
    pub fn collect_once(&self) {
        if let Some(refresh) = &self.refresh {
            refresh();
        }
        {
            let mut series = self.series.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            for snap in self.registry.snapshot() {
                let key = format!("{}{}", snap.name, export::label_block(&snap.labels, None));
                match snap.value {
                    MetricValue::Counter(v) => {
                        push(&mut series, self.capacity, key, "counter", v as f64);
                    }
                    MetricValue::Gauge(v) => {
                        push(&mut series, self.capacity, key, "gauge", v as f64);
                    }
                    MetricValue::Histogram { count, p99, .. } => {
                        push(
                            &mut series,
                            self.capacity,
                            format!("{key}:count"),
                            "counter",
                            count as f64,
                        );
                        push(&mut series, self.capacity, format!("{key}:p99"), "gauge", p99);
                    }
                }
            }
        }
        self.ticks.fetch_add(1, Ordering::Relaxed);
        if let Some(slo) = &self.slo {
            slo.tick();
        }
    }

    /// Renders every ring as one JSON document:
    ///
    /// ```json
    /// {"interval_ms": 1000, "capacity": 120, "ticks": 7, "series": [
    ///   {"name": "trass_queries{kind=\"threshold\"}", "kind": "counter",
    ///    "total": 7, "wrapped": false, "values": [...], "deltas": [...]},
    ///   ...]}
    /// ```
    ///
    /// Counter series carry `deltas` (consecutive differences, clamped at
    /// zero across resets) — the rate series dashboards want; gauges carry
    /// raw `values` only.
    pub fn render_history(&self) -> String {
        let series = self.series.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"interval_ms\":{},\"capacity\":{},\"ticks\":{},\"series\":[",
            self.interval.as_millis(),
            self.capacity,
            self.ticks()
        );
        for (i, (name, s)) in series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let values = s.ring.values();
            let _ = write!(
                out,
                "{{\"name\":{},\"kind\":\"{}\",\"total\":{},\"wrapped\":{},\"values\":[{}]",
                export::json_string(name),
                s.kind,
                s.ring.total,
                s.ring.wrapped(),
                join_f64(&values),
            );
            if s.kind == "counter" {
                let deltas: Vec<f64> = values.windows(2).map(|w| (w[1] - w[0]).max(0.0)).collect();
                let _ = write!(out, ",\"deltas\":[{}]", join_f64(&deltas));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Spawns the background sampling thread. Returns the handle that
    /// stops and joins it; dropping the handle without calling
    /// [`CollectorHandle::stop`] also stops the thread.
    pub fn start(self: &Arc<Self>) -> std::io::Result<CollectorHandle> {
        let collector = Arc::clone(self);
        let signal = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_signal = Arc::clone(&signal);
        let handle =
            std::thread::Builder::new().name("trass-collector".into()).spawn(move || {
                let (stop_flag, cv) = &*thread_signal;
                let mut stopped =
                    stop_flag.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                loop {
                    if *stopped {
                        return;
                    }
                    drop(stopped);
                    collector.collect_once();
                    stopped = stop_flag.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    // Interruptible sleep: a stop() mid-interval wakes us.
                    let interval = collector.interval;
                    let (guard, _) = cv
                        .wait_timeout_while(stopped, interval, |s| !*s)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    stopped = guard;
                }
            })?;
        Ok(CollectorHandle { signal, handle: Some(handle) })
    }
}

fn push(
    series: &mut BTreeMap<String, Series>,
    capacity: usize,
    key: String,
    kind: &'static str,
    v: f64,
) {
    series.entry(key).or_insert_with(|| Series { kind, ring: Ring::new() }).ring.push(capacity, v);
}

fn join_f64(values: &[f64]) -> String {
    values.iter().map(|&v| export::json_f64(v)).collect::<Vec<_>>().join(",")
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("interval", &self.interval)
            .field("capacity", &self.capacity)
            .field("ticks", &self.ticks())
            .finish()
    }
}

/// Stops and joins a running collector thread.
#[derive(Debug)]
pub struct CollectorHandle {
    signal: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl CollectorHandle {
    /// Signals the thread to stop and joins it. Idempotent.
    pub fn stop(&mut self) {
        {
            let (stop_flag, cv) = &*self.signal;
            *stop_flag.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = true;
            cv.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for CollectorHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collector(capacity: usize) -> (Arc<Registry>, Collector) {
        let registry = Registry::new_shared();
        let c = Collector::new(
            Arc::clone(&registry),
            None,
            None,
            CollectorOptions { interval: Duration::from_millis(10), capacity },
        );
        (registry, c)
    }

    #[test]
    fn samples_every_metric_kind() {
        let (r, c) = collector(8);
        r.counter("reqs", &[("kind", "a")]).add(3);
        r.gauge("depth", &[]).set(-2);
        r.timer("lat_seconds", &[]).record(1_000_000);
        c.collect_once();
        r.counter("reqs", &[("kind", "a")]).add(2);
        c.collect_once();
        let json = c.render_history();
        assert!(json.contains("\"ticks\":2"), "{json}");
        assert!(json.contains(r#""name":"reqs{kind=\"a\"}","kind":"counter","total":2"#), "{json}");
        assert!(json.contains("\"values\":[3,5]"), "{json}");
        assert!(json.contains("\"deltas\":[2]"), "{json}");
        assert!(json.contains(r#""name":"depth","kind":"gauge""#), "{json}");
        assert!(json.contains("\"values\":[-2,-2]"), "{json}");
        assert!(json.contains(r#""name":"lat_seconds:count""#), "{json}");
        assert!(json.contains(r#""name":"lat_seconds:p99""#), "{json}");
    }

    #[test]
    fn ring_wraps_and_keeps_chronological_order() {
        // Satellite: the ring-buffer wraparound contract. Capacity 4,
        // 7 samples: the ring must hold the *last* 4 in order and report
        // wrapped=true with the full total.
        let (r, c) = collector(4);
        let counter = r.counter("n", &[]);
        for i in 1..=7u64 {
            counter.set(i * 10);
            c.collect_once();
        }
        let json = c.render_history();
        assert!(json.contains("\"total\":7"), "{json}");
        assert!(json.contains("\"wrapped\":true"), "{json}");
        assert!(json.contains("\"values\":[40,50,60,70]"), "{json}");
        assert!(json.contains("\"deltas\":[10,10,10]"), "{json}");
    }

    #[test]
    fn unwrapped_ring_reports_wrapped_false() {
        let (r, c) = collector(10);
        r.counter("n", &[]).inc();
        c.collect_once();
        c.collect_once();
        let json = c.render_history();
        assert!(json.contains("\"wrapped\":false"), "{json}");
        assert!(json.contains("\"total\":2"), "{json}");
    }

    #[test]
    fn counter_reset_clamps_delta_to_zero() {
        let (r, c) = collector(8);
        let counter = r.counter("n", &[]);
        counter.set(100);
        c.collect_once();
        counter.set(5); // external reset
        c.collect_once();
        let json = c.render_history();
        assert!(json.contains("\"deltas\":[0]"), "{json}");
    }

    #[test]
    fn refresh_runs_before_each_sample() {
        use std::sync::atomic::AtomicU64;
        let registry = Registry::new_shared();
        let refreshed = Arc::new(AtomicU64::new(0));
        let hook = Arc::clone(&refreshed);
        let reg = Arc::clone(&registry);
        let c = Collector::new(
            Arc::clone(&registry),
            Some(Arc::new(move || {
                let n = hook.fetch_add(1, Ordering::Relaxed) + 1;
                reg.counter("mirrored", &[]).set(n);
            })),
            None,
            CollectorOptions { capacity: 4, ..CollectorOptions::default() },
        );
        c.collect_once();
        c.collect_once();
        assert_eq!(refreshed.load(Ordering::Relaxed), 2);
        assert!(c.render_history().contains("\"values\":[1,2]"));
    }

    #[test]
    fn background_thread_samples_and_stops_cleanly() {
        let registry = Registry::new_shared();
        registry.counter("n", &[]).inc();
        let c = Arc::new(Collector::new(
            Arc::clone(&registry),
            None,
            None,
            CollectorOptions { interval: Duration::from_millis(5), capacity: 64 },
        ));
        let mut handle = c.start().expect("spawn collector");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while c.ticks() < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(c.ticks() >= 3, "collector thread never ticked");
        handle.stop();
        let after = c.ticks();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(c.ticks(), after, "thread kept running after stop");
        handle.stop(); // idempotent
    }

    #[test]
    fn slo_evaluator_ticks_with_collection() {
        use crate::health::{SloEvaluator, SloObjective};
        let registry = Registry::new_shared();
        let slo = Arc::new(SloEvaluator::new(
            &registry,
            vec![SloObjective::latency_under("lat", "op_seconds", 0.5, 0.99)],
        ));
        let c = Collector::new(
            Arc::clone(&registry),
            None,
            Some(Arc::clone(&slo)),
            CollectorOptions::default(),
        );
        c.collect_once();
        c.collect_once();
        assert_eq!(slo.statuses().len(), 1);
        // The evaluator's own gauges become series on the next tick.
        c.collect_once();
        assert!(c.render_history().contains("trass_slo_ok"), "{}", c.render_history());
    }
}
