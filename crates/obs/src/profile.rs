//! Flame-graph export: folds recorded span trees into collapsed-stack
//! lines.
//!
//! The flight recorder keeps the last N query traces; this module folds
//! their span trees into the `flamegraph.pl` collapsed-stack format —
//! one line per unique stage path, `root;child;grandchild weight` — so
//! any off-the-shelf flame-graph renderer can visualise where queries
//! spend their resources. Three weightings:
//!
//! * **wall** — nanoseconds. Sibling spans that ran in parallel (region
//!   scans) can sum past their parent's wall time, so child subtrees are
//!   proportionally rescaled to fit the parent's budget; per trace, the
//!   folded weights sum to the root span's duration *exactly* (modulo
//!   integer rounding), which is what makes the flame graph widths mean
//!   "fraction of query latency".
//! * **alloc** — bytes allocated, from each span's `alloc_bytes` field
//!   (self weight = own bytes minus bytes covered by child spans).
//! * **cpu** — CPU nanoseconds, from each span's `cpu_ns` field, same
//!   self-weight rule.

use std::collections::BTreeMap;

use crate::trace::{FlightRecorder, QueryTrace, SpanRecord};

/// Which per-span quantity weighs the folded stacks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProfileWeight {
    /// Wall-clock nanoseconds (children rescaled into the parent budget).
    Wall,
    /// Allocated bytes (`alloc_bytes` span field).
    Alloc,
    /// CPU nanoseconds (`cpu_ns` span field).
    Cpu,
}

impl ProfileWeight {
    /// Parses a `?weight=` query value.
    pub fn parse(s: &str) -> Option<ProfileWeight> {
        match s {
            "wall" => Some(ProfileWeight::Wall),
            "alloc" => Some(ProfileWeight::Alloc),
            "cpu" => Some(ProfileWeight::Cpu),
            _ => None,
        }
    }

    /// The canonical query-parameter spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ProfileWeight::Wall => "wall",
            ProfileWeight::Alloc => "alloc",
            ProfileWeight::Cpu => "cpu",
        }
    }
}

/// Accumulates one span subtree into `out` under wall weighting.
/// `budget` is the nanosecond share this subtree may claim; child
/// subtrees are rescaled proportionally when their recorded durations
/// overshoot it (parallel siblings), so emitted weights always sum to
/// the root budget.
fn fold_wall(
    span: &SpanRecord,
    stack: &mut Vec<String>,
    budget: f64,
    out: &mut BTreeMap<String, f64>,
) {
    stack.push(span.name.clone());
    let child_sum: f64 = span.children.iter().map(|c| c.duration_ns as f64).sum();
    let scale = if child_sum > budget && child_sum > 0.0 { budget / child_sum } else { 1.0 };
    let self_weight = budget - child_sum * scale;
    let key = stack.join(";");
    *out.entry(key).or_insert(0.0) += self_weight;
    for child in &span.children {
        fold_wall(child, stack, child.duration_ns as f64 * scale, out);
    }
    stack.pop();
}

/// Accumulates one span subtree into `out` using the `field` span field
/// (alloc/cpu weighting): self weight is the span's own value minus what
/// its children already account for, floored at zero.
fn fold_field(
    span: &SpanRecord,
    field: &str,
    stack: &mut Vec<String>,
    out: &mut BTreeMap<String, f64>,
) {
    stack.push(span.name.clone());
    let own = span.field_u64(field).unwrap_or(0);
    let child_sum: u64 = span.children.iter().map(|c| c.field_u64(field).unwrap_or(0)).sum();
    let self_weight = own.saturating_sub(child_sum);
    if self_weight > 0 {
        let key = stack.join(";");
        *out.entry(key).or_insert(0.0) += self_weight as f64;
    }
    for child in &span.children {
        fold_field(child, field, stack, out);
    }
    stack.pop();
}

/// Folds one trace into `out` (stack path → weight).
pub fn fold_trace(trace: &QueryTrace, weight: ProfileWeight, out: &mut BTreeMap<String, f64>) {
    let mut stack = Vec::new();
    match weight {
        ProfileWeight::Wall => {
            fold_wall(&trace.root, &mut stack, trace.root.duration_ns as f64, out)
        }
        ProfileWeight::Alloc => fold_field(&trace.root, "alloc_bytes", &mut stack, out),
        ProfileWeight::Cpu => fold_field(&trace.root, "cpu_ns", &mut stack, out),
    }
}

/// Folds many traces and renders collapsed-stack lines, one
/// `stack weight` pair per line, sorted by stack for determinism.
/// Weights are ns (wall/cpu) or bytes (alloc); zero-weight stacks are
/// dropped.
pub fn render_traces<'a>(
    traces: impl IntoIterator<Item = &'a QueryTrace>,
    weight: ProfileWeight,
) -> String {
    let mut out = BTreeMap::new();
    for t in traces {
        fold_trace(t, weight, &mut out);
    }
    let mut s = String::new();
    for (stack, w) in &out {
        let w = w.round() as u64;
        if w > 0 {
            s.push_str(stack);
            s.push(' ');
            s.push_str(&w.to_string());
            s.push('\n');
        }
    }
    s
}

/// Folds everything currently in the flight recorder.
pub fn render_flight(flight: &FlightRecorder, weight: ProfileWeight) -> String {
    let traces = flight.snapshot();
    render_traces(traces.iter().map(|t| t.as_ref()), weight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceCtx;
    use std::time::Duration;

    /// root(10ms) -> a(4ms) -> a1(1ms); b(3ms). Built with duration
    /// overrides so folding is deterministic.
    fn tree() -> QueryTrace {
        let ctx = TraceCtx::enabled();
        let mut root = ctx.root("q");
        {
            let mut a = root.child("a");
            {
                let mut a1 = a.child("a1");
                a1.set_duration(Duration::from_millis(1));
                a1.finish();
            }
            a.set_duration(Duration::from_millis(4));
            a.finish();
            let mut b = root.child("b");
            b.set_duration(Duration::from_millis(3));
            b.finish();
        }
        root.set_duration(Duration::from_millis(10));
        root.finish();
        ctx.finish().expect("trace")
    }

    #[test]
    fn wall_weights_sum_to_root_duration() {
        let t = tree();
        let rendered = render_traces([&t], ProfileWeight::Wall);
        let total: u64 = rendered
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap()) // trass-lint: allow(unwrap)
            .sum();
        assert_eq!(total, 10_000_000, "{rendered}");
        assert!(rendered.contains("q;a;a1 1000000"), "{rendered}");
        assert!(rendered.contains("q;a 3000000"), "{rendered}"); // 4ms - 1ms child
        assert!(rendered.contains("q;b 3000000"), "{rendered}");
        assert!(rendered.contains("q 3000000"), "{rendered}"); // 10 - 4 - 3
    }

    #[test]
    fn parallel_children_are_rescaled_into_the_parent_budget() {
        // Two "parallel" children of 8ms each under a 10ms root: raw sums
        // would claim 16ms; folding rescales each to 5ms.
        let ctx = TraceCtx::enabled();
        let mut root = ctx.root("q");
        for name in ["s1", "s2"] {
            let mut c = root.child(name);
            c.set_duration(Duration::from_millis(8));
            c.finish();
        }
        root.set_duration(Duration::from_millis(10));
        root.finish();
        let t = ctx.finish().expect("trace");
        let rendered = render_traces([&t], ProfileWeight::Wall);
        let total: u64 = rendered
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap()) // trass-lint: allow(unwrap)
            .sum();
        assert_eq!(total, 10_000_000, "{rendered}");
        assert!(rendered.contains("q;s1 5000000"), "{rendered}");
        assert!(rendered.contains("q;s2 5000000"), "{rendered}");
    }

    #[test]
    fn alloc_weights_use_explicit_fields_and_clamp_self() {
        let ctx = TraceCtx::enabled();
        let mut root = ctx.root("q");
        {
            let mut a = root.child("a");
            a.set_field("alloc_bytes", 3000u64);
            a.finish();
        }
        root.set_field("alloc_bytes", 2000u64); // less than child: self clamps to 0
        root.finish();
        let t = ctx.finish().expect("trace");
        let rendered = render_traces([&t], ProfileWeight::Alloc);
        assert!(rendered.contains("q;a 3000"), "{rendered}");
        assert!(!rendered.contains("q 2000"), "{rendered}");
    }

    #[test]
    fn weights_parse_and_roundtrip() {
        for w in [ProfileWeight::Wall, ProfileWeight::Alloc, ProfileWeight::Cpu] {
            assert_eq!(ProfileWeight::parse(w.as_str()), Some(w));
        }
        assert_eq!(ProfileWeight::parse("bogus"), None);
    }

    #[test]
    fn flight_render_merges_traces() {
        let flight = FlightRecorder::new(8);
        flight.push(std::sync::Arc::new(tree()));
        flight.push(std::sync::Arc::new(tree()));
        let rendered = render_flight(&flight, ProfileWeight::Wall);
        assert!(rendered.contains("q;a;a1 2000000"), "{rendered}");
    }
}
