//! Stage-tagged allocation and CPU accounting.
//!
//! The pipeline's stage spans ([`crate::Span`]) tell us *when* each stage
//! ran; this module tells us what each stage *cost* in resources:
//!
//! * [`CountingAlloc`] — a dependency-free [`GlobalAlloc`] wrapper around
//!   the system allocator that counts bytes and allocation events into
//!   plain thread-local cells (for per-span deltas) and into a global
//!   per-stage table (for `trass_stage_*` metrics). Binaries opt in with
//!   `#[global_allocator]`; when none is installed every reading is zero
//!   and the rest of the crate degrades gracefully.
//! * Stage tags — a small interned table of stage names plus a
//!   thread-local "current stage" index. [`StageGuard`] enters a stage
//!   RAII-style (created by `Span::enter`, propagated into
//!   `trass-exec` pool workers at claim time) and flushes per-thread
//!   CPU-time deltas to the stage that accrued them on every transition.
//! * CPU time — per-thread cumulative CPU nanoseconds read from
//!   `/proc/thread-self/schedstat` (falling back to `stat` utime+stime),
//!   sampled only at stage transitions and span boundaries so the cost is
//!   a handful of procfs reads per query, not per allocation.
//!
//! Everything here must be callable from inside the allocator, so the
//! thread-locals are const-initialised `Cell`s (no lazy init, no `Drop`,
//! hence no recursion into the allocator) and the global table is a fixed
//! array of atomics.

// The one unsafe surface in trass-obs: implementing `GlobalAlloc` requires
// an `unsafe impl`. The wrapper only forwards to `System` and bumps
// counters; it never touches the returned memory.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

use crate::registry::Registry;

/// Maximum number of distinct stage tags (index 0 is the implicit
/// `other` stage for untagged work). Later registrations fold into
/// `other` rather than failing.
pub const MAX_STAGES: usize = 32;

/// Per-stage cumulative resource counters.
struct StageCell {
    alloc_bytes: AtomicU64,
    allocs: AtomicU64,
    freed_bytes: AtomicU64,
    frees: AtomicU64,
    cpu_ns: AtomicU64,
    bytes_scanned: AtomicU64,
    /// CPU nanoseconds already mirrored into a registry by [`publish`],
    /// so each publish records only the delta into the histogram.
    published_cpu_ns: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const STAGE_CELL_INIT: StageCell = StageCell {
    alloc_bytes: AtomicU64::new(0),
    allocs: AtomicU64::new(0),
    freed_bytes: AtomicU64::new(0),
    frees: AtomicU64::new(0),
    cpu_ns: AtomicU64::new(0),
    bytes_scanned: AtomicU64::new(0),
    published_cpu_ns: AtomicU64::new(0),
};

static STAGES: [StageCell; MAX_STAGES] = [STAGE_CELL_INIT; MAX_STAGES];

/// Interned stage names; index = stage id. Slot 0 is always `other`.
static STAGE_NAMES: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Set by the first allocation routed through [`CountingAlloc`]; readings
/// are meaningless (always zero) until then.
static INSTALLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    // Const-initialised, no-Drop thread locals: safe to touch from inside
    // the allocator (no lazy registration, no teardown recursion).
    static CUR_STAGE: Cell<usize> = const { Cell::new(0) };
    static T_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    static T_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static T_FREED_BYTES: Cell<u64> = const { Cell::new(0) };
    static T_FREES: Cell<u64> = const { Cell::new(0) };
    static CPU_MARK: Cell<u64> = const { Cell::new(0) };
}

/// A counting [`GlobalAlloc`] wrapper around the system allocator.
///
/// Install in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: trass_obs::alloc::CountingAlloc = trass_obs::alloc::CountingAlloc::system();
/// ```
pub struct CountingAlloc {
    inner: System,
}

impl CountingAlloc {
    /// A counting wrapper around [`System`]; `const` so it can initialise
    /// a `#[global_allocator]` static.
    pub const fn system() -> Self {
        Self { inner: System }
    }
}

impl std::fmt::Debug for CountingAlloc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountingAlloc").finish()
    }
}

fn note_alloc(bytes: u64) {
    if !INSTALLED.load(Ordering::Relaxed) {
        INSTALLED.store(true, Ordering::Relaxed);
    }
    // try_with: never panics during thread teardown; worst case the event
    // is attributed to stage `other` without thread-local bookkeeping.
    let _ = T_ALLOC_BYTES.try_with(|c| c.set(c.get().wrapping_add(bytes)));
    let _ = T_ALLOCS.try_with(|c| c.set(c.get() + 1));
    let stage = CUR_STAGE.try_with(Cell::get).unwrap_or(0);
    let cell = &STAGES[stage.min(MAX_STAGES - 1)];
    cell.alloc_bytes.fetch_add(bytes, Ordering::Relaxed);
    cell.allocs.fetch_add(1, Ordering::Relaxed);
}

fn note_free(bytes: u64) {
    let _ = T_FREED_BYTES.try_with(|c| c.set(c.get().wrapping_add(bytes)));
    let _ = T_FREES.try_with(|c| c.set(c.get() + 1));
    let stage = CUR_STAGE.try_with(Cell::get).unwrap_or(0);
    let cell = &STAGES[stage.min(MAX_STAGES - 1)];
    cell.freed_bytes.fetch_add(bytes, Ordering::Relaxed);
    cell.frees.fetch_add(1, Ordering::Relaxed);
}

// SAFETY: every method forwards to `System` unchanged; the counting
// side-effects only touch const-initialised thread locals and static
// atomics, neither of which can allocate or fail.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = self.inner.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = self.inner.alloc_zeroed(layout);
        if !p.is_null() {
            note_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.inner.dealloc(ptr, layout);
        note_free(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = self.inner.realloc(ptr, layout, new_size);
        if !p.is_null() {
            note_free(layout.size() as u64);
            note_alloc(new_size as u64);
        }
        p
    }
}

/// Whether a [`CountingAlloc`] has observed at least one allocation in
/// this process — i.e. whether alloc readings mean anything.
pub fn allocator_installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Interns `name` and returns its stage id. Ids are stable for the
/// process lifetime; when the table is full, returns 0 (`other`).
pub fn stage_id(name: &str) -> usize {
    let mut names = STAGE_NAMES.lock().unwrap_or_else(|e| e.into_inner());
    if names.is_empty() {
        names.push("other".to_string());
    }
    if let Some(id) = names.iter().position(|n| n == name) {
        return id;
    }
    if names.len() >= MAX_STAGES {
        return 0;
    }
    names.push(name.to_string());
    names.len() - 1
}

/// The interned name for `id` (`other` for unknown ids).
pub fn stage_name(id: usize) -> String {
    let names = STAGE_NAMES.lock().unwrap_or_else(|e| e.into_inner());
    names.get(id).cloned().unwrap_or_else(|| "other".to_string())
}

/// The calling thread's current stage id (0 = `other` when untagged).
pub fn current_stage() -> usize {
    CUR_STAGE.try_with(Cell::get).unwrap_or(0)
}

/// Cumulative per-thread allocation counters at a point in time; subtract
/// two snapshots (taken on the *same* thread) for an interval delta.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Bytes allocated on this thread so far.
    pub bytes: u64,
    /// Allocation events on this thread so far.
    pub count: u64,
    /// Bytes freed on this thread so far.
    pub freed_bytes: u64,
    /// Deallocation events on this thread so far.
    pub frees: u64,
}

impl AllocSnapshot {
    /// The interval delta `self - earlier` (both taken on one thread).
    pub fn since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            bytes: self.bytes.wrapping_sub(earlier.bytes),
            count: self.count.wrapping_sub(earlier.count),
            freed_bytes: self.freed_bytes.wrapping_sub(earlier.freed_bytes),
            frees: self.frees.wrapping_sub(earlier.frees),
        }
    }
}

/// The calling thread's cumulative allocation counters (all zero when no
/// [`CountingAlloc`] is installed).
pub fn thread_alloc_snapshot() -> AllocSnapshot {
    AllocSnapshot {
        bytes: T_ALLOC_BYTES.try_with(Cell::get).unwrap_or(0),
        count: T_ALLOCS.try_with(Cell::get).unwrap_or(0),
        freed_bytes: T_FREED_BYTES.try_with(Cell::get).unwrap_or(0),
        frees: T_FREES.try_with(Cell::get).unwrap_or(0),
    }
}

// How per-thread CPU time is read; probed once, then cached.
const CPU_UNPROBED: u8 = 0;
const CPU_SCHEDSTAT: u8 = 1;
const CPU_STAT: u8 = 2;
const CPU_NONE: u8 = 3;
static CPU_SOURCE: AtomicU8 = AtomicU8::new(CPU_UNPROBED);

/// Linux's default clock tick rate; `/proc/*/stat` utime/stime are in
/// ticks and std exposes no sysconf, so the fallback assumes the default.
const CLK_TCK: u64 = 100;

#[cfg(target_os = "linux")]
fn read_proc(path: &str) -> Option<String> {
    std::fs::read_to_string(path).ok()
}

#[cfg(not(target_os = "linux"))]
fn read_proc(_path: &str) -> Option<String> {
    None
}

/// First field of `/proc/thread-self/schedstat`: cumulative on-CPU ns.
fn cpu_from_schedstat() -> Option<u64> {
    let s = read_proc("/proc/thread-self/schedstat")?;
    s.split_whitespace().next()?.parse().ok()
}

/// utime+stime (fields 14/15) of `/proc/thread-self/stat`, converted from
/// clock ticks; coarse (10 ms granularity) but better than nothing.
fn cpu_from_stat() -> Option<u64> {
    let s = read_proc("/proc/thread-self/stat")?;
    // comm may contain spaces; fields restart after the closing paren.
    let rest = &s[s.rfind(')')? + 1..];
    let mut it = rest.split_whitespace();
    // rest starts at field 3 (state); utime/stime are fields 14/15.
    let utime: u64 = it.nth(11)?.parse().ok()?;
    let stime: u64 = it.next()?.parse().ok()?;
    Some((utime + stime) * (1_000_000_000 / CLK_TCK))
}

/// Cumulative CPU nanoseconds consumed by the calling thread, or `None`
/// when no per-thread CPU clock is readable on this platform.
pub fn thread_cpu_ns() -> Option<u64> {
    match CPU_SOURCE.load(Ordering::Relaxed) {
        CPU_SCHEDSTAT => cpu_from_schedstat(),
        CPU_STAT => cpu_from_stat(),
        CPU_NONE => None,
        _ => {
            if let Some(v) = cpu_from_schedstat() {
                CPU_SOURCE.store(CPU_SCHEDSTAT, Ordering::Relaxed);
                Some(v)
            } else if let Some(v) = cpu_from_stat() {
                CPU_SOURCE.store(CPU_STAT, Ordering::Relaxed);
                Some(v)
            } else {
                CPU_SOURCE.store(CPU_NONE, Ordering::Relaxed);
                None
            }
        }
    }
}

/// Whether per-thread CPU time is readable on this platform.
pub fn cpu_supported() -> bool {
    thread_cpu_ns().is_some()
}

/// Charges the calling thread's CPU time since its last flush to `stage`
/// and advances the mark. Called at every stage transition, so each
/// interval lands on the stage that was current while it accrued.
fn flush_cpu(stage: usize) {
    let Some(now) = thread_cpu_ns() else { return };
    let mark = CPU_MARK.try_with(Cell::get).unwrap_or(now);
    if now > mark {
        STAGES[stage.min(MAX_STAGES - 1)].cpu_ns.fetch_add(now - mark, Ordering::Relaxed);
    }
    let _ = CPU_MARK.try_with(|c| c.set(now));
}

/// RAII stage tag: allocation and CPU accounting between `enter` and drop
/// is attributed to the entered stage. Nests (the previous stage is
/// restored on drop) and is created by `Span::enter` for pipeline stages
/// and by `trass-exec` pool workers when they claim tasks.
#[derive(Debug)]
pub struct StageGuard {
    prev: usize,
    // Restoring a thread-local on drop only makes sense on the entering
    // thread; !Send keeps the guard there.
    _not_send: PhantomData<*const ()>,
}

impl StageGuard {
    /// Flushes pending CPU time to the outgoing stage, then makes `id`
    /// the calling thread's current stage until the guard drops.
    pub fn enter(id: usize) -> StageGuard {
        let prev = current_stage();
        flush_cpu(prev);
        let _ = CUR_STAGE.try_with(|c| c.set(id.min(MAX_STAGES - 1)));
        StageGuard { prev, _not_send: PhantomData }
    }

    /// Convenience: intern `name` and enter it.
    pub fn enter_named(name: &str) -> StageGuard {
        StageGuard::enter(stage_id(name))
    }
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        let stage = current_stage();
        // Restore first: the procfs read inside flush_cpu allocates a
        // little, and that bookkeeping noise belongs to the outer stage,
        // keeping the guarded stage's byte attribution exact.
        let _ = CUR_STAGE.try_with(|c| c.set(self.prev));
        flush_cpu(stage);
    }
}

/// Charges `bytes` of scanned KV data to the calling thread's current
/// stage (the kv layer calls this from scan workers, which inherit the
/// query's stage via the pool's tag propagation).
pub fn charge_bytes_scanned(bytes: u64) {
    if bytes == 0 {
        return;
    }
    STAGES[current_stage().min(MAX_STAGES - 1)].bytes_scanned.fetch_add(bytes, Ordering::Relaxed);
}

/// A read-only copy of one stage's cumulative totals (for tests and
/// ad-hoc inspection; metrics flow through [`publish`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTotals {
    /// Bytes allocated while the stage was current.
    pub alloc_bytes: u64,
    /// Allocation events while the stage was current.
    pub allocs: u64,
    /// Bytes freed while the stage was current.
    pub freed_bytes: u64,
    /// Deallocation events while the stage was current.
    pub frees: u64,
    /// CPU nanoseconds flushed to the stage.
    pub cpu_ns: u64,
    /// KV bytes scanned charged to the stage.
    pub bytes_scanned: u64,
}

/// Current totals for stage `id`.
pub fn stage_totals(id: usize) -> StageTotals {
    let c = &STAGES[id.min(MAX_STAGES - 1)];
    StageTotals {
        alloc_bytes: c.alloc_bytes.load(Ordering::Relaxed),
        allocs: c.allocs.load(Ordering::Relaxed),
        freed_bytes: c.freed_bytes.load(Ordering::Relaxed),
        frees: c.frees.load(Ordering::Relaxed),
        cpu_ns: c.cpu_ns.load(Ordering::Relaxed),
        bytes_scanned: c.bytes_scanned.load(Ordering::Relaxed),
    }
}

/// Mirrors the per-stage totals into `registry`:
///
/// * `trass_stage_alloc_bytes{stage=…}` / `trass_stage_allocs{stage=…}` /
///   `trass_stage_bytes_scanned{stage=…}` — monotone counters, set to the
///   current totals;
/// * `trass_stage_cpu_seconds{stage=…}` — a duration histogram whose
///   exported `_sum` is the stage's cumulative CPU seconds (each publish
///   records the delta since the last one; with several registries
///   publishing concurrently each sees a share of the deltas).
///
/// Stages with no activity are skipped, so scrape output stays compact.
pub fn publish(registry: &Registry) {
    let names: Vec<String> = {
        let names = STAGE_NAMES.lock().unwrap_or_else(|e| e.into_inner());
        names.clone()
    };
    for (id, name) in names.iter().enumerate() {
        let c = &STAGES[id];
        let labels = [("stage", name.as_str())];
        let alloc_bytes = c.alloc_bytes.load(Ordering::Relaxed);
        if alloc_bytes > 0 {
            registry.counter("trass_stage_alloc_bytes", &labels).set(alloc_bytes);
            registry.counter("trass_stage_allocs", &labels).set(c.allocs.load(Ordering::Relaxed));
        }
        let scanned = c.bytes_scanned.load(Ordering::Relaxed);
        if scanned > 0 {
            registry.counter("trass_stage_bytes_scanned", &labels).set(scanned);
        }
        let cpu = c.cpu_ns.load(Ordering::Relaxed);
        let prev = c.published_cpu_ns.swap(cpu, Ordering::Relaxed);
        if cpu > prev {
            registry.timer("trass_stage_cpu_seconds", &labels).record(cpu - prev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_ids_are_stable_and_other_is_zero() {
        let a = stage_id("alloc-test-stable");
        assert_eq!(a, stage_id("alloc-test-stable"));
        assert_ne!(a, 0);
        assert_eq!(stage_name(0), "other");
        assert_eq!(stage_name(a), "alloc-test-stable");
        assert_eq!(stage_name(usize::MAX), "other");
    }

    #[test]
    fn guards_nest_and_restore() {
        let outer = stage_id("alloc-test-outer");
        let inner = stage_id("alloc-test-inner");
        let base = current_stage();
        {
            let _g = StageGuard::enter(outer);
            assert_eq!(current_stage(), outer);
            {
                let _h = StageGuard::enter(inner);
                assert_eq!(current_stage(), inner);
            }
            assert_eq!(current_stage(), outer);
        }
        assert_eq!(current_stage(), base);
    }

    #[test]
    fn thread_deltas_count_alloc_and_free_exactly() {
        // The test binary installs CountingAlloc (see lib.rs), so the
        // thread-local counters move in exact lockstep with allocations.
        let before = thread_alloc_snapshot();
        let v: Vec<u8> = Vec::with_capacity(4096);
        let mid = thread_alloc_snapshot().since(&before);
        assert_eq!(mid.bytes, 4096);
        assert_eq!(mid.count, 1);
        drop(v);
        let after = thread_alloc_snapshot().since(&before);
        assert_eq!(after.freed_bytes, 4096);
        assert_eq!(after.frees, 1);
    }

    #[test]
    fn stage_attribution_is_exact_for_a_private_stage() {
        let stage = stage_id("alloc-test-private");
        let before = stage_totals(stage);
        {
            let _g = StageGuard::enter(stage);
            let v: Vec<u8> = Vec::with_capacity(8192);
            drop(v);
        }
        let d = stage_totals(stage);
        assert_eq!(d.alloc_bytes - before.alloc_bytes, 8192);
        assert_eq!(d.allocs - before.allocs, 1);
        assert_eq!(d.freed_bytes - before.freed_bytes, 8192);
        assert_eq!(d.frees - before.frees, 1);
    }

    #[test]
    fn concurrent_threads_add_and_subtract_accurately() {
        let stage = stage_id("alloc-test-concurrent");
        let before = stage_totals(stage);
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 64 * 1024;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    let _g = StageGuard::enter(stage);
                    for _ in 0..16 {
                        let v: Vec<u8> = Vec::with_capacity(PER_THREAD as usize / 16);
                        drop(v);
                    }
                });
            }
        });
        let d = stage_totals(stage);
        let total = THREADS as u64 * PER_THREAD;
        assert_eq!(d.alloc_bytes - before.alloc_bytes, total);
        assert_eq!(d.freed_bytes - before.freed_bytes, total);
        assert_eq!(d.allocs - before.allocs, THREADS as u64 * 16);
        assert_eq!(d.frees - before.frees, THREADS as u64 * 16);
    }

    #[test]
    fn cpu_time_flushes_to_the_active_stage() {
        if !cpu_supported() {
            return;
        }
        let stage = stage_id("alloc-test-cpu");
        let before = stage_totals(stage);
        {
            let _g = StageGuard::enter(stage);
            // Burn a visible amount of CPU (~several ms).
            let mut x = 0u64;
            for i in 0..20_000_000u64 {
                x = x.wrapping_mul(31).wrapping_add(i);
            }
            std::hint::black_box(x);
        }
        let after = stage_totals(stage);
        assert!(after.cpu_ns > before.cpu_ns, "spin loop should accrue CPU time");
    }

    #[test]
    fn bytes_scanned_charges_current_stage() {
        let stage = stage_id("alloc-test-scan");
        let before = stage_totals(stage);
        {
            let _g = StageGuard::enter(stage);
            charge_bytes_scanned(12_345);
            charge_bytes_scanned(0);
        }
        assert_eq!(stage_totals(stage).bytes_scanned - before.bytes_scanned, 12_345);
    }

    #[test]
    fn publish_mirrors_totals_into_a_registry() {
        let stage = stage_id("alloc-test-publish");
        {
            let _g = StageGuard::enter(stage);
            let v: Vec<u8> = Vec::with_capacity(1024);
            drop(v);
            charge_bytes_scanned(77);
        }
        let registry = Registry::new();
        publish(&registry);
        let labels = [("stage", "alloc-test-publish")];
        assert!(registry.counter("trass_stage_alloc_bytes", &labels).get() >= 1024);
        assert!(registry.counter("trass_stage_bytes_scanned", &labels).get() >= 77);
    }
}
