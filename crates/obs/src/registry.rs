//! A registry of named, labeled metrics.
//!
//! The registry is the rendezvous point between instrumentation sites
//! (which create or look up metrics by name + label set) and exporters
//! (which walk every registered metric). Lookup takes a mutex; the returned
//! handles are `Arc`s whose updates are lock-free, so hot paths resolve
//! their handles once and record through them.

use crate::histogram::Histogram;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the absolute value. Only for mirroring an *external* monotone
    /// counter (e.g. a store's `IoMetrics`) into the registry; regular
    /// instrumentation should use [`Counter::add`].
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
pub(crate) enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Identity of a metric: name plus its sorted label pairs.
pub(crate) type MetricKey = (String, Vec<(String, String)>);

/// A thread-safe registry of counters, gauges and histograms.
///
/// Metrics are identified by `(name, labels)`; requesting the same identity
/// twice returns the same handle. Requesting an existing name with a
/// different metric *kind* panics — that is a programming error, not a
/// runtime condition.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<HashMap<MetricKey, Metric>>,
}

/// Canonical label form: owned and sorted by key.
fn key_of(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut owned: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    owned.sort();
    (name.to_string(), owned)
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty registry behind an `Arc` (the common shape: shared
    /// by every layer of one deployment).
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Gets or creates a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = key_of(name, labels);
        let mut metrics = self.metrics.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match metrics.entry(key).or_insert_with(|| Metric::Counter(Arc::new(Counter::default()))) {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name} already registered as {}", kind_name(other)),
        }
    }

    /// Gets or creates a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = key_of(name, labels);
        let mut metrics = self.metrics.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match metrics.entry(key).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default()))) {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name} already registered as {}", kind_name(other)),
        }
    }

    /// Gets or creates a histogram of raw `u64` values (export scale 1.0).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram_scaled(name, labels, 1.0)
    }

    /// Gets or creates a duration histogram: values are recorded in
    /// nanoseconds and exported in seconds (scale `1e-9`). By convention
    /// its name ends in `_seconds`.
    pub fn timer(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram_scaled(name, labels, 1e-9)
    }

    fn histogram_scaled(&self, name: &str, labels: &[(&str, &str)], scale: f64) -> Arc<Histogram> {
        let key = key_of(name, labels);
        let mut metrics = self.metrics.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match metrics
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::with_scale(scale))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name} already registered as {}", kind_name(other)),
        }
    }

    /// Number of registered metrics (all kinds).
    pub fn len(&self) -> usize {
        self.metrics.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sorted copy of the current metrics, for exporters.
    pub(crate) fn sorted_entries(&self) -> Vec<(MetricKey, Metric)> {
        let metrics = self.metrics.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut entries: Vec<(MetricKey, Metric)> =
            metrics.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }
}

fn kind_name(m: &Metric) -> &'static str {
    match m {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("metrics", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_identity_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("requests", &[("shard", "1")]);
        let b = r.counter("requests", &[("shard", "1")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = Registry::new();
        let a = r.counter("c", &[("a", "1"), ("b", "2")]);
        let b = r.counter("c", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn different_labels_are_different_series() {
        let r = Registry::new();
        r.counter("c", &[("shard", "0")]).inc();
        r.counter("c", &[("shard", "1")]).add(5);
        assert_eq!(r.counter("c", &[("shard", "0")]).get(), 1);
        assert_eq!(r.counter("c", &[("shard", "1")]).get(), 5);
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x", &[]);
        r.gauge("x", &[]);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let r = Registry::new();
        let g = r.gauge("queue_depth", &[]);
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn timer_records_in_nanos_exports_seconds_scale() {
        let r = Registry::new();
        let t = r.timer("op_seconds", &[("op", "scan")]);
        t.record(1_500_000); // 1.5 ms
        assert_eq!(t.count(), 1);
        assert!((t.scale() - 1e-9).abs() < 1e-18);
    }
}
