//! Exporters: Prometheus text format and JSON.
//!
//! Both render a point-in-time snapshot of a [`Registry`]. Output is
//! deterministic (families and series sorted by name, then labels) so
//! tests and diffs are stable.

use crate::histogram::Histogram;
use crate::registry::{Metric, Registry};
use std::fmt::Write as _;

/// A plain-data snapshot of one metric, for programmatic consumers (the
/// benchmark harness converts these into `serde_json` values).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric family name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

/// The value part of a [`MetricSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone counter.
    Counter(u64),
    /// Up/down gauge.
    Gauge(i64),
    /// Histogram summary (values pre-multiplied by the export scale).
    Histogram {
        /// Sample count.
        count: u64,
        /// Sum of samples, scaled.
        sum: f64,
        /// Median, scaled.
        p50: f64,
        /// 90th percentile, scaled.
        p90: f64,
        /// 99th percentile, scaled.
        p99: f64,
        /// 99.9th percentile, scaled.
        p999: f64,
        /// Smallest sample, scaled.
        min: f64,
        /// Largest sample, scaled.
        max: f64,
    },
}

impl Registry {
    /// A structured snapshot of every registered metric, sorted by
    /// `(name, labels)`.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        self.sorted_entries()
            .into_iter()
            .map(|((name, labels), metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => {
                        let p = h.percentiles();
                        let s = h.scale();
                        MetricValue::Histogram {
                            count: h.count(),
                            sum: h.sum() as f64 * s,
                            p50: p.p50 as f64 * s,
                            p90: p.p90 as f64 * s,
                            p99: p.p99 as f64 * s,
                            p999: p.p999 as f64 * s,
                            min: h.min() as f64 * s,
                            max: h.max() as f64 * s,
                        }
                    }
                };
                MetricSnapshot { name, labels, value }
            })
            .collect()
    }

    /// Renders every metric in the Prometheus text exposition format.
    ///
    /// Histograms emit cumulative `_bucket{le="..."}` series over their
    /// non-empty buckets (plus `+Inf`), `_sum`, and `_count`, with bucket
    /// bounds multiplied by the histogram's export scale (so
    /// nanosecond-recorded timers expose seconds).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for ((name, labels), metric) in self.sorted_entries() {
            if name != last_family {
                let kind = match &metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_family = name.clone();
            }
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{}{} {}", name, label_block(&labels, None), c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{}{} {}", name, label_block(&labels, None), g.get());
                }
                Metric::Histogram(h) => render_histogram(&mut out, &name, &labels, &h),
            }
        }
        out
    }

    /// Renders every metric as a JSON document:
    /// `{"counters": [...], "gauges": [...], "histograms": [...]}`.
    ///
    /// Implemented by hand so the crate stays dependency-free; the output
    /// is plain JSON and round-trips through `serde_json`.
    pub fn render_json(&self) -> String {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for snap in self.snapshot() {
            let mut obj = String::new();
            let _ = write!(obj, "{{\"name\":{}", json_string(&snap.name));
            let _ = write!(obj, ",\"labels\":{{");
            for (i, (k, v)) in snap.labels.iter().enumerate() {
                if i > 0 {
                    obj.push(',');
                }
                let _ = write!(obj, "{}:{}", json_string(k), json_string(v));
            }
            obj.push('}');
            match snap.value {
                MetricValue::Counter(v) => {
                    let _ = write!(obj, ",\"value\":{v}}}");
                    counters.push(obj);
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(obj, ",\"value\":{v}}}");
                    gauges.push(obj);
                }
                MetricValue::Histogram { count, sum, p50, p90, p99, p999, min, max } => {
                    let _ = write!(
                        obj,
                        ",\"count\":{count},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\
                         \"p999\":{},\"min\":{},\"max\":{}}}",
                        json_f64(sum),
                        json_f64(p50),
                        json_f64(p90),
                        json_f64(p99),
                        json_f64(p999),
                        json_f64(min),
                        json_f64(max),
                    );
                    histograms.push(obj);
                }
            }
        }
        format!(
            "{{\"counters\":[{}],\"gauges\":[{}],\"histograms\":[{}]}}",
            counters.join(","),
            gauges.join(","),
            histograms.join(",")
        )
    }
}

fn render_histogram(out: &mut String, name: &str, labels: &[(String, String)], h: &Histogram) {
    let scale = h.scale();
    let mut cumulative = 0u64;
    for (upper, n) in h.nonzero_buckets() {
        cumulative += n;
        let le = fmt_f64(upper as f64 * scale);
        let _ = writeln!(out, "{}_bucket{} {}", name, label_block(labels, Some(&le)), cumulative);
    }
    let _ = writeln!(out, "{}_bucket{} {}", name, label_block(labels, Some("+Inf")), h.count());
    let _ = writeln!(
        out,
        "{}_sum{} {}",
        name,
        label_block(labels, None),
        fmt_f64(h.sum() as f64 * scale)
    );
    let _ = writeln!(out, "{}_count{} {}", name, label_block(labels, None), h.count());
}

/// `{k="v",...}` (empty string when there are no labels), optionally with a
/// trailing `le` label for histogram buckets.
pub(crate) fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Shortest clean decimal for a metric value.
pub(crate) fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// A JSON number literal (`null` for non-finite values).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        fmt_f64(v)
    } else {
        "null".to_string()
    }
}

/// A JSON string literal with all required escapes.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_counters_and_gauges() {
        let r = Registry::new();
        r.counter("trass_kv_entries_scanned", &[("shard", "0")]).add(7);
        r.counter("trass_kv_entries_scanned", &[("shard", "1")]).add(3);
        r.gauge("fixture_tables", &[]).set(4);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE trass_kv_entries_scanned counter"));
        assert!(text.contains("trass_kv_entries_scanned{shard=\"0\"} 7"));
        assert!(text.contains("trass_kv_entries_scanned{shard=\"1\"} 3"));
        assert!(text.contains("# TYPE fixture_tables gauge"));
        assert!(text.contains("fixture_tables 4"));
        // TYPE line appears once per family.
        assert_eq!(text.matches("# TYPE trass_kv_entries_scanned").count(), 1);
    }

    #[test]
    fn prometheus_histogram_shape() {
        let r = Registry::new();
        let h = r.timer("trass_query_stage_seconds", &[("stage", "scan")]);
        h.record(1_000_000_000); // 1 s
        h.record(2_000_000_000); // 2 s
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE trass_query_stage_seconds histogram"));
        assert!(text.contains("trass_query_stage_seconds_bucket{stage=\"scan\",le=\"+Inf\"} 2"));
        assert!(text.contains("trass_query_stage_seconds_count{stage=\"scan\"} 2"));
        assert!(text.contains("trass_query_stage_seconds_sum{stage=\"scan\"} 3"));
        // Cumulative: the first finite bucket holds 1, and some bucket le
        // covers ~1s scaled to seconds.
        let bucket_lines: Vec<&str> =
            text.lines().filter(|l| l.contains("_bucket") && !l.contains("+Inf")).collect();
        assert_eq!(bucket_lines.len(), 2);
        assert!(bucket_lines[0].ends_with(" 1"));
        assert!(bucket_lines[1].ends_with(" 2"));
    }

    #[test]
    fn adversarial_label_values_are_escaped() {
        let r = Registry::new();
        // Backslash, double quote, and newline — every character the text
        // exposition format requires escaping in label values, plus a
        // value combining all three in escape-order-sensitive sequence.
        r.counter("c", &[("path", "C:\\temp\\x")]).inc();
        r.counter("c", &[("msg", "say \"hi\"")]).add(2);
        r.counter("c", &[("multi", "line1\nline2")]).add(3);
        r.counter("c", &[("mix", "\\\"\n")]).add(4);
        let text = r.render_prometheus();
        assert!(text.contains(r#"c{path="C:\\temp\\x"} 1"#), "backslash:\n{text}");
        assert!(text.contains(r#"c{msg="say \"hi\""} 2"#), "quote:\n{text}");
        assert!(text.contains(r#"c{multi="line1\nline2"} 3"#), "newline:\n{text}");
        // Escape order matters: the backslash must be escaped first, or
        // the escaped quote/newline would be double-escaped.
        assert!(text.contains(r#"c{mix="\\\"\n"} 4"#), "mixed:\n{text}");
        // No raw newline may survive inside any sample line.
        for line in text.lines() {
            assert!(
                line.is_empty()
                    || line.starts_with('#')
                    || line.ends_with(|c: char| c.is_ascii_digit()),
                "line split by unescaped newline: {line:?}"
            );
        }
    }

    #[test]
    fn adversarial_labels_on_histogram_series() {
        let r = Registry::new();
        let h = r.timer("h_seconds", &[("q", "a\"b\\c\nd")]);
        h.record(1_000_000);
        let text = r.render_prometheus();
        // The TYPE line is emitted for the histogram family, and every
        // generated series (_bucket/_sum/_count) carries the escaped label.
        assert!(text.contains("# TYPE h_seconds histogram"));
        let escaped = r#"q="a\"b\\c\nd""#;
        for series in ["h_seconds_bucket{", "h_seconds_sum{", "h_seconds_count{"] {
            let line = text.lines().find(|l| l.starts_with(series)).expect(series);
            assert!(line.contains(escaped), "unescaped label in {line}");
        }
        // JSON exporter escapes the same values in its own syntax.
        let json = r.render_json();
        assert!(json.contains(r#""q":"a\"b\\c\nd""#), "{json}");
    }

    #[test]
    fn json_round_trips_structure() {
        let r = Registry::new();
        r.counter("c", &[("a", "x\"y")]).inc();
        r.gauge("g", &[]).set(-2);
        r.timer("t_seconds", &[]).record(500);
        let json = r.render_json();
        assert!(json.starts_with("{\"counters\":["));
        assert!(json.contains("\"name\":\"c\""));
        assert!(json.contains("\"a\":\"x\\\"y\""));
        assert!(json.contains("\"value\":-2"));
        assert!(json.contains("\"count\":1"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let r = Registry::new();
        r.counter("b", &[]).inc();
        r.counter("a", &[]).inc();
        let snaps = r.snapshot();
        assert_eq!(snaps[0].name, "a");
        assert_eq!(snaps[1].name, "b");
        assert!(matches!(snaps[0].value, MetricValue::Counter(1)));
    }

    #[test]
    fn empty_registry_renders_empty() {
        let r = Registry::new();
        assert_eq!(r.render_prometheus(), "");
        assert_eq!(r.render_json(), "{\"counters\":[],\"gauges\":[],\"histograms\":[]}");
    }
}
