//! Health probes and SLO burn-rate evaluation.
//!
//! Two layers feed the telemetry endpoint's `/healthz` verdict:
//!
//! * [`HealthRegistry`] — named, pluggable *probes*: cheap closures each
//!   subsystem registers (WAL writable, compaction backlog, pool queue
//!   depth) that answer "is this component currently able to do its job?".
//! * [`SloEvaluator`] — *objectives* over the metric registry, checked
//!   with the standard multi-window burn-rate method: an objective (say,
//!   99 % of queries under 500 ms) implies an error budget (1 %), and the
//!   evaluator alarms only when both a fast window (pages quickly on a
//!   cliff) and a slow window (suppresses blips) are burning budget faster
//!   than their configured factors. Verdicts are re-published into the
//!   registry as `trass_slo_ok{objective=...}` and
//!   `trass_slo_burn_rate_milli{objective=...,window=...}` gauges so the
//!   alarm state itself is scrapeable.
//!
//! The evaluator is sampled by the collector ([`crate::collector`]) on its
//! tick, so "window" here is measured in collector ticks, not wall-clock
//! seconds; with the default 1 s interval the two coincide.

use crate::histogram::Histogram;
use crate::registry::{Counter, Gauge, Registry};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// A registered probe's outcome: its name and `Ok(())` or the failure
/// reason.
#[derive(Debug, Clone)]
pub struct ProbeReport {
    /// The probe's registered name.
    pub name: String,
    /// `Ok(())` when healthy, `Err(reason)` otherwise.
    pub result: Result<(), String>,
}

type Probe = Box<dyn Fn() -> Result<(), String> + Send + Sync>;

/// A set of named liveness/readiness probes, checked on demand.
///
/// Probes must be cheap and non-blocking — they run inline on every
/// `/healthz` and `/readyz` request.
#[derive(Default)]
pub struct HealthRegistry {
    probes: Mutex<Vec<(String, Probe)>>,
}

impl HealthRegistry {
    /// Creates an empty probe set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty probe set behind an `Arc` (the common shape:
    /// shared between the subsystems registering probes and the endpoint
    /// checking them).
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Registers a probe under `name`. Re-registering a name adds a second
    /// probe with the same name rather than replacing the first.
    pub fn register(
        &self,
        name: &str,
        probe: impl Fn() -> Result<(), String> + Send + Sync + 'static,
    ) {
        self.probes
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((name.to_string(), Box::new(probe)));
    }

    /// Runs every probe, in registration order.
    pub fn check(&self) -> Vec<ProbeReport> {
        let probes = self.probes.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        probes.iter().map(|(name, p)| ProbeReport { name: name.clone(), result: p() }).collect()
    }

    /// True when every probe passes (vacuously true with no probes).
    pub fn healthy(&self) -> bool {
        self.check().iter().all(|r| r.result.is_ok())
    }

    /// Number of registered probes.
    pub fn len(&self) -> usize {
        self.probes.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// True when no probe is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for HealthRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthRegistry").field("probes", &self.len()).finish()
    }
}

/// What an [`SloObjective`] measures: a (good events, total events) pair
/// read cumulatively from the metric registry.
#[derive(Debug, Clone)]
pub enum SloSignal {
    /// Good = samples of a latency histogram at or under a threshold.
    ///
    /// Metrics named `*_seconds` are resolved as timers (nanosecond
    /// recording, 1e-9 export scale); the threshold is converted through
    /// the histogram's own scale, so instrumentation and evaluator can
    /// never disagree on units.
    LatencyUnder {
        /// Histogram metric name.
        metric: String,
        /// The series' label pairs.
        labels: Vec<(String, String)>,
        /// Threshold in *exported* units (seconds for `*_seconds` timers).
        threshold: f64,
    },
    /// Good = `total − errors`, both read from counters.
    ErrorRatio {
        /// Error counter name (unlabeled series).
        errors: String,
        /// Total counter name (unlabeled series).
        total: String,
    },
}

/// One service-level objective checked by the [`SloEvaluator`].
#[derive(Debug, Clone)]
pub struct SloObjective {
    /// Objective name (the `objective` label on the published gauges).
    pub name: String,
    /// What to measure.
    pub signal: SloSignal,
    /// Target good fraction in `[0, 1)`, e.g. `0.99`. The error budget is
    /// `1 − objective`.
    pub objective: f64,
    /// Fast window length in evaluator ticks.
    pub fast_window: usize,
    /// Slow window length in evaluator ticks (≥ `fast_window`).
    pub slow_window: usize,
    /// Burn-rate factor that must be exceeded over the fast window.
    pub fast_burn: f64,
    /// Burn-rate factor that must be exceeded over the slow window.
    pub slow_burn: f64,
}

impl SloObjective {
    /// A latency objective with the standard page-worthy burn factors
    /// (14.4× fast, 6× slow) over 6-tick / 30-tick windows.
    pub fn latency_under(name: &str, metric: &str, threshold: f64, objective: f64) -> Self {
        SloObjective {
            name: name.to_string(),
            signal: SloSignal::LatencyUnder {
                metric: metric.to_string(),
                labels: Vec::new(),
                threshold,
            },
            objective,
            fast_window: 6,
            slow_window: 30,
            fast_burn: 14.4,
            slow_burn: 6.0,
        }
    }

    /// An error-ratio objective over two counters, same windows and burn
    /// factors as [`SloObjective::latency_under`].
    pub fn error_ratio(name: &str, errors: &str, total: &str, objective: f64) -> Self {
        SloObjective {
            name: name.to_string(),
            signal: SloSignal::ErrorRatio { errors: errors.to_string(), total: total.to_string() },
            objective,
            fast_window: 6,
            slow_window: 30,
            fast_burn: 14.4,
            slow_burn: 6.0,
        }
    }
}

/// One objective's verdict after a tick.
#[derive(Debug, Clone)]
pub struct SloStatus {
    /// The objective's name.
    pub name: String,
    /// Burn rate over the fast window (1.0 = burning budget exactly at
    /// the sustainable rate).
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// True when both windows exceed their configured factors.
    pub breached: bool,
}

/// Per-objective evaluator state: resolved gauge handles plus the ring of
/// cumulative `(good, total)` samples the windows are computed over.
struct ObjectiveState {
    spec: SloObjective,
    /// Cumulative samples, oldest front; capped at `slow_window + 1`.
    samples: VecDeque<(u64, u64)>,
    ok_gauge: Arc<Gauge>,
    fast_gauge: Arc<Gauge>,
    slow_gauge: Arc<Gauge>,
    status: SloStatus,
}

/// Signal handles resolved once so ticking is lock-free on the registry.
enum SignalReader {
    Latency { histogram: Arc<Histogram>, threshold_raw: u64 },
    Errors { errors: Arc<Counter>, total: Arc<Counter> },
}

impl SignalReader {
    fn resolve(registry: &Registry, signal: &SloSignal) -> SignalReader {
        match signal {
            SloSignal::LatencyUnder { metric, labels, threshold } => {
                let label_refs: Vec<(&str, &str)> =
                    labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                // `timer` for `_seconds` names so a pre-instrumentation
                // resolve creates the series with the right scale; either
                // way the existing handle's own scale converts the
                // threshold.
                let histogram = if metric.ends_with("_seconds") {
                    registry.timer(metric, &label_refs)
                } else {
                    registry.histogram(metric, &label_refs)
                };
                let scale = histogram.scale();
                let threshold_raw = if scale > 0.0 && threshold.is_finite() && *threshold >= 0.0 {
                    let raw = threshold / scale;
                    if raw >= u64::MAX as f64 {
                        u64::MAX
                    } else {
                        raw as u64
                    }
                } else {
                    u64::MAX
                };
                SignalReader::Latency { histogram, threshold_raw }
            }
            SloSignal::ErrorRatio { errors, total } => SignalReader::Errors {
                errors: registry.counter(errors, &[]),
                total: registry.counter(total, &[]),
            },
        }
    }

    /// Cumulative `(good, total)` right now.
    fn read(&self) -> (u64, u64) {
        match self {
            SignalReader::Latency { histogram, threshold_raw } => {
                let total = histogram.count();
                // Two relaxed reads race with writers; clamp so good ≤ total.
                (histogram.count_at_most(*threshold_raw).min(total), total)
            }
            SignalReader::Errors { errors, total } => {
                let t = total.get();
                (t.saturating_sub(errors.get()), t)
            }
        }
    }
}

/// Evaluates a set of [`SloObjective`]s against a [`Registry`], one
/// cumulative sample per [`SloEvaluator::tick`].
pub struct SloEvaluator {
    objectives: Mutex<Vec<(SignalReader, ObjectiveState)>>,
}

impl SloEvaluator {
    /// Builds an evaluator, resolving every signal's metric handles (and
    /// publishing the initial healthy verdicts) against `registry`.
    pub fn new(registry: &Registry, objectives: Vec<SloObjective>) -> Self {
        let states = objectives
            .into_iter()
            .map(|spec| {
                let reader = SignalReader::resolve(registry, &spec.signal);
                let obj_labels = [("objective", spec.name.as_str())];
                let ok_gauge = registry.gauge("trass_slo_ok", &obj_labels);
                ok_gauge.set(1);
                let fast_gauge = registry.gauge(
                    "trass_slo_burn_rate_milli",
                    &[("objective", spec.name.as_str()), ("window", "fast")],
                );
                let slow_gauge = registry.gauge(
                    "trass_slo_burn_rate_milli",
                    &[("objective", spec.name.as_str()), ("window", "slow")],
                );
                let status = SloStatus {
                    name: spec.name.clone(),
                    fast_burn: 0.0,
                    slow_burn: 0.0,
                    breached: false,
                };
                let state = ObjectiveState {
                    spec,
                    samples: VecDeque::new(),
                    ok_gauge,
                    fast_gauge,
                    slow_gauge,
                    status,
                };
                (reader, state)
            })
            .collect();
        SloEvaluator { objectives: Mutex::new(states) }
    }

    /// Takes one cumulative sample per objective, recomputes both window
    /// burn rates, publishes the gauges, and returns the fresh verdicts.
    pub fn tick(&self) -> Vec<SloStatus> {
        let mut objectives =
            self.objectives.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        objectives
            .iter_mut()
            .map(|(reader, state)| {
                state.samples.push_back(reader.read());
                while state.samples.len() > state.spec.slow_window + 1 {
                    state.samples.pop_front();
                }
                let fast = burn_over(&state.samples, state.spec.fast_window, state.spec.objective);
                let slow = burn_over(&state.samples, state.spec.slow_window, state.spec.objective);
                let breached = fast >= state.spec.fast_burn && slow >= state.spec.slow_burn;
                state.ok_gauge.set(i64::from(!breached));
                state.fast_gauge.set(burn_milli(fast));
                state.slow_gauge.set(burn_milli(slow));
                state.status = SloStatus {
                    name: state.spec.name.clone(),
                    fast_burn: fast,
                    slow_burn: slow,
                    breached,
                };
                state.status.clone()
            })
            .collect()
    }

    /// The verdicts from the most recent tick (all-healthy before the
    /// first).
    pub fn statuses(&self) -> Vec<SloStatus> {
        self.objectives
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(_, s)| s.status.clone())
            .collect()
    }

    /// True when any objective is currently breached.
    pub fn breached(&self) -> bool {
        self.statuses().iter().any(|s| s.breached)
    }

    /// Number of configured objectives.
    pub fn len(&self) -> usize {
        self.objectives.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// True when no objective is configured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for SloEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloEvaluator").field("objectives", &self.len()).finish()
    }
}

/// Burn rate over the last `window` ticks of cumulative samples: the bad
/// fraction of the events in that span divided by the error budget. A
/// still-warming ring uses the span it has; a span with no traffic burns
/// nothing.
fn burn_over(samples: &VecDeque<(u64, u64)>, window: usize, objective: f64) -> f64 {
    let Some(&(good_now, total_now)) = samples.back() else { return 0.0 };
    let span = window.min(samples.len() - 1);
    let (good_then, total_then) = samples[samples.len() - 1 - span];
    let total_delta = total_now.saturating_sub(total_then);
    if total_delta == 0 {
        return 0.0;
    }
    let good_delta = good_now.saturating_sub(good_then).min(total_delta);
    let bad_fraction = (total_delta - good_delta) as f64 / total_delta as f64;
    let budget = (1.0 - objective).max(1e-9);
    bad_fraction / budget
}

/// A burn rate as an integer gauge in milli-units, saturating.
fn burn_milli(burn: f64) -> i64 {
    if !burn.is_finite() {
        return i64::MAX;
    }
    let milli = burn * 1e3;
    if milli >= i64::MAX as f64 {
        i64::MAX
    } else {
        milli as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_report_in_registration_order() {
        let h = HealthRegistry::new();
        assert!(h.healthy(), "no probes is healthy");
        h.register("always-ok", || Ok(()));
        h.register("always-bad", || Err("broken".to_string()));
        let reports = h.check();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].name, "always-ok");
        assert!(reports[0].result.is_ok());
        assert_eq!(reports[1].result.as_ref().unwrap_err(), "broken");
        assert!(!h.healthy());
    }

    #[test]
    fn probes_observe_live_state() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let h = HealthRegistry::new();
        let flag = Arc::new(AtomicBool::new(true));
        let probe_flag = Arc::clone(&flag);
        h.register("flag", move || {
            if probe_flag.load(Ordering::Relaxed) {
                Ok(())
            } else {
                Err("flag down".to_string())
            }
        });
        assert!(h.healthy());
        flag.store(false, Ordering::Relaxed);
        assert!(!h.healthy());
    }

    fn latency_objective(threshold: f64, fast: usize, slow: usize) -> SloObjective {
        SloObjective {
            fast_window: fast,
            slow_window: slow,
            ..SloObjective::latency_under("lat", "op_seconds", threshold, 0.99)
        }
    }

    #[test]
    fn healthy_traffic_never_breaches() {
        let r = Registry::new();
        let t = r.timer("op_seconds", &[]);
        let slo = SloEvaluator::new(&r, vec![latency_objective(0.5, 3, 6)]);
        for _ in 0..10 {
            for _ in 0..20 {
                t.record(1_000_000); // 1 ms — well under 500 ms
            }
            let statuses = slo.tick();
            assert!(!statuses[0].breached, "{statuses:?}");
            assert_eq!(statuses[0].fast_burn, 0.0);
        }
        assert!(!slo.breached());
        assert_eq!(r.gauge("trass_slo_ok", &[("objective", "lat")]).get(), 1);
    }

    #[test]
    fn latency_spike_breaches_and_recovers() {
        let r = Registry::new();
        let t = r.timer("op_seconds", &[]);
        let slo = SloEvaluator::new(&r, vec![latency_objective(0.5, 3, 6)]);
        // Warm up healthy.
        for _ in 0..7 {
            t.record(1_000_000);
            slo.tick();
        }
        // Sustained spike: every sample over threshold. Bad fraction 1.0
        // against a 1 % budget is a 100× burn in both windows.
        let mut breached = false;
        for _ in 0..7 {
            for _ in 0..10 {
                t.record(2_000_000_000); // 2 s
            }
            breached = slo.tick()[0].breached;
        }
        assert!(breached, "sustained spike must breach");
        assert!(slo.breached());
        assert_eq!(r.gauge("trass_slo_ok", &[("objective", "lat")]).get(), 0);
        let fast =
            r.gauge("trass_slo_burn_rate_milli", &[("objective", "lat"), ("window", "fast")]).get();
        assert!(fast > 14_400, "fast burn milli {fast}");
        // Recovery: healthy traffic pushes the spike out of both windows.
        for _ in 0..10 {
            for _ in 0..100 {
                t.record(1_000_000);
            }
            slo.tick();
        }
        assert!(!slo.breached(), "{:?}", slo.statuses());
        assert_eq!(r.gauge("trass_slo_ok", &[("objective", "lat")]).get(), 1);
    }

    #[test]
    fn short_blip_does_not_breach_slow_window() {
        let r = Registry::new();
        let t = r.timer("op_seconds", &[]);
        let slo = SloEvaluator::new(&r, vec![latency_objective(0.5, 1, 20)]);
        // Long healthy history at high volume.
        for _ in 0..21 {
            for _ in 0..100 {
                t.record(1_000_000);
            }
            slo.tick();
        }
        // One bad tick: saturates the fast window but not the slow one.
        for _ in 0..5 {
            t.record(2_000_000_000);
        }
        let s = &slo.tick()[0];
        assert!(s.fast_burn >= 14.4, "blip should light the fast window: {s:?}");
        assert!(s.slow_burn < 6.0, "slow window should absorb a blip: {s:?}");
        assert!(!s.breached);
    }

    #[test]
    fn error_ratio_signal_breaches_on_failures() {
        let r = Registry::new();
        let total = r.counter("req_total", &[]);
        let errors = r.counter("req_errors", &[]);
        let spec = SloObjective {
            fast_window: 2,
            slow_window: 4,
            ..SloObjective::error_ratio("errs", "req_errors", "req_total", 0.999)
        };
        let slo = SloEvaluator::new(&r, vec![spec]);
        for _ in 0..5 {
            total.add(100);
            slo.tick();
        }
        assert!(!slo.breached());
        // Everything failing: burn = 1.0 / 0.001 = 1000×.
        for _ in 0..5 {
            total.add(100);
            errors.add(100);
            assert!(slo.tick()[0].fast_burn > 100.0);
        }
        assert!(slo.breached());
    }

    #[test]
    fn no_traffic_is_not_a_breach() {
        let r = Registry::new();
        let slo = SloEvaluator::new(&r, vec![latency_objective(0.5, 2, 4)]);
        for _ in 0..10 {
            let s = &slo.tick()[0];
            assert_eq!(s.fast_burn, 0.0);
            assert!(!s.breached);
        }
    }

    #[test]
    fn threshold_converts_through_the_timer_scale() {
        let r = Registry::new();
        // Resolve through the evaluator first: the series must still end
        // up with timer scale, so instrumentation recording nanoseconds
        // is judged in seconds.
        let slo = SloEvaluator::new(&r, vec![latency_objective(0.5, 1, 2)]);
        let t = r.timer("op_seconds", &[]);
        assert!((t.scale() - 1e-9).abs() < 1e-18, "evaluator created the wrong scale");
        t.record(400_000_000); // 0.4 s: good
        let s = &slo.tick()[0];
        assert_eq!(s.fast_burn, 0.0, "{s:?}");
    }
}
