//! Observability for TraSS: metrics, latency histograms, stage spans, and
//! exporters — with zero external dependencies.
//!
//! The paper's headline claims are I/O reduction and latency (Figs. 9–11,
//! 13, 18); operating the system at production scale additionally needs
//! per-stage latency *distributions* and store-level health counters, not
//! just cumulative totals. This crate provides that layer, shared by every
//! level of the stack:
//!
//! * [`Histogram`] — a log-bucketed (HDR-style) concurrent histogram with
//!   `record` / `merge` / percentile queries (p50/p90/p99/p999) under
//!   relaxed atomics. The *same* implementation backs production metrics
//!   and the benchmark harness's tail-latency numbers (Fig. 18), so the
//!   two can never disagree.
//! * [`Registry`] — named counters, gauges, and histograms with label
//!   support (`shard`, `stage`, `measure`, …).
//! * [`Span`] — an RAII timer feeding per-stage histograms
//!   (`trass_query_stage_seconds{stage="scan"}`), wired through the query
//!   pipeline and the KV store's maintenance paths.
//! * Exporters — Prometheus text format ([`Registry::render_prometheus`])
//!   and JSON ([`Registry::render_json`] / [`Registry::snapshot`]).
//! * [`SlowLog`] — a fixed-capacity top-N-by-latency query log.
//! * [`trace`] — sampled per-query span trees ([`TraceCtx`] /
//!   [`QueryTrace`]) with `EXPLAIN ANALYZE` and JSON renderers, plus a
//!   [`FlightRecorder`] ring buffer of the last N completed traces.
//! * [`http`] — an embedded, dependency-free telemetry endpoint
//!   ([`Telemetry`] / [`HttpServer`]) serving `/metrics`, `/traces`,
//!   `/slowlog`, `/vars/history`, `/healthz`, and `/readyz` over
//!   `std::net`.
//! * [`collector`] — a background thread ([`Collector`]) that samples the
//!   registry on an interval into fixed-size per-series ring buffers, so
//!   the endpoint can serve short-horizon rate/delta time series without
//!   an external TSDB.
//! * [`health`] — liveness/readiness probes ([`HealthRegistry`]) and
//!   multi-window SLO burn-rate evaluation ([`SloEvaluator`]) whose
//!   verdicts drive `/healthz` status codes and `trass_slo_*` gauges.
//! * [`alloc`] — stage-tagged resource accounting: a counting
//!   [`CountingAlloc`](alloc::CountingAlloc) global-allocator wrapper,
//!   thread-local stage tags ([`StageGuard`](alloc::StageGuard)) entered
//!   by stage spans and propagated to pool workers, and per-thread CPU
//!   time, published as `trass_stage_*` metrics.
//! * [`profile`] — folds the flight recorder's span trees into
//!   collapsed-stack (flame-graph) lines weighted by wall time, alloc
//!   bytes, or CPU time, served at `/profile`.
//! * [`fingerprint`] — query-shape fingerprints and the fixed-capacity
//!   [`WorkloadSummary`] aggregating per-shape cost statistics, served at
//!   `/workload`.
//!
//! Metric name conventions: `trass_query_*` (query pipeline),
//! `trass_kv_*` (store internals), `trass_ingest_*` (write path);
//! duration histograms end in `_seconds` and record nanoseconds internally
//! (scaled at export).

// `deny` rather than `forbid` so the allocator module (the one place that
// must `unsafe impl GlobalAlloc`) can opt out with a scoped allow.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod collector;
pub mod export;
pub mod fingerprint;
pub mod health;
pub mod histogram;
pub mod http;
pub mod profile;
pub mod registry;
pub mod slowlog;
pub mod span;
pub mod trace;

pub use alloc::{AllocSnapshot, CountingAlloc, StageGuard};
pub use collector::{Collector, CollectorHandle, CollectorOptions};
pub use export::{MetricSnapshot, MetricValue};
pub use fingerprint::{QueryFingerprint, WorkloadStats, WorkloadSummary, WorkloadTotals};
pub use health::{HealthRegistry, ProbeReport, SloEvaluator, SloObjective, SloSignal, SloStatus};
pub use histogram::{Histogram, Percentiles};
pub use http::{HttpServer, Request, Response, Telemetry, TelemetryOptions, TelemetrySources};
pub use profile::ProfileWeight;
pub use registry::{Counter, Gauge, Registry};
pub use slowlog::SlowLog;
pub use span::{Span, STAGE_HISTOGRAM};
pub use trace::{
    FieldValue, FlightRecorder, QueryTrace, SpanRecord, TraceCtx, TraceSampler, TraceSpan,
};

// The unit-test binary installs the counting allocator so alloc-exactness
// tests (alloc.rs, trace.rs) see real readings.
#[cfg(test)]
#[global_allocator]
static TEST_ALLOC: alloc::CountingAlloc = alloc::CountingAlloc::system();
