//! Query fingerprinting and workload analytics.
//!
//! A *fingerprint* normalises a query into its shape: the query type,
//! distance measure, and coarse (power-of-two bucketed) magnitudes of its
//! parameters — threshold, k, trajectory length, region fan-out. Queries
//! that differ only by parameter jitter share a fingerprint; queries of
//! different types or measures never collide. The [`WorkloadSummary`]
//! aggregates per-fingerprint cost statistics (count, latency
//! percentiles, bytes scanned, candidates, prune ratio, allocation) in a
//! fixed-capacity table, giving an at-a-glance answer to "which query
//! shapes dominate this workload, and what do they cost?" — the
//! aggregate view REPOSE-style load balancing decisions need.

use std::sync::Mutex;
use std::time::Duration;

use crate::histogram::Histogram;

/// Bucket a count to the next power of two (`0 → 1`), so jittered sizes
/// normalise to the same magnitude class.
pub fn bucket_pow2(n: u64) -> u64 {
    n.max(1).next_power_of_two()
}

/// Bucket a positive float to its floor power-of-two exponent
/// (`0.010 → -7`, `12.0 → 3`); `None` for zero/negative/non-finite.
pub fn bucket_log2(x: f64) -> Option<i32> {
    if !x.is_finite() || x <= 0.0 {
        return None;
    }
    // Exact for every finite positive f64; clamp is cosmetic.
    Some(x.log2().floor().clamp(-1024.0, 1024.0) as i32)
}

/// A normalised query shape. Equal fingerprints ⇒ same shape class.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryFingerprint {
    /// Query type: `threshold`, `topk`, or `range`.
    pub kind: &'static str,
    /// Distance measure (`frechet`, `hausdorff`, `dtw`); empty for range.
    pub measure: String,
    /// `floor(log2(eps))` for threshold queries.
    pub eps_bucket: Option<i32>,
    /// `k` rounded up to a power of two, for top-k queries.
    pub k_bucket: Option<u64>,
    /// Query trajectory point count rounded up to a power of two.
    pub len_bucket: Option<u64>,
    /// Scanned rowkey-range count rounded up to a power of two, for
    /// range queries (their cost driver is index fan-out, not a query
    /// trajectory).
    pub ranges_bucket: Option<u64>,
}

impl QueryFingerprint {
    /// Fingerprint of a threshold (similarity-range) query.
    pub fn threshold(measure: &str, eps: f64, query_points: usize) -> QueryFingerprint {
        QueryFingerprint {
            kind: "threshold",
            measure: measure.to_string(),
            eps_bucket: bucket_log2(eps),
            k_bucket: None,
            len_bucket: Some(bucket_pow2(query_points as u64)),
            ranges_bucket: None,
        }
    }

    /// Fingerprint of a top-k query.
    pub fn topk(measure: &str, k: usize, query_points: usize) -> QueryFingerprint {
        QueryFingerprint {
            kind: "topk",
            measure: measure.to_string(),
            eps_bucket: None,
            k_bucket: Some(bucket_pow2(k as u64)),
            len_bucket: Some(bucket_pow2(query_points as u64)),
            ranges_bucket: None,
        }
    }

    /// Fingerprint of a spatio-temporal range query over `n_ranges`
    /// scanned rowkey ranges.
    pub fn range(n_ranges: usize) -> QueryFingerprint {
        QueryFingerprint {
            kind: "range",
            measure: String::new(),
            eps_bucket: None,
            k_bucket: None,
            len_bucket: None,
            ranges_bucket: Some(bucket_pow2(n_ranges as u64)),
        }
    }

    /// Canonical textual key, e.g. `threshold|frechet|eps:2^-7|len:128`.
    pub fn key(&self) -> String {
        let mut s = String::from(self.kind);
        if !self.measure.is_empty() {
            s.push('|');
            s.push_str(&self.measure);
        }
        match self.eps_bucket {
            Some(e) => s.push_str(&format!("|eps:2^{e}")),
            None if self.kind == "threshold" => s.push_str("|eps:0"),
            None => {}
        }
        if let Some(k) = self.k_bucket {
            s.push_str(&format!("|k:{k}"));
        }
        if let Some(l) = self.len_bucket {
            s.push_str(&format!("|len:{l}"));
        }
        if let Some(r) = self.ranges_bucket {
            s.push_str(&format!("|ranges:{r}"));
        }
        s
    }
}

impl std::fmt::Display for QueryFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.key())
    }
}

/// Per-query cost sample fed into [`WorkloadSummary::record`].
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkloadStats {
    /// End-to-end query latency.
    pub latency: Duration,
    /// KV bytes read while serving the query.
    pub bytes_scanned: u64,
    /// Rows retrieved by the scan stage.
    pub retrieved: u64,
    /// Candidates surviving the local filter.
    pub candidates: u64,
    /// Final result count.
    pub results: u64,
    /// Candidates discarded by refinement's lower-bound prefilter before
    /// any exact kernel ran.
    pub refine_pruned: u64,
    /// Bytes allocated on the driver thread while serving the query
    /// (zero when no counting allocator is installed).
    pub alloc_bytes: u64,
}

struct Entry {
    key: String,
    count: u64,
    latency: Histogram,
    bytes_scanned: u64,
    retrieved: u64,
    candidates: u64,
    results: u64,
    refine_pruned: u64,
    alloc_bytes: u64,
}

impl Entry {
    fn new(key: String) -> Entry {
        Entry {
            key,
            count: 0,
            latency: Histogram::with_scale(1e-9),
            bytes_scanned: 0,
            retrieved: 0,
            candidates: 0,
            results: 0,
            refine_pruned: 0,
            alloc_bytes: 0,
        }
    }

    fn add(&mut self, s: &WorkloadStats) {
        self.count += 1;
        self.latency.record_duration(s.latency);
        self.bytes_scanned += s.bytes_scanned;
        self.retrieved += s.retrieved;
        self.candidates += s.candidates;
        self.results += s.results;
        self.refine_pruned += s.refine_pruned;
        self.alloc_bytes += s.alloc_bytes;
    }

    /// Fraction of retrieved rows killed by the local filter.
    fn prune_ratio(&self) -> f64 {
        if self.retrieved == 0 {
            0.0
        } else {
            1.0 - (self.candidates as f64 / self.retrieved as f64)
        }
    }
}

/// Key under which queries beyond the fingerprint capacity aggregate.
pub const OVERFLOW_KEY: &str = "~overflow";

/// Deterministic totals summed across every fingerprint — the
/// "attribution totals" that must not depend on `query_threads`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkloadTotals {
    /// Queries recorded.
    pub count: u64,
    /// Rows retrieved by scans.
    pub retrieved: u64,
    /// Local-filter survivors.
    pub candidates: u64,
    /// Final results.
    pub results: u64,
    /// KV bytes read.
    pub bytes_scanned: u64,
}

/// A fixed-capacity per-fingerprint statistics table. The first
/// `capacity` distinct fingerprints get their own entry; later ones fold
/// into [`OVERFLOW_KEY`] so memory stays bounded however diverse the
/// workload.
pub struct WorkloadSummary {
    capacity: usize,
    entries: Mutex<Vec<Entry>>,
}

impl WorkloadSummary {
    /// An empty summary tracking at most `capacity` distinct
    /// fingerprints (plus the overflow bucket).
    pub fn new(capacity: usize) -> WorkloadSummary {
        WorkloadSummary { capacity: capacity.max(1), entries: Mutex::new(Vec::new()) }
    }

    /// Records one query's cost sample under its fingerprint.
    pub fn record(&self, fp: &QueryFingerprint, stats: &WorkloadStats) {
        let key = fp.key();
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let at = match entries.iter().position(|e| e.key == key) {
            Some(i) => i,
            None if entries.len() < self.capacity => {
                entries.push(Entry::new(key));
                entries.len() - 1
            }
            None => match entries.iter().position(|e| e.key == OVERFLOW_KEY) {
                Some(i) => i,
                None => {
                    entries.push(Entry::new(OVERFLOW_KEY.to_string()));
                    entries.len() - 1
                }
            },
        };
        entries[at].add(stats);
    }

    /// Number of distinct fingerprint entries (including overflow).
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The tracked fingerprint keys, busiest first.
    pub fn fingerprints(&self) -> Vec<String> {
        let mut entries: Vec<(String, u64)> = self
            .entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|e| (e.key.clone(), e.count))
            .collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries.into_iter().map(|(k, _)| k).collect()
    }

    /// Deterministic attribution totals across all fingerprints.
    pub fn totals(&self) -> WorkloadTotals {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut t = WorkloadTotals::default();
        for e in entries.iter() {
            t.count += e.count;
            t.retrieved += e.retrieved;
            t.candidates += e.candidates;
            t.results += e.results;
            t.bytes_scanned += e.bytes_scanned;
        }
        t
    }

    /// Human-readable table, busiest fingerprint first.
    pub fn render_text(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| {
            entries[b]
                .count
                .cmp(&entries[a].count)
                .then_with(|| entries[a].key.cmp(&entries[b].key))
        });
        let mut s = format!(
            "workload summary: {} shapes, {} queries\n",
            entries.len(),
            entries.iter().map(|e| e.count).sum::<u64>()
        );
        s.push_str("count    p50_ms    p99_ms  prune  rprune      bytes      alloc  fingerprint\n");
        for &i in &order {
            let e = &entries[i];
            let p = e.latency.percentiles();
            s.push_str(&format!(
                "{:>5} {:>9.3} {:>9.3} {:>6.3} {:>7} {:>10} {:>10}  {}\n",
                e.count,
                p.p50 as f64 / 1e6,
                p.p99 as f64 / 1e6,
                e.prune_ratio(),
                e.refine_pruned,
                e.bytes_scanned,
                e.alloc_bytes,
                e.key,
            ));
        }
        s
    }

    /// JSON rendering (same content as [`WorkloadSummary::render_text`]).
    pub fn render_json(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| {
            entries[b]
                .count
                .cmp(&entries[a].count)
                .then_with(|| entries[a].key.cmp(&entries[b].key))
        });
        let mut s = String::from("{\"fingerprints\":[");
        for (n, &i) in order.iter().enumerate() {
            let e = &entries[i];
            let p = e.latency.percentiles();
            if n > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"fingerprint\":\"{}\",\"count\":{},\"p50_ms\":{:.3},\"p99_ms\":{:.3},\
                 \"bytes_scanned\":{},\"retrieved\":{},\"candidates\":{},\"results\":{},\
                 \"prune_ratio\":{:.4},\"refine_pruned\":{},\"alloc_bytes\":{}}}",
                e.key,
                e.count,
                p.p50 as f64 / 1e6,
                p.p99 as f64 / 1e6,
                e.bytes_scanned,
                e.retrieved,
                e.candidates,
                e.results,
                e.prune_ratio(),
                e.refine_pruned,
                e.alloc_bytes,
            ));
        }
        s.push_str("]}");
        s
    }
}

impl std::fmt::Debug for WorkloadSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadSummary")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ms: u64) -> WorkloadStats {
        WorkloadStats {
            latency: Duration::from_millis(ms),
            bytes_scanned: 100,
            retrieved: 50,
            candidates: 10,
            results: 5,
            refine_pruned: 3,
            alloc_bytes: 1000,
        }
    }

    #[test]
    fn parameter_jitter_normalises_to_one_fingerprint() {
        // eps within one power-of-two bucket, k within one bucket,
        // lengths within one bucket: identical fingerprints.
        let a = QueryFingerprint::threshold("frechet", 0.010, 100);
        let b = QueryFingerprint::threshold("frechet", 0.0117, 117);
        assert_eq!(a, b);
        assert_eq!(a.key(), b.key());
        let c = QueryFingerprint::topk("hausdorff", 10, 100);
        let d = QueryFingerprint::topk("hausdorff", 12, 127);
        assert_eq!(c, d);
        let e = QueryFingerprint::range(100);
        let f = QueryFingerprint::range(128);
        assert_eq!(e, f);
    }

    #[test]
    fn distinct_types_and_measures_never_collide() {
        let shapes = [
            QueryFingerprint::threshold("frechet", 0.01, 100),
            QueryFingerprint::threshold("hausdorff", 0.01, 100),
            QueryFingerprint::threshold("dtw", 0.01, 100),
            QueryFingerprint::topk("frechet", 10, 100),
            QueryFingerprint::topk("hausdorff", 10, 100),
            QueryFingerprint::range(100),
        ];
        for (i, a) in shapes.iter().enumerate() {
            for (j, b) in shapes.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b);
                    assert_ne!(a.key(), b.key());
                }
            }
        }
    }

    #[test]
    fn magnitude_changes_split_fingerprints() {
        let a = QueryFingerprint::threshold("frechet", 0.01, 100);
        let b = QueryFingerprint::threshold("frechet", 0.04, 100); // other eps bucket
        let c = QueryFingerprint::threshold("frechet", 0.01, 400); // other len bucket
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(bucket_log2(0.0), None);
        assert_eq!(bucket_log2(f64::NAN), None);
        assert_eq!(bucket_log2(8.0), Some(3));
        assert_eq!(bucket_pow2(0), 1);
        assert_eq!(bucket_pow2(100), 128);
    }

    #[test]
    fn summary_aggregates_and_ranks_by_count() {
        let s = WorkloadSummary::new(8);
        let fp1 = QueryFingerprint::threshold("frechet", 0.01, 100);
        let fp2 = QueryFingerprint::topk("frechet", 10, 100);
        for _ in 0..3 {
            s.record(&fp1, &sample(5));
        }
        s.record(&fp2, &sample(50));
        assert_eq!(s.len(), 2);
        let order = s.fingerprints();
        assert_eq!(order[0], fp1.key());
        let t = s.totals();
        assert_eq!(t.count, 4);
        assert_eq!(t.retrieved, 200);
        assert_eq!(t.candidates, 40);
        let text = s.render_text();
        assert!(text.contains("workload summary: 2 shapes, 4 queries"), "{text}");
        assert!(text.contains(&fp1.key()), "{text}");
        let json = s.render_json();
        assert!(json.contains("\"count\":3"), "{json}");
        assert!(json.contains("\"prune_ratio\":0.8000"), "{json}");
    }

    #[test]
    fn capacity_overflow_folds_into_one_bucket() {
        let s = WorkloadSummary::new(2);
        for k in 0..5usize {
            // Different k buckets → distinct fingerprints.
            let fp = QueryFingerprint::topk("frechet", 1 << k, 100);
            s.record(&fp, &sample(1));
        }
        assert_eq!(s.len(), 3, "2 tracked + overflow");
        assert!(s.fingerprints().contains(&OVERFLOW_KEY.to_string()));
        assert_eq!(s.totals().count, 5);
    }
}
