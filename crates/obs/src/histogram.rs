//! Log-bucketed (HDR-style) latency histogram.
//!
//! The paper's evaluation reports latency *distributions* — medians in
//! Figs. 9–10, the p99 tail in Fig. 18 — and a production deployment needs
//! the same percentiles live, per stage and per shard. This histogram
//! supports both uses from one implementation: recording is a single
//! relaxed `fetch_add` (safe to leave on in hot paths), merging is
//! bucket-wise addition (aggregation across shards or query batches), and
//! percentile queries walk the bucket array without locking writers.
//!
//! # Bucketing scheme
//!
//! Values are u64 (the stack records nanoseconds or bytes). Buckets are
//! log-linear: values below `2^SUB_BITS` get exact unit buckets; above
//! that, each power-of-two range is split into `2^SUB_BITS` equal
//! sub-buckets. With `SUB_BITS = 5` the relative quantization error is
//! bounded by 1/32 ≈ 3.1 % across the whole u64 range, using
//! [`N_BUCKETS`] = 1920 counters (15 KiB per histogram).

use std::sync::atomic::{AtomicU64, Ordering};

/// Power-of-two sub-bucket resolution: each binary order of magnitude is
/// split into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 5;
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// Total number of buckets covering `0..=u64::MAX`.
/// Exact region `0..32` plus 59 log groups of 32 sub-buckets.
pub const N_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_COUNT as usize;

/// The fixed percentile set reported throughout the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Percentiles {
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile (Fig. 18's tail metric).
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

/// A concurrent log-bucketed histogram of `u64` samples.
///
/// All operations use relaxed atomics: counts are exact, but a reader
/// racing writers may observe a slightly stale distribution — fine for
/// monitoring, irrelevant once writers quiesce (as in benchmarks).
pub struct Histogram {
    buckets: Box<[AtomicU64; N_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Multiplier applied to values at export time (e.g. `1e-9` when the
    /// histogram records nanoseconds but is exported in seconds).
    scale: f64,
}

impl Histogram {
    /// Creates an empty histogram with export scale 1.0.
    pub fn new() -> Self {
        Self::with_scale(1.0)
    }

    /// Creates an empty histogram whose exported values (bucket bounds and
    /// sum) are multiplied by `scale`.
    pub fn with_scale(scale: f64) -> Self {
        let buckets: Vec<AtomicU64> = (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; N_BUCKETS]> =
            // the Vec was built with exactly N_BUCKETS elements just
            // above: trass-lint: allow(unwrap)
            buckets.into_boxed_slice().try_into().expect("N_BUCKETS length");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            scale,
        }
    }

    /// Bucket index of a value.
    fn index_of(value: u64) -> usize {
        if value < SUB_COUNT {
            return value as usize;
        }
        let high_bit = 63 - value.leading_zeros(); // >= SUB_BITS
        let shift = high_bit - SUB_BITS;
        let group = (shift + 1) as usize;
        let sub = ((value >> shift) & (SUB_COUNT - 1)) as usize;
        group * SUB_COUNT as usize + sub
    }

    /// Largest value mapping to bucket `index` (the bucket's inclusive
    /// upper bound, used as the Prometheus `le` bound).
    fn bucket_upper(index: usize) -> u64 {
        if index < SUB_COUNT as usize {
            return index as u64;
        }
        let group = index / SUB_COUNT as usize;
        let sub = (index % SUB_COUNT as usize) as u128;
        let shift = (group - 1) as u32;
        // The very top bucket's exclusive bound is 2^64; compute in u128
        // and clamp so it maps to u64::MAX.
        let upper = (((SUB_COUNT as u128 + sub + 1) << shift) - 1).min(u64::MAX as u128);
        upper as u64
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value`.
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::index_of(value)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(value.saturating_mul(n), Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating past ~584 years).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Adds every sample of `other` into `self`. Equivalent (up to bucket
    /// resolution) to having recorded the concatenation of both sample
    /// streams.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min.fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Export scale (see [`Histogram::with_scale`]).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The value at quantile `q` (clamped to `[0, 1]`; `NaN` is treated as
    /// 0): an upper bound of the bucket containing the `ceil(q·count)`-th
    /// smallest sample, further clamped to the observed min/max so `q = 0`
    /// and `q = 1` return exact extremes. Returns 0 on an empty histogram.
    ///
    /// Monotone in `q` and within 1/32 relative error of the exact
    /// order statistic.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        // Walk a consistent snapshot of the buckets.
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Self::bucket_upper(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// The standard percentile set.
    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            p50: self.value_at_quantile(0.50),
            p90: self.value_at_quantile(0.90),
            p99: self.value_at_quantile(0.99),
            p999: self.value_at_quantile(0.999),
        }
    }

    /// Number of recorded samples `≤ value`, up to bucket resolution: the
    /// whole bucket containing `value` is counted, so the result can
    /// overcount by at most the samples sharing that bucket (≤ 1/32
    /// relative error on the value axis). Monotone in `value`. This is the
    /// "good events" reader for latency SLOs (`count_at_most(threshold)` /
    /// `count()`).
    pub fn count_at_most(&self, value: u64) -> u64 {
        let idx = Self::index_of(value);
        self.buckets.iter().take(idx + 1).map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Non-empty buckets as `(inclusive_upper_bound, count)` pairs in
    /// increasing bound order — the exporter's raw material.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (Self::bucket_upper(i), n))
            })
            .collect()
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let p = self.percentiles();
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("p50", &p.p50)
            .field("p99", &p.p99)
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.value_at_quantile(1.0), 31);
    }

    #[test]
    fn index_and_upper_are_consistent() {
        // Every probe value must land in a bucket whose range covers it.
        let probes: Vec<u64> = (0..64)
            .flat_map(|s: u32| {
                let base = 1u64.checked_shl(s).unwrap_or(u64::MAX);
                [base.saturating_sub(1), base, base.saturating_add(base / 3)]
            })
            .chain([0, 1, 2, 31, 32, 33, 1000, u64::MAX])
            .collect();
        for v in probes {
            let i = Histogram::index_of(v);
            assert!(i < N_BUCKETS, "index {i} out of range for {v}");
            let upper = Histogram::bucket_upper(i);
            assert!(upper >= v, "upper {upper} < value {v}");
            if i > 0 {
                let prev_upper = Histogram::bucket_upper(i - 1);
                assert!(prev_upper < v, "value {v} also fits bucket {}", i - 1);
            }
            // Relative error bound: upper within ~3.2% of the value.
            if v >= 32 {
                assert!((upper - v) as f64 <= v as f64 / 32.0 + 1.0, "v={v} upper={upper}");
            }
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 17);
        }
        let mut last = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let v = h.value_at_quantile(q);
            assert!(v >= last, "quantile regressed at q={q}");
            assert!(v >= h.min() && v <= h.max());
            last = v;
        }
        // p50 within 3.2% of the exact median (5000*17).
        let p50 = h.value_at_quantile(0.5) as f64;
        let exact = 5_000.0 * 17.0;
        assert!((p50 - exact).abs() / exact < 0.04, "p50={p50} exact={exact}");
    }

    #[test]
    fn merge_matches_concatenated_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for v in [0u64, 5, 100, 40_000, 1 << 40] {
            a.record(v);
            both.record(v);
        }
        for v in [3u64, 5, 999, 1 << 20] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.value_at_quantile(q), both.value_at_quantile(q));
        }
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.value_at_quantile(0.5), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(123);
        h.record(1 << 33);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.value_at_quantile(0.99), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn record_n_weights_counts() {
        let h = Histogram::new();
        h.record_n(10, 99);
        h.record_n(1_000_000, 1);
        assert_eq!(h.count(), 100);
        assert_eq!(h.value_at_quantile(0.5), 10);
        // The single large sample is the p100 but not the p99 (99 of 100
        // samples are 10; target index ceil(0.99*100)=99 → still 10).
        assert_eq!(h.value_at_quantile(0.99), 10);
        assert_eq!(h.value_at_quantile(1.0), 1_000_000);
    }

    #[test]
    fn quantile_boundaries_on_empty_histogram() {
        let h = Histogram::new();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(h.value_at_quantile(q), 0, "q={q}");
        }
    }

    #[test]
    fn quantile_boundaries_on_single_sample() {
        let h = Histogram::new();
        h.record(42);
        // Every quantile of a one-sample distribution is that sample.
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.value_at_quantile(q), 42, "q={q}");
        }
    }

    #[test]
    fn out_of_range_quantiles_clamp_to_extremes() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.value_at_quantile(-0.5), h.value_at_quantile(0.0));
        assert_eq!(h.value_at_quantile(1.5), h.value_at_quantile(1.0));
        assert_eq!(h.value_at_quantile(f64::NEG_INFINITY), h.min());
        assert_eq!(h.value_at_quantile(f64::INFINITY), h.max());
        // NaN is treated as q = 0, not propagated.
        assert_eq!(h.value_at_quantile(f64::NAN), h.value_at_quantile(0.0));
    }

    #[test]
    fn count_at_most_is_monotone_and_bounded() {
        let h = Histogram::new();
        for v in [0u64, 1, 10, 31, 32, 1000, 1 << 20] {
            h.record(v);
        }
        assert_eq!(h.count_at_most(0), 1);
        assert_eq!(h.count_at_most(31), 4, "exact region counts exactly");
        assert_eq!(h.count_at_most(u64::MAX), h.count());
        let mut last = 0;
        for v in [0u64, 5, 31, 32, 999, 1000, 1 << 20, u64::MAX] {
            let c = h.count_at_most(v);
            assert!(c >= last, "count_at_most regressed at {v}");
            last = c;
        }
        assert_eq!(Histogram::new().count_at_most(u64::MAX), 0);
    }

    #[test]
    fn duration_recording() {
        let h = Histogram::with_scale(1e-9);
        h.record_duration(std::time::Duration::from_millis(3));
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 3_000_000);
        assert!((h.scale() - 1e-9).abs() < 1e-18);
    }
}
