//! RAII stage timers.
//!
//! A [`Span`] measures the wall-clock time between its creation and its
//! drop (or explicit [`Span::finish`]) and records it into a duration
//! histogram. The query pipeline wraps each stage — pruning, scan, local
//! filter, refine — in a span feeding
//! `trass_query_stage_seconds{stage="..."}`.

use crate::histogram::Histogram;
use crate::registry::Registry;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Histogram family fed by [`Span::enter`].
pub const STAGE_HISTOGRAM: &str = "trass_query_stage_seconds";

/// An RAII timer recording into a histogram when it ends.
///
/// Spans created via [`Span::enter`] / [`Span::enter_with`] additionally
/// tag the calling thread with the stage name (see [`crate::alloc`]), so
/// allocation and CPU accounting between enter and drop is attributed to
/// the stage; [`Span::on`] is a bare timer with no stage tag.
pub struct Span {
    hist: Arc<Histogram>,
    start: Instant,
    armed: bool,
    _stage: Option<crate::alloc::StageGuard>,
}

impl Span {
    /// Starts a span over the standard per-stage histogram
    /// (`trass_query_stage_seconds{stage="<stage>"}`), tagging the thread
    /// with the stage for resource attribution.
    pub fn enter(registry: &Registry, stage: &str) -> Span {
        let mut span = Span::on(registry.timer(STAGE_HISTOGRAM, &[("stage", stage)]));
        span._stage = Some(crate::alloc::StageGuard::enter_named(stage));
        span
    }

    /// Starts a span over the standard per-stage histogram with extra
    /// labels (e.g. `("query", "threshold")`), tagging the thread with
    /// the stage for resource attribution.
    pub fn enter_with(registry: &Registry, stage: &str, extra: &[(&str, &str)]) -> Span {
        let mut labels: Vec<(&str, &str)> = Vec::with_capacity(extra.len() + 1);
        labels.push(("stage", stage));
        labels.extend_from_slice(extra);
        let mut span = Span::on(registry.timer(STAGE_HISTOGRAM, &labels));
        span._stage = Some(crate::alloc::StageGuard::enter_named(stage));
        span
    }

    /// Starts a span recording into an explicit histogram (which should
    /// have nanosecond→second scale, as [`Registry::timer`] creates).
    pub fn on(hist: Arc<Histogram>) -> Span {
        Span { hist, start: Instant::now(), armed: true, _stage: None }
    }

    /// Elapsed time so far, without ending the span.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Ends the span, records the elapsed time, and returns it — for call
    /// sites that also feed per-query stats.
    pub fn finish(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.hist.record_duration(elapsed);
        self.armed = false;
        elapsed
    }

    /// Abandons the span without recording (e.g. on an error path that
    /// should not pollute latency distributions).
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record_duration(self.start.elapsed());
        }
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span").field("elapsed", &self.elapsed()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_once() {
        let r = Registry::new();
        {
            let _span = Span::enter(&r, "scan");
        }
        let h = r.timer(STAGE_HISTOGRAM, &[("stage", "scan")]);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn finish_records_and_returns_elapsed() {
        let r = Registry::new();
        let span = Span::enter(&r, "refine");
        let d = span.finish();
        let h = r.timer(STAGE_HISTOGRAM, &[("stage", "refine")]);
        assert_eq!(h.count(), 1, "finish must not double-record with drop");
        assert!(h.max() as u128 >= d.as_nanos() / 2);
    }

    #[test]
    fn cancel_records_nothing() {
        let r = Registry::new();
        Span::enter(&r, "scan").cancel();
        assert_eq!(r.timer(STAGE_HISTOGRAM, &[("stage", "scan")]).count(), 0);
    }

    #[test]
    fn enter_tags_the_thread_and_drop_restores() {
        let r = Registry::new();
        let base = crate::alloc::current_stage();
        let span = Span::enter(&r, "span-test-stage");
        assert_eq!(crate::alloc::stage_name(crate::alloc::current_stage()), "span-test-stage");
        span.finish();
        assert_eq!(crate::alloc::current_stage(), base);
    }

    #[test]
    fn enter_with_extra_labels() {
        let r = Registry::new();
        Span::enter_with(&r, "scan", &[("query", "threshold")]).finish();
        let h = r.timer(STAGE_HISTOGRAM, &[("stage", "scan"), ("query", "threshold")]);
        assert_eq!(h.count(), 1);
    }
}
