//! Property test: merging two histograms is indistinguishable from
//! recording the concatenation of their sample streams.

use proptest::prelude::*;
use trass_obs::Histogram;

fn record_all(h: &Histogram, samples: &[u64]) {
    for &v in samples {
        h.record(v);
    }
}

proptest! {
    #[test]
    fn merge_equals_concatenated_recording(
        a in proptest::collection::vec(0u64..u64::MAX, 0..200),
        b in proptest::collection::vec(0u64..u64::MAX, 0..200),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hc = Histogram::new();
        record_all(&ha, &a);
        record_all(&hb, &b);
        record_all(&hc, &a);
        record_all(&hc, &b);
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hc.count());
        prop_assert_eq!(ha.sum(), hc.sum());
        prop_assert_eq!(ha.min(), hc.min());
        prop_assert_eq!(ha.max(), hc.max());
        prop_assert_eq!(ha.nonzero_buckets(), hc.nonzero_buckets());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(ha.value_at_quantile(q), hc.value_at_quantile(q));
        }
    }

    #[test]
    fn quantiles_track_exact_order_statistics(
        mut samples in proptest::collection::vec(0u64..1_000_000_000u64, 1..300),
        q in 0.0f64..1.0f64,
    ) {
        let h = Histogram::new();
        record_all(&h, &samples);
        samples.sort_unstable();
        let idx = (((q * samples.len() as f64).ceil() as usize).max(1) - 1)
            .min(samples.len() - 1);
        let exact = samples[idx] as f64;
        let got = h.value_at_quantile(q) as f64;
        // Log-bucketed: within 1/32 relative error (plus 1 at the exact
        // integer region boundary), and never below the exact order
        // statistic's bucket lower bound.
        prop_assert!(got + 1.0 >= exact, "got {got} below exact {exact}");
        prop_assert!(got <= exact * (1.0 + 1.0 / 32.0) + 1.0, "got {got} far above exact {exact}");
    }
}
