//! Multi-threaded hammering of `Histogram` and `Registry`: exact total
//! counts and monotone percentiles must survive concurrent recording —
//! plus `SlowLog` and `FlightRecorder` under concurrent record/push and
//! snapshot, the pattern the parallel query pipeline produces.

use std::sync::Arc;
use trass_obs::{FlightRecorder, Histogram, Registry, SlowLog, Span, TraceCtx};

const THREADS: usize = 8;
const PER_THREAD: u64 = 20_000;

#[test]
fn histogram_counts_are_exact_under_contention() {
    let h = Arc::new(Histogram::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // Mix of magnitudes, deterministic per thread.
                    h.record((i * 31 + t as u64) % 1_000_000);
                }
            });
        }
    });
    assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
    // Bucket contents must sum to the same total.
    let bucket_total: u64 = h.nonzero_buckets().iter().map(|&(_, n)| n).sum();
    assert_eq!(bucket_total, h.count());
    // Percentiles are monotone and bounded by observed extremes.
    let mut last = 0;
    for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
        let v = h.value_at_quantile(q);
        assert!(v >= last, "quantile regressed at q={q}");
        assert!(v <= h.max());
        last = v;
    }
    assert_eq!(h.value_at_quantile(1.0), h.max());
}

#[test]
fn registry_handles_are_shared_across_threads() {
    let r = Arc::new(Registry::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let r = Arc::clone(&r);
            s.spawn(move || {
                let shard = (t % 4).to_string();
                let c = r.counter("hits", &[("shard", &shard)]);
                let h = r.timer("op_seconds", &[("shard", &shard)]);
                let g = r.gauge("depth", &[]);
                for i in 0..PER_THREAD {
                    c.inc();
                    h.record(i + 1);
                    g.add(1);
                    g.add(-1);
                }
            });
        }
    });
    let total: u64 = (0..4).map(|s| r.counter("hits", &[("shard", &s.to_string())]).get()).sum();
    assert_eq!(total, THREADS as u64 * PER_THREAD);
    let recorded: u64 =
        (0..4).map(|s| r.timer("op_seconds", &[("shard", &s.to_string())]).count()).sum();
    assert_eq!(recorded, THREADS as u64 * PER_THREAD);
    assert_eq!(r.gauge("depth", &[]).get(), 0);
    // 4 hit counters + 4 timers + 1 gauge.
    assert_eq!(r.len(), 9);
}

#[test]
fn concurrent_merge_preserves_totals() {
    let target = Arc::new(Histogram::new());
    let sources: Vec<Arc<Histogram>> = (0..THREADS)
        .map(|t| {
            let h = Histogram::new();
            for i in 0..PER_THREAD {
                h.record(i * (t as u64 + 1));
            }
            Arc::new(h)
        })
        .collect();
    std::thread::scope(|s| {
        for src in &sources {
            let target = Arc::clone(&target);
            let src = Arc::clone(src);
            s.spawn(move || target.merge(&src));
        }
    });
    assert_eq!(target.count(), THREADS as u64 * PER_THREAD);
    let expected_sum: u64 = sources.iter().map(|h| h.sum()).sum();
    assert_eq!(target.sum(), expected_sum);
}

#[test]
fn concurrent_records_and_merges_conserve_counts() {
    // Recorders and mergers run at the same time: the target must end up
    // with exactly every sample from both populations, no matter how the
    // bucket updates interleave.
    let target = Arc::new(Histogram::new());
    let sources: Vec<Arc<Histogram>> = (0..THREADS)
        .map(|t| {
            let h = Histogram::new();
            for i in 0..PER_THREAD {
                h.record(i.wrapping_mul(t as u64 + 7) % 500_000);
            }
            Arc::new(h)
        })
        .collect();
    std::thread::scope(|s| {
        for src in &sources {
            let target = Arc::clone(&target);
            let src = Arc::clone(src);
            s.spawn(move || target.merge(&src));
        }
        for t in 0..THREADS {
            let target = Arc::clone(&target);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    target.record((i * 17 + t as u64) % 500_000);
                }
            });
        }
    });
    let expected = 2 * THREADS as u64 * PER_THREAD;
    assert_eq!(target.count(), expected);
    let bucket_total: u64 = target.nonzero_buckets().iter().map(|&(_, n)| n).sum();
    assert_eq!(bucket_total, expected);
}

#[test]
fn slow_log_concurrent_records_and_snapshots() {
    // Writers offer distinct keys while snapshotters read continuously:
    // every snapshot must be internally consistent (sorted, bounded, no
    // torn entries where key and payload disagree), and the final state
    // must hold exactly the top-capacity keys.
    const CAPACITY: usize = 16;
    let log = Arc::new(SlowLog::<u64>::new(CAPACITY));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let log = Arc::clone(&log);
            s.spawn(move || {
                for i in 0..2_000u64 {
                    // Unique key per (thread, i); payload mirrors the key
                    // so snapshots can check for tearing.
                    let key = i * THREADS as u64 + t as u64 + 1;
                    log.record(key, key);
                }
            });
        }
        for _ in 0..2 {
            let log = Arc::clone(&log);
            s.spawn(move || {
                for _ in 0..500 {
                    let snap = log.snapshot();
                    assert!(snap.len() <= CAPACITY);
                    for w in snap.windows(2) {
                        assert!(w[0].0 >= w[1].0, "snapshot not sorted slowest-first");
                    }
                    for (k, v) in &snap {
                        assert_eq!(k, v, "torn slow-log entry");
                    }
                }
            });
        }
    });
    let snap = log.snapshot();
    assert_eq!(snap.len(), CAPACITY);
    // The largest keys overall are 2000*THREADS down to
    // 2000*THREADS - CAPACITY + 1 — exactly what must have been kept.
    let max = 1_999 * THREADS as u64 + THREADS as u64; // i=1999, t=THREADS-1
    let want: Vec<u64> = (0..CAPACITY as u64).map(|d| max - d).collect();
    let got: Vec<u64> = snap.iter().map(|&(k, _)| k).collect();
    assert_eq!(got, want);
}

fn make_trace(tag: &str) -> Arc<trass_obs::QueryTrace> {
    let ctx = TraceCtx::enabled();
    let mut root = ctx.root("test");
    root.set_label("tag", tag);
    root.finish();
    Arc::new(ctx.finish().expect("enabled ctx yields a trace"))
}

#[test]
fn flight_recorder_concurrent_pushes_and_snapshots() {
    const CAPACITY: usize = 8;
    let rec = Arc::new(FlightRecorder::new(CAPACITY));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let rec = Arc::clone(&rec);
            s.spawn(move || {
                for i in 0..300 {
                    rec.push(make_trace(&format!("{t}-{i}")));
                }
            });
        }
        for _ in 0..2 {
            let rec = Arc::clone(&rec);
            s.spawn(move || {
                for _ in 0..500 {
                    let snap = rec.snapshot();
                    assert!(snap.len() <= CAPACITY, "ring exceeded capacity");
                    assert!(rec.len() <= CAPACITY);
                }
            });
        }
    });
    // Ring stabilizes at exactly capacity once enough traces were pushed.
    assert_eq!(rec.len(), CAPACITY);
    assert_eq!(rec.snapshot().len(), CAPACITY);
}

#[test]
fn spans_record_under_contention() {
    let r = Arc::new(Registry::new());
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let r = Arc::clone(&r);
            s.spawn(move || {
                for _ in 0..500 {
                    let span = Span::enter(&r, "scan");
                    span.finish();
                }
            });
        }
    });
    let h = r.timer(trass_obs::STAGE_HISTOGRAM, &[("stage", "scan")]);
    assert_eq!(h.count(), THREADS as u64 * 500);
}
