//! Model-based fuzzing of the LSM store: random operation sequences
//! (put / delete / flush / compact / reopen) are applied both to the store
//! and to a `BTreeMap` reference model; every observation (gets, full and
//! partial scans) must agree. This is the test that catches merge-order,
//! tombstone, and recovery bugs that unit tests miss.

use proptest::prelude::*;
use std::collections::BTreeMap;
use trass_kv::{KeyRange, LsmStore, StoreOptions};

#[derive(Debug, Clone)]
enum Op {
    Put(u16, u8),
    Delete(u16),
    Flush,
    Compact,
    Scan(u16, u16),
    Get(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 512, v)),
        2 => any::<u16>().prop_map(|k| Op::Delete(k % 512)),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
        2 => (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::Scan(a % 512, b % 512)),
        2 => any::<u16>().prop_map(|k| Op::Get(k % 512)),
    ]
}

fn key_bytes(k: u16) -> Vec<u8> {
    format!("key-{k:05}").into_bytes()
}

fn value_bytes(v: u8) -> Vec<u8> {
    format!("value-{v:03}").into_bytes()
}

fn tiny_store() -> LsmStore {
    LsmStore::open(StoreOptions {
        memtable_bytes: 512, // force frequent flushes
        block_size: 128,     // many small blocks
        compaction_threshold: 3,
        block_cache_bytes: 4096, // tiny cache, heavy eviction
        ..StoreOptions::in_memory()
    })
    .expect("open")
}

fn check_agreement(store: &LsmStore, model: &BTreeMap<Vec<u8>, Vec<u8>>, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Scan(a, b) => {
                let (lo, hi) = if a <= b { (*a, *b) } else { (*b, *a) };
                let range = KeyRange::new(key_bytes(lo), key_bytes(hi));
                let got: Vec<(Vec<u8>, Vec<u8>)> = store
                    .scan(range)
                    .expect("scan")
                    .into_iter()
                    .map(|e| (e.key.to_vec(), e.value.to_vec()))
                    .collect();
                let want: Vec<(Vec<u8>, Vec<u8>)> = model
                    .range(key_bytes(lo)..key_bytes(hi))
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                assert_eq!(got, want, "scan [{lo}, {hi}) diverged");
            }
            Op::Get(k) => {
                let got = store.get(&key_bytes(*k)).expect("get").map(|b| b.to_vec());
                let want = model.get(&key_bytes(*k)).cloned();
                assert_eq!(got, want, "get {k} diverged");
            }
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn store_agrees_with_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let store = tiny_store();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    store.put(key_bytes(*k), value_bytes(*v)).expect("put");
                    model.insert(key_bytes(*k), value_bytes(*v));
                }
                Op::Delete(k) => {
                    store.delete(key_bytes(*k)).expect("delete");
                    model.remove(&key_bytes(*k));
                }
                Op::Flush => store.flush().expect("flush"),
                Op::Compact => store.compact().expect("compact"),
                Op::Scan(a, b) => {
                    check_agreement(&store, &model, &[Op::Scan(*a, *b)]);
                }
                Op::Get(k) => {
                    check_agreement(&store, &model, &[Op::Get(*k)]);
                }
            }
        }
        // Final full-scan agreement.
        let got: Vec<Vec<u8>> = store
            .scan(KeyRange::all())
            .expect("scan")
            .into_iter()
            .map(|e| e.key.to_vec())
            .collect();
        let want: Vec<Vec<u8>> = model.keys().cloned().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn disk_store_agrees_with_model_across_reopens(
        batches in prop::collection::vec(prop::collection::vec(op_strategy(), 1..60), 1..4),
        case_id in any::<u64>(),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "trass-fuzz-{}-{case_id}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let opts = StoreOptions {
            memtable_bytes: 512,
            block_size: 128,
            compaction_threshold: 3,
            ..StoreOptions::at_dir(&dir)
        };
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for batch in &batches {
            // Each batch runs in a fresh store instance: recovery from
            // manifest + WAL must reconstruct exactly the model state.
            let store = LsmStore::open(opts.clone()).expect("open");
            let got: Vec<Vec<u8>> = store
                .scan(KeyRange::all())
                .expect("scan")
                .into_iter()
                .map(|e| e.key.to_vec())
                .collect();
            let want: Vec<Vec<u8>> = model.keys().cloned().collect();
            prop_assert_eq!(got, want, "state lost across reopen");
            for op in batch {
                match op {
                    Op::Put(k, v) => {
                        store.put(key_bytes(*k), value_bytes(*v)).expect("put");
                        model.insert(key_bytes(*k), value_bytes(*v));
                    }
                    Op::Delete(k) => {
                        store.delete(key_bytes(*k)).expect("delete");
                        model.remove(&key_bytes(*k));
                    }
                    Op::Flush => store.flush().expect("flush"),
                    Op::Compact => store.compact().expect("compact"),
                    other => check_agreement(&store, &model, std::slice::from_ref(other)),
                }
            }
            // Drop without flush: the WAL carries the tail.
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
