//! The parallel-scan ordering contract: for any shard count, dataset, and
//! range set, `scan_ranges` over a multi-threaded cluster returns the
//! exact byte sequence the sequential cluster produces. The query layer's
//! determinism guarantee stands on this.

use proptest::prelude::*;
use trass_kv::{Cluster, ClusterOptions, Entry, FilterDecision, KeyRange, StoreOptions};

fn key(shard: u8, body: u16) -> Vec<u8> {
    let mut k = vec![shard];
    k.extend_from_slice(&body.to_be_bytes());
    k
}

fn cluster(shards: u8, scan_threads: usize) -> Cluster {
    Cluster::open(ClusterOptions {
        shards,
        store: StoreOptions { memtable_bytes: 1 << 12, ..StoreOptions::in_memory() },
        parallel_scans: true,
        scan_threads,
        registry: None,
    })
    .expect("open cluster")
}

fn keep_all(_k: &[u8], _v: &[u8]) -> FilterDecision {
    FilterDecision::Keep
}

/// Loads the same rows into both clusters.
fn load(clusters: &[&Cluster], rows: &[(u8, u16)]) {
    for c in clusters {
        for &(shard, body) in rows {
            c.put(key(shard, body), format!("v-{shard}-{body}")).expect("put");
        }
        c.flush().expect("flush");
    }
}

fn bytes_of(entries: &[Entry]) -> Vec<(Vec<u8>, Vec<u8>)> {
    entries.iter().map(|e| (e.key.to_vec(), e.value.to_vec())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Parallel and sequential scans agree byte-for-byte, in order, for
    /// random shard counts, row sets, and (possibly overlapping,
    /// possibly empty, possibly cross-shard) range sets.
    #[test]
    fn parallel_scan_matches_sequential_bytes(
        shards in 1u8..=8,
        rows in proptest::collection::vec((0u8..8, any::<u16>()), 0..200),
        ranges in proptest::collection::vec((0u8..8, any::<u16>(), any::<u16>()), 0..12),
        threads in 2usize..=8,
    ) {
        let rows: Vec<(u8, u16)> =
            rows.into_iter().map(|(s, b)| (s % shards, b)).collect();
        let sequential = cluster(shards, 1);
        let parallel = cluster(shards, threads);
        load(&[&sequential, &parallel], &rows);

        let key_ranges: Vec<KeyRange> = ranges
            .iter()
            .map(|&(s, a, b)| {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                KeyRange::new(key(s % shards, lo), key(s % shards, hi))
            })
            .chain(std::iter::once(KeyRange::all()))
            .collect();

        let want = sequential.scan_ranges(&key_ranges, &keep_all).expect("sequential scan");
        let got = parallel.scan_ranges(&key_ranges, &keep_all).expect("parallel scan");
        prop_assert_eq!(bytes_of(&want), bytes_of(&got));
    }
}

/// Stress test for the sanitizer job: many queries race over one parallel
/// cluster while a writer keeps mutating, exercising the pool's claim
/// cursor, the per-shard metric handles, and scan snapshots under real
/// contention. Assertions are about self-consistency (sorted unique keys
/// per shard), since results race the writer by design.
#[test]
fn concurrent_parallel_scans_stress() {
    let c = cluster(4, 4);
    for shard in 0..4u8 {
        for body in 0..300u16 {
            c.put(key(shard, body), "seed").expect("put");
        }
    }
    c.flush().expect("flush");

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let stop = &stop;
        let c = &c;
        s.spawn(move || {
            for round in 0..40u16 {
                for shard in 0..4u8 {
                    c.put(key(shard, 1000 + round), "hot").expect("put");
                }
            }
            stop.store(true, std::sync::atomic::Ordering::SeqCst);
        });
        for _ in 0..3 {
            s.spawn(move || {
                let ranges: Vec<KeyRange> = (0..4u8).map(|s| KeyRange::prefix(vec![s])).collect();
                loop {
                    let done = stop.load(std::sync::atomic::Ordering::SeqCst);
                    let entries = c.scan_ranges(&ranges, &keep_all).expect("scan");
                    // Results concatenate shard scans in shard order; keys
                    // within the whole result must be strictly increasing
                    // (shard prefix leads every key).
                    for w in entries.windows(2) {
                        assert!(
                            w[0].key < w[1].key,
                            "out-of-order or duplicate keys in parallel scan"
                        );
                    }
                    assert!(entries.len() >= 1200, "lost seeded rows");
                    if done {
                        break;
                    }
                }
            });
        }
    });
}
