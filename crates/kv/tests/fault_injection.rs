//! Fault-injection tests: corrupt on-disk state must surface as clean
//! `KvError`s — never panics, never silently wrong data.

use proptest::prelude::*;
use trass_kv::{KeyRange, LsmStore, StoreOptions};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("trass-fault-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Builds a store with data on disk and returns its directory.
fn build_disk_store(tag: &str) -> std::path::PathBuf {
    let dir = temp_dir(tag);
    let store = LsmStore::open(StoreOptions {
        memtable_bytes: 2 << 10,
        block_size: 256,
        ..StoreOptions::at_dir(&dir)
    })
    .expect("open");
    for i in 0..500u32 {
        store.put(format!("key-{i:06}"), format!("value-{i:06}")).expect("put");
    }
    store.flush().expect("flush");
    drop(store);
    dir
}

fn sst_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out: Vec<_> = std::fs::read_dir(dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "sst"))
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flipping any byte of any SSTable either fails at open or fails at
    /// read/scan — but never panics and never yields wrong values for keys
    /// whose blocks are intact.
    #[test]
    fn random_sst_corruption_is_detected(offset_seed in any::<u64>(), bit in 0u8..8) {
        let dir = build_disk_store(&format!("sst-{offset_seed}-{bit}"));
        let files = sst_files(&dir);
        prop_assume!(!files.is_empty());
        let victim = &files[(offset_seed as usize) % files.len()];
        let mut bytes = std::fs::read(victim).expect("read sst");
        let pos = (offset_seed as usize) % bytes.len();
        bytes[pos] ^= 1 << bit;
        std::fs::write(victim, &bytes).expect("write sst");

        match LsmStore::open(StoreOptions::at_dir(&dir)) {
            Err(_) => {} // detected at open (index/bloom/footer damage)
            Ok(store) => {
                // Open succeeded: damage sits in a data block. Every
                // operation must either succeed with *correct* data or
                // return an error.
                for i in (0..500u32).step_by(37) {
                    let key = format!("key-{i:06}");
                    match store.get(key.as_bytes()) {
                        Ok(Some(v)) => {
                            let expected = format!("value-{i:06}");
                            prop_assert_eq!(
                                v.as_ref(),
                                expected.as_bytes(),
                                "corruption returned wrong data"
                            );
                        }
                        Ok(None) => {
                            // Acceptable only if the flipped byte made the
                            // bloom filter drop the key — but bloom bytes
                            // are CRC-protected, so a missing key means the
                            // block errored somewhere else first. Verify a
                            // scan reports the corruption.
                            let scan: Result<Vec<_>, _> =
                                store.scan(KeyRange::all());
                            prop_assert!(
                                scan.is_err(),
                                "key silently missing without any error"
                            );
                        }
                        Err(_) => {} // detected
                    }
                }
                // Full scans either succeed completely or error.
                if let Ok(entries) = store.scan(KeyRange::all()) {
                    prop_assert_eq!(entries.len(), 500);
                    for e in entries {
                        let k = String::from_utf8(e.key.to_vec()).expect("utf8");
                        let i: u32 = k.trim_start_matches("key-").parse().expect("id");
                        let expected = format!("value-{i:06}");
                        prop_assert_eq!(e.value.as_ref(), expected.as_bytes());
                    }
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Truncating the WAL at any point loses only the tail; everything
    /// recovered must be a prefix-consistent state.
    #[test]
    fn wal_truncation_recovers_prefix(cut_fraction in 0.0f64..1.0) {
        let dir = temp_dir(&format!("wal-{}", (cut_fraction * 1e9) as u64));
        {
            let store = LsmStore::open(StoreOptions::at_dir(&dir)).expect("open");
            for i in 0..200u32 {
                store.put(format!("key-{i:06}"), format!("v{i}")).expect("put");
            }
            // No flush: everything lives in the WAL.
        }
        let wal_path = dir.join("wal.log");
        let bytes = std::fs::read(&wal_path).expect("read wal");
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        std::fs::write(&wal_path, &bytes[..cut]).expect("truncate");

        let store = LsmStore::open(StoreOptions::at_dir(&dir)).expect("recover");
        let entries = store.scan(KeyRange::all()).expect("scan");
        // Recovered rows must be exactly keys 0..n for some n (writes were
        // sequential, so recovery is a prefix).
        for (i, e) in entries.iter().enumerate() {
            let expected = format!("key-{i:06}");
            prop_assert_eq!(
                e.key.as_ref(),
                expected.as_bytes(),
                "recovery produced a non-prefix state"
            );
        }
        prop_assert!(entries.len() <= 200);
        std::fs::remove_dir_all(&dir).ok();
    }
}
