//! Concurrency tests: readers and writers racing on one store and across
//! a cluster. The store promises linearizable point reads and scans that
//! observe some consistent prefix of the write history.

use std::sync::atomic::{AtomicBool, Ordering};
use trass_kv::{Cluster, ClusterOptions, KeyRange, LsmStore, StoreOptions};

fn small_store() -> LsmStore {
    LsmStore::open(StoreOptions {
        memtable_bytes: 4 << 10,
        compaction_threshold: 4,
        ..StoreOptions::in_memory()
    })
    .expect("open")
}

#[test]
fn concurrent_writers_disjoint_keyspaces() {
    let store = small_store();
    crossbeam::thread::scope(|s| {
        for t in 0..4u32 {
            let store = &store;
            s.spawn(move |_| {
                for i in 0..2_000u32 {
                    let key = format!("w{t}-{i:06}");
                    store.put(key, format!("v{t}-{i}")).expect("put");
                }
            });
        }
    })
    .unwrap();
    assert_eq!(store.scan(KeyRange::all()).unwrap().len(), 8_000);
    for t in 0..4u32 {
        let n = store.scan(KeyRange::prefix(format!("w{t}-").into_bytes())).unwrap().len();
        assert_eq!(n, 2_000, "writer {t} lost rows");
    }
}

#[test]
fn readers_race_writers_without_tearing() {
    let store = small_store();
    let stop = AtomicBool::new(false);
    crossbeam::thread::scope(|s| {
        // Writer: monotone versions under contended keys.
        s.spawn(|_| {
            for round in 0..200u32 {
                for k in 0..50u32 {
                    store.put(format!("key-{k:03}"), format!("{round:06}")).expect("put");
                }
                if round % 20 == 0 {
                    store.flush().expect("flush");
                }
            }
            stop.store(true, Ordering::SeqCst);
        });
        // Readers: every observed value must be a valid version, and scans
        // must never return torn or duplicate keys.
        for _ in 0..3 {
            s.spawn(|_| {
                while !stop.load(Ordering::SeqCst) {
                    let entries = store.scan(KeyRange::all()).expect("scan");
                    let mut last: Option<Vec<u8>> = None;
                    for e in &entries {
                        let v = std::str::from_utf8(&e.value).expect("utf8");
                        let round: u32 = v.parse().expect("version number");
                        assert!(round < 200);
                        if let Some(prev) = &last {
                            assert!(prev < &e.key.to_vec(), "scan out of order");
                        }
                        last = Some(e.key.to_vec());
                    }
                }
            });
        }
    })
    .unwrap();
    let final_entries = store.scan(KeyRange::all()).unwrap();
    assert_eq!(final_entries.len(), 50);
    assert!(final_entries.iter().all(|e| e.value.as_ref() == b"000199"));
}

#[test]
fn cluster_parallel_scans_under_write_load() {
    let cluster = Cluster::open(ClusterOptions {
        shards: 4,
        store: StoreOptions { memtable_bytes: 4 << 10, ..StoreOptions::in_memory() },
        ..ClusterOptions::default()
    })
    .unwrap();
    crossbeam::thread::scope(|s| {
        for shard in 0..4u8 {
            let cluster = &cluster;
            s.spawn(move |_| {
                for i in 0..1_000u32 {
                    let mut key = vec![shard];
                    key.extend_from_slice(format!("k{i:05}").as_bytes());
                    cluster.put(key, "v").expect("put");
                }
            });
        }
        // Concurrent cross-shard scans.
        let cluster = &cluster;
        s.spawn(move |_| {
            for _ in 0..20 {
                let _ = cluster.scan(KeyRange::all()).expect("scan");
            }
        });
    })
    .unwrap();
    assert_eq!(cluster.scan(KeyRange::all()).unwrap().len(), 4_000);
    let counts = cluster.region_entry_counts();
    assert!(counts.iter().all(|&c| c >= 1_000), "counts {counts:?}");
}
