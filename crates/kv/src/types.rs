//! Core key/value types.

use bytes::Bytes;
use std::ops::Bound;

/// One row returned from a scan: key plus value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Row key.
    pub key: Bytes,
    /// Row value.
    pub value: Bytes,
}

impl Entry {
    /// Creates an entry.
    pub fn new(key: impl Into<Bytes>, value: impl Into<Bytes>) -> Self {
        Entry { key: key.into(), value: value.into() }
    }
}

/// A half-open key range `[start, end)`; an unbounded `end` scans to the end
/// of the keyspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRange {
    /// Inclusive start key.
    pub start: Bytes,
    /// Exclusive end key (`None` = unbounded).
    pub end: Option<Bytes>,
}

impl KeyRange {
    /// `[start, end)`.
    pub fn new(start: impl Into<Bytes>, end: impl Into<Bytes>) -> Self {
        let r = KeyRange { start: start.into(), end: Some(end.into()) };
        debug_assert!(r.end.as_ref().map_or(true, |e| *e >= r.start), "inverted key range");
        r
    }

    /// `[start, +∞)`.
    pub fn from(start: impl Into<Bytes>) -> Self {
        KeyRange { start: start.into(), end: None }
    }

    /// The full keyspace.
    pub fn all() -> Self {
        KeyRange { start: Bytes::new(), end: None }
    }

    /// All keys starting with `prefix`.
    pub fn prefix(prefix: impl Into<Bytes>) -> Self {
        let start: Bytes = prefix.into();
        match prefix_upper_bound(&start) {
            Some(end) => KeyRange { start, end: Some(end) },
            None => KeyRange { start, end: None },
        }
    }

    /// Returns `true` when `key` falls inside the range.
    pub fn contains(&self, key: &[u8]) -> bool {
        key >= self.start.as_ref() && self.end.as_ref().map_or(true, |e| key < e.as_ref())
    }

    /// Whether this range and `other` share any key.
    pub fn overlaps(&self, other: &KeyRange) -> bool {
        let self_before = match &self.end {
            Some(e) => e.as_ref() <= other.start.as_ref(),
            None => false,
        };
        let other_before = match &other.end {
            Some(e) => e.as_ref() <= self.start.as_ref(),
            None => false,
        };
        !(self_before || other_before)
    }

    /// The intersection of two ranges (may be empty).
    pub fn intersect(&self, other: &KeyRange) -> KeyRange {
        let start =
            if self.start >= other.start { self.start.clone() } else { other.start.clone() };
        let end = match (&self.end, &other.end) {
            (Some(a), Some(b)) => Some(if a <= b { a.clone() } else { b.clone() }),
            (Some(a), None) => Some(a.clone()),
            (None, Some(b)) => Some(b.clone()),
            (None, None) => None,
        };
        KeyRange { start, end }
    }

    /// Standard-library bound view, for `BTreeMap::range`.
    pub fn bounds(&self) -> (Bound<&[u8]>, Bound<&[u8]>) {
        let lo = Bound::Included(self.start.as_ref());
        let hi = match &self.end {
            Some(e) => Bound::Excluded(e.as_ref()),
            None => Bound::Unbounded,
        };
        (lo, hi)
    }

    /// Returns `true` when the range cannot contain any key.
    pub fn is_empty(&self) -> bool {
        match &self.end {
            Some(e) => {
                e.as_ref() <= self.start.as_ref() && !(e.is_empty() && self.start.is_empty())
            }
            None => false,
        }
    }
}

/// The smallest byte string strictly greater than every string with the
/// given prefix, or `None` when the prefix is all `0xFF` (no upper bound
/// exists).
pub(crate) fn prefix_upper_bound(prefix: &[u8]) -> Option<Bytes> {
    let mut out = prefix.to_vec();
    while let Some(last) = out.last_mut() {
        if *last < 0xFF {
            *last += 1;
            return Some(Bytes::from(out));
        }
        out.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_half_open_semantics() {
        let r = KeyRange::new(&b"b"[..], &b"d"[..]);
        assert!(!r.contains(b"a"));
        assert!(r.contains(b"b"));
        assert!(r.contains(b"c"));
        assert!(!r.contains(b"d"));
    }

    #[test]
    fn unbounded_range() {
        let r = KeyRange::from(&b"m"[..]);
        assert!(r.contains(b"m"));
        assert!(r.contains(&[0xFF, 0xFF]));
        assert!(!r.contains(b"a"));
    }

    #[test]
    fn all_contains_everything() {
        let r = KeyRange::all();
        assert!(r.contains(b""));
        assert!(r.contains(&[0xFF]));
    }

    #[test]
    fn prefix_range_basics() {
        let r = KeyRange::prefix(&b"ab"[..]);
        assert!(r.contains(b"ab"));
        assert!(r.contains(b"abz"));
        assert!(!r.contains(b"ac"));
        assert!(!r.contains(b"aa"));
    }

    #[test]
    fn prefix_range_with_trailing_ff() {
        let r = KeyRange::prefix(&[0x01, 0xFF][..]);
        assert!(r.contains(&[0x01, 0xFF]));
        assert!(r.contains(&[0x01, 0xFF, 0x00]));
        assert!(!r.contains(&[0x02]));
        // All-0xFF prefix has no upper bound.
        let r = KeyRange::prefix(&[0xFF, 0xFF][..]);
        assert!(r.end.is_none());
        assert!(r.contains(&[0xFF, 0xFF, 0x07]));
    }

    #[test]
    fn overlap_cases() {
        let ab = KeyRange::new(&b"a"[..], &b"b"[..]);
        let bc = KeyRange::new(&b"b"[..], &b"c"[..]);
        let ac = KeyRange::new(&b"a"[..], &b"c"[..]);
        assert!(!ab.overlaps(&bc), "touching half-open ranges do not overlap");
        assert!(ab.overlaps(&ac));
        assert!(ac.overlaps(&bc));
        let unbounded = KeyRange::from(&b"b"[..]);
        assert!(unbounded.overlaps(&ac));
        assert!(unbounded.overlaps(&bc));
        assert!(!unbounded.overlaps(&ab), "[b,∞) misses [a,b)");
    }

    #[test]
    fn empty_detection() {
        assert!(KeyRange::new(&b"b"[..], &b"b"[..]).is_empty());
        assert!(!KeyRange::new(&b"b"[..], &b"c"[..]).is_empty());
        assert!(!KeyRange::all().is_empty());
    }

    #[test]
    fn intersect_cases() {
        let ac = KeyRange::new(&b"a"[..], &b"c"[..]);
        let bd = KeyRange::new(&b"b"[..], &b"d"[..]);
        assert_eq!(ac.intersect(&bd), KeyRange::new(&b"b"[..], &b"c"[..]));
        assert_eq!(bd.intersect(&ac), KeyRange::new(&b"b"[..], &b"c"[..]));
        let all = KeyRange::all();
        assert_eq!(all.intersect(&ac), ac);
        let disjoint = KeyRange::new(&b"x"[..], &b"z"[..]);
        assert!(ac.intersect(&disjoint).is_empty());
        let from_b = KeyRange::from(&b"b"[..]);
        assert_eq!(from_b.intersect(&ac), KeyRange::new(&b"b"[..], &b"c"[..]));
    }

    #[test]
    fn prefix_upper_bound_math() {
        assert_eq!(prefix_upper_bound(b"ab").unwrap().as_ref(), b"ac");
        assert_eq!(prefix_upper_bound(&[0x00, 0xFF]).unwrap().as_ref(), &[0x01][..]);
        assert_eq!(prefix_upper_bound(&[0xFF, 0xFF]), None);
    }
}
