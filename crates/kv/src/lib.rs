//! An embedded, log-structured key-value store with HBase-flavoured
//! semantics — the storage substrate TraSS runs on.
//!
//! The paper instantiates TraSS on HBase (§VI). What TraSS actually needs
//! from its store is a small, well-defined contract:
//!
//! * **ordered byte keys** with efficient **range scans** (rowkey scans),
//! * **server-side filter push-down** ("coprocessors"): a predicate applied
//!   during the scan, inside the region, so filtered rows never cross the
//!   wire,
//! * **regions**: range partitions of the keyspace spread over region
//!   servers, addressed by a hash *shard* prefix in the rowkey (§IV-E),
//! * **I/O accounting**, because the paper's headline numbers are I/O
//!   reductions.
//!
//! This crate implements that contract from scratch as a miniature LSM
//! tree: a write-ahead log ([`wal`]), a sorted memtable ([`memtable`]),
//! block-structured SSTables with bloom filters and CRC-protected blocks
//! ([`sstable`], [`block`], [`bloom`], [`crc`]), size-tiered compaction, a
//! merging iterator ([`merge`]), and a sharded [`cluster::Cluster`] that
//! emulates the multi-node deployment of the evaluation. Both disk-backed
//! and fully in-memory operation are supported.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod bloom;
pub mod cache;
pub mod cluster;
mod codec;
pub mod crc;
mod error;
pub mod filter;
pub mod memtable;
pub mod merge;
pub mod metrics;
pub mod sstable;
pub mod store;
mod types;
pub mod wal;

pub use cluster::{Cluster, ClusterOptions};
pub use error::{KvError, Result};
pub use filter::{FilterDecision, ScanFilter};
pub use metrics::{IoMetrics, MetricsSnapshot};
pub use store::{LsmStore, StoreOptions};
pub use types::{Entry, KeyRange};
