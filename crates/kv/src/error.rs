//! Error type for the key-value store.

use std::fmt;
use std::io;

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, KvError>;

/// Errors surfaced by the store.
#[derive(Debug)]
pub enum KvError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// A persisted structure failed its checksum or layout validation.
    Corruption {
        /// What was being read.
        context: String,
    },
    /// The store was opened or used in an invalid way.
    InvalidUsage {
        /// Explanation of the misuse.
        message: String,
    },
}

impl KvError {
    pub(crate) fn corruption(context: impl Into<String>) -> Self {
        KvError::Corruption { context: context.into() }
    }

    pub(crate) fn invalid(message: impl Into<String>) -> Self {
        KvError::InvalidUsage { message: message.into() }
    }
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::Io(e) => write!(f, "I/O error: {e}"),
            KvError::Corruption { context } => write!(f, "corruption detected: {context}"),
            KvError::InvalidUsage { message } => write!(f, "invalid usage: {message}"),
        }
    }
}

impl std::error::Error for KvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for KvError {
    fn from(e: io::Error) -> Self {
        KvError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = KvError::corruption("bad block");
        assert!(e.to_string().contains("bad block"));
        let e = KvError::invalid("reopened");
        assert!(e.to_string().contains("reopened"));
        let e: KvError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
    }
}
