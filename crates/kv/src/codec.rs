//! Checked fixed-width reads for on-disk formats.
//!
//! Every decoder in this crate parses untrusted bytes (a torn WAL, a
//! bit-flipped SSTable). These helpers replace `try_into().expect(..)`
//! slicing with reads that surface short input as [`KvError::Corruption`]
//! instead of panicking, so a damaged file degrades into an error the
//! caller can report.

use crate::error::{KvError, Result};

/// Reads a little-endian `u32` at `buf[at..at + 4]`.
pub(crate) fn u32_le(buf: &[u8], at: usize, what: &str) -> Result<u32> {
    match at.checked_add(4).and_then(|end| buf.get(at..end)) {
        Some(b) => Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        None => Err(KvError::corruption(format!("{what}: truncated u32 at offset {at}"))),
    }
}

/// Reads a little-endian `u64` at `buf[at..at + 8]`.
pub(crate) fn u64_le(buf: &[u8], at: usize, what: &str) -> Result<u64> {
    match at.checked_add(8).and_then(|end| buf.get(at..end)) {
        Some(b) => Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])),
        None => Err(KvError::corruption(format!("{what}: truncated u64 at offset {at}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_in_bounds() {
        let buf = 0xDEADBEEFu32.to_le_bytes();
        assert_eq!(u32_le(&buf, 0, "t").unwrap(), 0xDEADBEEF);
        let buf = 0x0123_4567_89AB_CDEFu64.to_le_bytes();
        assert_eq!(u64_le(&buf, 0, "t").unwrap(), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn short_input_is_corruption_not_panic() {
        assert!(matches!(u32_le(&[1, 2, 3], 0, "t"), Err(KvError::Corruption { .. })));
        assert!(matches!(u64_le(&[0; 8], 1, "t"), Err(KvError::Corruption { .. })));
        // Offsets near usize::MAX must not overflow the slice bound.
        assert!(matches!(u32_le(&[0; 4], usize::MAX - 1, "t"), Err(KvError::Corruption { .. })));
    }
}
