//! SSTable data blocks.
//!
//! A block is the unit of I/O and of checksum protection. Layout:
//!
//! ```text
//! entry*  := [flag: u8][klen: u32][vlen: u32][key][value]
//! trailer := [n_entries: u32][crc32c: u32 over all preceding bytes]
//! ```
//!
//! `flag` distinguishes puts from tombstones (deletes must survive into
//! SSTables so compaction can shadow older values). Entries within a block
//! are sorted by key, enabling binary search.

use crate::crc::crc32c;
use crate::error::{KvError, Result};
use bytes::Bytes;

const FLAG_PUT: u8 = 0;
const FLAG_TOMBSTONE: u8 = 1;

/// One decoded block entry: a key and either a value or a tombstone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockEntry {
    /// Entry key.
    pub key: Bytes,
    /// `None` marks a tombstone.
    pub value: Option<Bytes>,
}

/// Builds an encoded block from sorted entries.
#[derive(Debug, Default)]
pub struct BlockBuilder {
    buf: Vec<u8>,
    n_entries: u32,
    last_key: Vec<u8>,
}

impl BlockBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry. Keys must arrive in strictly increasing order.
    ///
    /// # Panics
    /// Panics in debug builds on out-of-order keys.
    pub fn add(&mut self, key: &[u8], value: Option<&[u8]>) {
        debug_assert!(
            self.n_entries == 0 || key > self.last_key.as_slice(),
            "block entries must be strictly increasing"
        );
        let (flag, val) = match value {
            Some(v) => (FLAG_PUT, v),
            None => (FLAG_TOMBSTONE, &[][..]),
        };
        self.buf.push(flag);
        self.buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&(val.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(key);
        self.buf.extend_from_slice(val);
        self.n_entries += 1;
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
    }

    /// Current encoded size, including the trailer that `finish` will add.
    pub fn encoded_size(&self) -> usize {
        self.buf.len() + 8
    }

    /// Number of entries added so far.
    pub fn len(&self) -> u32 {
        self.n_entries
    }

    /// True when no entries were added.
    pub fn is_empty(&self) -> bool {
        self.n_entries == 0
    }

    /// Seals the block, appending the trailer.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf.extend_from_slice(&self.n_entries.to_le_bytes());
        let crc = crc32c(&self.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.buf
    }
}

/// A decoded, validated block.
#[derive(Debug, Clone)]
pub struct Block {
    entries: Vec<BlockEntry>,
}

impl Block {
    /// Decodes and checksum-validates an encoded block.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < 8 {
            return Err(KvError::corruption("block shorter than trailer"));
        }
        let (body, _) = buf.split_at(buf.len() - 4);
        let stored_crc = crate::codec::u32_le(buf, buf.len() - 4, "block trailer")?;
        if crc32c(body) != stored_crc {
            return Err(KvError::corruption("block checksum mismatch"));
        }
        let (payload, _) = body.split_at(body.len() - 4);
        let n_entries = crate::codec::u32_le(body, body.len() - 4, "block entry count")? as usize;

        let mut entries = Vec::with_capacity(n_entries);
        let mut pos = 0usize;
        for _ in 0..n_entries {
            if pos + 9 > payload.len() {
                return Err(KvError::corruption("block entry header truncated"));
            }
            let flag = payload[pos];
            let klen = crate::codec::u32_le(payload, pos + 1, "block entry klen")? as usize;
            let vlen = crate::codec::u32_le(payload, pos + 5, "block entry vlen")? as usize;
            pos += 9;
            let end = pos
                .checked_add(klen)
                .and_then(|e| e.checked_add(vlen))
                .ok_or_else(|| KvError::corruption("block entry length overflow"))?;
            if end > payload.len() {
                return Err(KvError::corruption("block entry body truncated"));
            }
            let key = Bytes::copy_from_slice(&payload[pos..pos + klen]);
            let value = match flag {
                FLAG_PUT => Some(Bytes::copy_from_slice(&payload[pos + klen..end])),
                FLAG_TOMBSTONE if vlen == 0 => None,
                _ => return Err(KvError::corruption("unknown block entry flag")),
            };
            entries.push(BlockEntry { key, value });
            pos = end;
        }
        if pos != payload.len() {
            return Err(KvError::corruption("trailing bytes in block payload"));
        }
        Ok(Block { entries })
    }

    /// The entries, sorted by key.
    pub fn entries(&self) -> &[BlockEntry] {
        &self.entries
    }

    /// Binary-searches for an exact key.
    pub fn get(&self, key: &[u8]) -> Option<&BlockEntry> {
        self.entries.binary_search_by(|e| e.key.as_ref().cmp(key)).ok().map(|i| &self.entries[i])
    }

    /// Index of the first entry with key `>= key`.
    pub fn lower_bound(&self, key: &[u8]) -> usize {
        self.entries.partition_point(|e| e.key.as_ref() < key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_sample() -> Vec<u8> {
        let mut b = BlockBuilder::new();
        b.add(b"apple", Some(b"red"));
        b.add(b"banana", Some(b"yellow"));
        b.add(b"cherry", None); // tombstone
        b.add(b"date", Some(b""));
        b.finish()
    }

    #[test]
    fn roundtrip() {
        let block = Block::decode(&build_sample()).unwrap();
        let e = block.entries();
        assert_eq!(e.len(), 4);
        assert_eq!(e[0].key.as_ref(), b"apple");
        assert_eq!(e[0].value.as_deref(), Some(&b"red"[..]));
        assert_eq!(e[2].value, None, "tombstone preserved");
        assert_eq!(e[3].value.as_deref(), Some(&b""[..]), "empty value is not a tombstone");
    }

    #[test]
    fn get_and_lower_bound() {
        let block = Block::decode(&build_sample()).unwrap();
        assert_eq!(block.get(b"banana").unwrap().value.as_deref(), Some(&b"yellow"[..]));
        assert!(block.get(b"blueberry").is_none());
        assert_eq!(block.lower_bound(b"a"), 0);
        assert_eq!(block.lower_bound(b"b"), 1);
        assert_eq!(block.lower_bound(b"banana"), 1);
        assert_eq!(block.lower_bound(b"zzz"), 4);
    }

    #[test]
    fn corruption_detected() {
        let mut buf = build_sample();
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        assert!(matches!(Block::decode(&buf), Err(KvError::Corruption { .. })));
    }

    #[test]
    fn truncated_block_rejected() {
        let buf = build_sample();
        for cut in [0, 4, 7, buf.len() - 1] {
            assert!(Block::decode(&buf[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn empty_block_roundtrip() {
        let buf = BlockBuilder::new().finish();
        let block = Block::decode(&buf).unwrap();
        assert!(block.entries().is_empty());
        assert_eq!(block.lower_bound(b"x"), 0);
    }

    #[test]
    fn encoded_size_is_exact() {
        let mut b = BlockBuilder::new();
        b.add(b"k1", Some(b"v1"));
        b.add(b"k2", None);
        let predicted = b.encoded_size();
        assert_eq!(b.finish().len(), predicted);
    }
}
