//! I/O and scan accounting.
//!
//! The paper's central claims are *I/O reductions* (rows retrieved, bytes
//! scanned), so the store counts everything relevant with relaxed atomics:
//! cheap enough to stay on in production paths, precise enough to
//! regenerate Figures 9–11.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative I/O counters. Cheap to share (`&IoMetrics`) across scans and
/// threads; all methods use relaxed atomics.
#[derive(Debug, Default)]
pub struct IoMetrics {
    blocks_read: AtomicU64,
    bytes_read: AtomicU64,
    entries_scanned: AtomicU64,
    entries_returned: AtomicU64,
    bloom_probes: AtomicU64,
    bloom_skips: AtomicU64,
    range_scans: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

impl IoMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_block_read(&self, bytes: usize) {
        self.blocks_read.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_bloom_probe(&self) {
        self.bloom_probes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_bloom_skip(&self) {
        self.bloom_skips.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_entry_scanned(&self) {
        self.entries_scanned.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_entry_returned(&self) {
        self.entries_returned.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_range_scan(&self) {
        self.range_scans.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Data blocks fetched from SSTables.
    pub fn blocks_read(&self) -> u64 {
        self.blocks_read.load(Ordering::Relaxed)
    }

    /// Bytes fetched from SSTables.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Rows visited by scans (before filter push-down).
    pub fn entries_scanned(&self) -> u64 {
        self.entries_scanned.load(Ordering::Relaxed)
    }

    /// Rows that passed push-down filters and were returned to the client.
    pub fn entries_returned(&self) -> u64 {
        self.entries_returned.load(Ordering::Relaxed)
    }

    /// Bloom-filter membership tests performed by point lookups.
    pub fn bloom_probes(&self) -> u64 {
        self.bloom_probes.load(Ordering::Relaxed)
    }

    /// Point lookups short-circuited by the bloom filter.
    pub fn bloom_skips(&self) -> u64 {
        self.bloom_skips.load(Ordering::Relaxed)
    }

    /// Number of key-range scans executed.
    pub fn range_scans(&self) -> u64 {
        self.range_scans.load(Ordering::Relaxed)
    }

    /// Block reads served from the block cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Cache lookups that fell through to storage (only counted when a
    /// cache is configured).
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Takes a point-in-time copy.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            blocks_read: self.blocks_read(),
            bytes_read: self.bytes_read(),
            entries_scanned: self.entries_scanned(),
            entries_returned: self.entries_returned(),
            bloom_probes: self.bloom_probes(),
            bloom_skips: self.bloom_skips(),
            range_scans: self.range_scans(),
            cache_hits: self.cache_hits(),
            cache_misses: self.cache_misses(),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.blocks_read.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.entries_scanned.store(0, Ordering::Relaxed);
        self.entries_returned.store(0, Ordering::Relaxed);
        self.bloom_probes.store(0, Ordering::Relaxed);
        self.bloom_skips.store(0, Ordering::Relaxed);
        self.range_scans.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
    }
}

/// Plain-data copy of [`IoMetrics`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Data blocks fetched.
    pub blocks_read: u64,
    /// Bytes fetched.
    pub bytes_read: u64,
    /// Rows visited by scans.
    pub entries_scanned: u64,
    /// Rows returned to clients.
    pub entries_returned: u64,
    /// Bloom-filter membership tests.
    pub bloom_probes: u64,
    /// Bloom-filter short circuits.
    pub bloom_skips: u64,
    /// Range scans executed.
    pub range_scans: u64,
    /// Block reads served from the cache.
    pub cache_hits: u64,
    /// Cache lookups that fell through to storage.
    pub cache_misses: u64,
}

impl MetricsSnapshot {
    /// Component-wise difference (`self - earlier`), saturating at zero.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            blocks_read: self.blocks_read.saturating_sub(earlier.blocks_read),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            entries_scanned: self.entries_scanned.saturating_sub(earlier.entries_scanned),
            entries_returned: self.entries_returned.saturating_sub(earlier.entries_returned),
            bloom_probes: self.bloom_probes.saturating_sub(earlier.bloom_probes),
            bloom_skips: self.bloom_skips.saturating_sub(earlier.bloom_skips),
            range_scans: self.range_scans.saturating_sub(earlier.range_scans),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
        }
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            blocks_read: self.blocks_read + other.blocks_read,
            bytes_read: self.bytes_read + other.bytes_read,
            entries_scanned: self.entries_scanned + other.entries_scanned,
            entries_returned: self.entries_returned + other.entries_returned,
            bloom_probes: self.bloom_probes + other.bloom_probes,
            bloom_skips: self.bloom_skips + other.bloom_skips,
            range_scans: self.range_scans + other.range_scans,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
        }
    }

    /// Mirrors this snapshot into absolute-valued registry counters named
    /// `trass_kv_<field>` with the given labels, for Prometheus export.
    /// `IoMetrics` counters are monotone, so repeated publishes keep the
    /// mirrored counters monotone too.
    pub fn publish_to(&self, registry: &trass_obs::Registry, labels: &[(&str, &str)]) {
        for (name, v) in [
            ("trass_kv_blocks_read", self.blocks_read),
            ("trass_kv_bytes_read", self.bytes_read),
            ("trass_kv_entries_scanned", self.entries_scanned),
            ("trass_kv_entries_returned", self.entries_returned),
            ("trass_kv_bloom_probes", self.bloom_probes),
            ("trass_kv_bloom_skips", self.bloom_skips),
            ("trass_kv_range_scans", self.range_scans),
            ("trass_kv_cache_hits", self.cache_hits),
            ("trass_kv_cache_misses", self.cache_misses),
        ] {
            registry.counter(name, labels).set(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = IoMetrics::new();
        m.record_block_read(100);
        m.record_block_read(50);
        m.record_entry_scanned();
        m.record_entry_returned();
        m.record_bloom_probe();
        m.record_bloom_skip();
        m.record_range_scan();
        m.record_cache_hit();
        m.record_cache_miss();
        assert_eq!(m.blocks_read(), 2);
        assert_eq!(m.bytes_read(), 150);
        assert_eq!(m.entries_scanned(), 1);
        assert_eq!(m.entries_returned(), 1);
        assert_eq!(m.bloom_probes(), 1);
        assert_eq!(m.bloom_skips(), 1);
        assert_eq!(m.range_scans(), 1);
        assert_eq!(m.cache_hits(), 1);
        assert_eq!(m.cache_misses(), 1);
    }

    #[test]
    fn snapshot_diff_and_sum() {
        let m = IoMetrics::new();
        m.record_block_read(10);
        let s1 = m.snapshot();
        m.record_block_read(20);
        m.record_entry_scanned();
        let s2 = m.snapshot();
        let d = s2.since(&s1);
        assert_eq!(d.blocks_read, 1);
        assert_eq!(d.bytes_read, 20);
        assert_eq!(d.entries_scanned, 1);
        let sum = d.plus(&s1);
        assert_eq!(sum.bytes_read, 30);
    }

    #[test]
    fn cache_misses_flow_through_snapshot_math() {
        let m = IoMetrics::new();
        m.record_cache_miss();
        m.record_cache_miss();
        let s1 = m.snapshot();
        assert_eq!(s1.cache_misses, 2);
        m.record_cache_miss();
        m.record_bloom_probe();
        let s2 = m.snapshot();
        let d = s2.since(&s1);
        assert_eq!(d.cache_misses, 1);
        assert_eq!(d.bloom_probes, 1);
        assert_eq!(s1.plus(&d), s2);
    }

    #[test]
    fn publish_mirrors_every_field() {
        let m = IoMetrics::new();
        m.record_block_read(64);
        m.record_cache_hit();
        m.record_cache_miss();
        let r = trass_obs::Registry::new();
        m.snapshot().publish_to(&r, &[("shard", "3")]);
        assert_eq!(r.counter("trass_kv_blocks_read", &[("shard", "3")]).get(), 1);
        assert_eq!(r.counter("trass_kv_bytes_read", &[("shard", "3")]).get(), 64);
        assert_eq!(r.counter("trass_kv_cache_hits", &[("shard", "3")]).get(), 1);
        assert_eq!(r.counter("trass_kv_cache_misses", &[("shard", "3")]).get(), 1);
        // One mirrored counter per snapshot field.
        assert_eq!(r.len(), 9);
    }

    #[test]
    fn reset_zeroes() {
        let m = IoMetrics::new();
        m.record_block_read(10);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }
}
