//! CRC32C (Castagnoli) checksum, table-driven software implementation.
//!
//! Protects WAL records and SSTable blocks. Implemented in-repo to keep the
//! dependency set minimal; the slicing-by-1 table version is plenty for the
//! block sizes involved.

/// Precomputed CRC32C table for polynomial 0x82F63B78 (reflected).
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0x82F6_3B78 } else { crc >> 1 };
            }
            *slot = crc;
        }
        t
    })
}

/// Computes the CRC32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = !0u32;
    for &b in data {
        crc = t[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Computes the CRC32C over several buffers, as if concatenated.
pub fn crc32c_parts(parts: &[&[u8]]) -> u32 {
    let t = table();
    let mut crc = !0u32;
    for part in parts {
        for &b in *part {
            crc = t[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 test vectors.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32c(&[]), 0);
    }

    #[test]
    fn parts_equal_concatenation() {
        let data = b"hello world, this is a crc test";
        let whole = crc32c(data);
        let split = crc32c_parts(&[&data[..7], &data[7..20], &data[20..]]);
        assert_eq!(whole, split);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"some block payload".to_vec();
        let before = crc32c(&data);
        data[5] ^= 0x01;
        assert_ne!(before, crc32c(&data));
    }
}
