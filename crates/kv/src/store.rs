//! The LSM store: write path, read path, flush and compaction.

use crate::cache::BlockCache;
use crate::error::{KvError, Result};
use crate::filter::{FilterDecision, KeepAll, ScanFilter};
use crate::memtable::Memtable;
use crate::merge::{MergeItem, MergeIter};
use crate::metrics::IoMetrics;
use crate::sstable::{SsTable, SsTableBuilder};
use crate::types::{Entry, KeyRange};
use crate::wal::Wal;
use bytes::Bytes;
use parking_lot::RwLock;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use trass_obs::{Counter, Histogram, Registry};

/// Tuning knobs for an [`LsmStore`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Data directory. `None` runs fully in memory: no WAL, SSTables held
    /// as byte buffers (used by tests and hermetic benchmarks).
    pub dir: Option<PathBuf>,
    /// Memtable flush threshold in approximate bytes.
    pub memtable_bytes: usize,
    /// SSTable data-block target size in bytes.
    pub block_size: usize,
    /// Bloom filter density.
    pub bloom_bits_per_key: usize,
    /// Number of SSTables that triggers a full compaction.
    pub compaction_threshold: usize,
    /// fsync the WAL on every write.
    pub sync_writes: bool,
    /// Decoded-block cache capacity in bytes (0 disables the cache).
    pub block_cache_bytes: usize,
    /// Observability registry the store reports into. `None` gives the
    /// store a private registry; a [`Cluster`](crate::Cluster) passes one
    /// shared registry to all its regions.
    pub registry: Option<Arc<Registry>>,
    /// Value of the `shard` label on this store's metrics (set by the
    /// cluster; standalone stores emit unlabelled series).
    pub shard_label: Option<String>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            dir: None,
            memtable_bytes: 4 << 20,
            block_size: 4096,
            bloom_bits_per_key: 10,
            compaction_threshold: 8,
            sync_writes: false,
            block_cache_bytes: 8 << 20,
            registry: None,
            shard_label: None,
        }
    }
}

impl StoreOptions {
    /// In-memory store with default tuning.
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// Disk-backed store rooted at `dir`.
    pub fn at_dir(dir: impl Into<PathBuf>) -> Self {
        StoreOptions { dir: Some(dir.into()), ..Self::default() }
    }
}

struct Inner {
    memtable: Memtable,
    wal: Option<Wal>,
    /// SSTables, oldest first (newest last).
    tables: Vec<Arc<SsTable>>,
    /// File name of each SSTable, parallel to `tables` (empty entries for
    /// in-memory stores).
    file_names: Vec<String>,
    next_table_id: u64,
}

/// An embedded log-structured key-value store.
///
/// Thread-safe: reads take a shared lock, writes an exclusive lock. Scans
/// snapshot the table list and stream per-block, holding the shared lock
/// only while merging.
pub struct LsmStore {
    opts: StoreOptions,
    inner: RwLock<Inner>,
    metrics: Arc<IoMetrics>,
    cache: Option<Arc<BlockCache>>,
    registry: Arc<Registry>,
    obs: StoreObs,
}

/// Registry handles for the store's write and maintenance paths, resolved
/// once at open so recording on the hot path is a single atomic add.
struct StoreObs {
    wal_append: Arc<Histogram>,
    flush_seconds: Arc<Histogram>,
    flushes: Arc<Counter>,
    flush_bytes: Arc<Counter>,
    compaction_seconds: Arc<Histogram>,
    compactions: Arc<Counter>,
    compaction_bytes_written: Arc<Counter>,
    compaction_blocks_read: Arc<Counter>,
    compaction_bytes_read: Arc<Counter>,
    compaction_entries_scanned: Arc<Counter>,
}

impl StoreObs {
    fn new(registry: &Registry, shard: Option<&str>) -> StoreObs {
        let labels: Vec<(&str, &str)> = match shard {
            Some(s) => vec![("shard", s)],
            None => Vec::new(),
        };
        StoreObs {
            wal_append: registry.timer("trass_kv_wal_append_seconds", &labels),
            flush_seconds: registry.timer("trass_kv_flush_seconds", &labels),
            flushes: registry.counter("trass_kv_flushes", &labels),
            flush_bytes: registry.counter("trass_kv_flush_bytes", &labels),
            compaction_seconds: registry.timer("trass_kv_compaction_seconds", &labels),
            compactions: registry.counter("trass_kv_compactions", &labels),
            compaction_bytes_written: registry
                .counter("trass_kv_compaction_bytes_written", &labels),
            compaction_blocks_read: registry.counter("trass_kv_compaction_blocks_read", &labels),
            compaction_bytes_read: registry.counter("trass_kv_compaction_bytes_read", &labels),
            compaction_entries_scanned: registry
                .counter("trass_kv_compaction_entries_scanned", &labels),
        }
    }
}

const WAL_FILE: &str = "wal.log";
const MANIFEST_FILE: &str = "MANIFEST";

impl LsmStore {
    /// Opens (or creates) a store, replaying the WAL if one exists.
    pub fn open(opts: StoreOptions) -> Result<Self> {
        let cache = (opts.block_cache_bytes > 0).then(|| BlockCache::new(opts.block_cache_bytes));
        let mut tables = Vec::new();
        let mut file_names: Vec<String> = Vec::new();
        let mut next_table_id = 0u64;
        let mut memtable = Memtable::new();
        let wal = if let Some(dir) = &opts.dir {
            std::fs::create_dir_all(dir)?;
            // Load the manifest's table list, oldest first.
            let manifest = dir.join(MANIFEST_FILE);
            if manifest.exists() {
                let listing = std::fs::read_to_string(&manifest)?;
                for name in listing.lines().filter(|l| !l.is_empty()) {
                    let table = match &cache {
                        Some(c) => SsTable::open_file_cached(&dir.join(name), Arc::clone(c))?,
                        None => SsTable::open_file(&dir.join(name))?,
                    };
                    if let Some(stem) = name.strip_suffix(".sst") {
                        if let Ok(id) = stem.parse::<u64>() {
                            next_table_id = next_table_id.max(id + 1);
                        }
                    }
                    tables.push(table);
                    file_names.push(name.to_string());
                }
            }
            // Replay unflushed writes.
            let wal_path = dir.join(WAL_FILE);
            for (key, value) in Wal::replay(&wal_path)? {
                match value {
                    Some(v) => memtable.put(key, v),
                    None => memtable.delete(key),
                }
            }
            Some(Wal::open_append(&wal_path, opts.sync_writes)?)
        } else {
            None
        };
        let registry = opts.registry.clone().unwrap_or_else(Registry::new_shared);
        let obs = StoreObs::new(&registry, opts.shard_label.as_deref());
        Ok(LsmStore {
            opts,
            inner: RwLock::new(Inner { memtable, wal, tables, file_names, next_table_id }),
            metrics: Arc::new(IoMetrics::new()),
            cache,
            registry,
            obs,
        })
    }

    /// The shared block cache, when enabled.
    pub fn block_cache(&self) -> Option<&Arc<BlockCache>> {
        self.cache.as_ref()
    }

    /// The store's I/O metrics handle.
    pub fn metrics(&self) -> &Arc<IoMetrics> {
        &self.metrics
    }

    /// The registry this store reports durations and maintenance counters
    /// into (shared with the cluster when opened through one).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Mirrors the store's cumulative I/O counters into its registry as
    /// `trass_kv_*` counters (labelled with this store's shard, if any).
    pub fn publish_metrics(&self) {
        let labels: Vec<(&str, &str)> = match self.opts.shard_label.as_deref() {
            Some(s) => vec![("shard", s)],
            None => Vec::new(),
        };
        self.metrics.snapshot().publish_to(&self.registry, &labels);
    }

    /// Writes a key-value pair.
    pub fn put(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Result<()> {
        let (key, value) = (key.into(), value.into());
        {
            let mut inner = self.inner.write();
            if let Some(wal) = &mut inner.wal {
                let t = Instant::now();
                wal.append_put(&key, &value)?;
                self.obs.wal_append.record_duration(t.elapsed());
            }
            inner.memtable.put(key, value);
        }
        self.maybe_flush()
    }

    /// Deletes a key (writes a tombstone).
    pub fn delete(&self, key: impl Into<Bytes>) -> Result<()> {
        let key = key.into();
        {
            let mut inner = self.inner.write();
            if let Some(wal) = &mut inner.wal {
                let t = Instant::now();
                wal.append_delete(&key)?;
                self.obs.wal_append.record_duration(t.elapsed());
            }
            inner.memtable.delete(key);
        }
        self.maybe_flush()
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        let inner = self.inner.read();
        if let Some(v) = inner.memtable.get(key) {
            return Ok(v);
        }
        for table in inner.tables.iter().rev() {
            if let Some(v) = table.get(key, &self.metrics)? {
                return Ok(v);
            }
        }
        Ok(None)
    }

    /// Range scan returning all live entries in `range`.
    pub fn scan(&self, range: KeyRange) -> Result<Vec<Entry>> {
        self.scan_filtered(range, &KeepAll)
    }

    /// Range scan with a push-down filter. Rows the filter skips are
    /// counted as scanned but never materialized; `FilterDecision::Stop`
    /// ends the scan early.
    pub fn scan_filtered(&self, range: KeyRange, filter: &dyn ScanFilter) -> Result<Vec<Entry>> {
        self.metrics.record_range_scan();
        if range.is_empty() {
            return Ok(Vec::new());
        }
        let inner = self.inner.read();
        let mut sources: Vec<Box<dyn Iterator<Item = Result<MergeItem>> + '_>> = Vec::new();
        // Newest first: memtable, then tables newest → oldest.
        sources
            .push(Box::new(inner.memtable.range(&range).map(|(k, v)| Ok((k.clone(), v.clone())))));
        for table in inner.tables.iter().rev() {
            // Scanning under the read guard pins the table set for the
            // whole merge; writers block meanwhile. scan_snapshot is the
            // lock-free path for long scans.
            sources.push(Box::new(
                // trass-lint: allow(lock-across-io)
                table.scan(range.clone(), &self.metrics).map(|r| r.map(|e| (e.key, e.value))),
            ));
        }
        let merged = MergeIter::new(sources)?;
        let mut out = Vec::new();
        for item in merged {
            let (key, value) = item?;
            let Some(value) = value else { continue }; // tombstone
            self.metrics.record_entry_scanned();
            match filter.check(&key, &value) {
                FilterDecision::Keep => {
                    self.metrics.record_entry_returned();
                    out.push(Entry { key, value });
                }
                FilterDecision::Skip => {}
                FilterDecision::Stop => break,
            }
        }
        Ok(out)
    }

    /// Streaming scan over a consistent snapshot: the memtable's matching
    /// range is copied and SSTables are pinned via `Arc`, so iteration
    /// proceeds without holding the store lock and is unaffected by
    /// concurrent writes, flushes, or compactions. Tombstoned rows are
    /// skipped; rows are yielded in key order, newest version wins.
    pub fn scan_snapshot(&self, range: KeyRange) -> Result<SnapshotScan> {
        self.metrics.record_range_scan();
        let (mem_items, tables) = {
            let inner = self.inner.read();
            let mem: Vec<MergeItem> =
                inner.memtable.range(&range).map(|(k, v)| (k.clone(), v.clone())).collect();
            (mem, inner.tables.clone())
        };
        let mut sources: Vec<Box<dyn Iterator<Item = Result<MergeItem>>>> =
            Vec::with_capacity(1 + tables.len());
        sources.push(Box::new(mem_items.into_iter().map(Ok)));
        for table in tables.into_iter().rev() {
            let metrics = Arc::clone(&self.metrics);
            sources.push(Box::new(
                table.scan_owned(range.clone(), metrics).map(|r| r.map(|e| (e.key, e.value))),
            ));
        }
        Ok(SnapshotScan { merged: MergeIter::new(sources)?, metrics: Arc::clone(&self.metrics) })
    }

    /// Flushes the memtable if it exceeds the configured threshold, then
    /// compacts if the table count exceeds its threshold.
    fn maybe_flush(&self) -> Result<()> {
        let needs_flush = {
            let inner = self.inner.read();
            inner.memtable.approx_bytes() >= self.opts.memtable_bytes
        };
        if needs_flush {
            self.flush()?;
        }
        let needs_compact = {
            let inner = self.inner.read();
            inner.tables.len() > self.opts.compaction_threshold
        };
        if needs_compact {
            self.compact()?;
        }
        Ok(())
    }

    /// Forces the memtable out to a new SSTable.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.write();
        if inner.memtable.is_empty() {
            return Ok(());
        }
        let t = Instant::now();
        let mut builder = SsTableBuilder::new(self.opts.block_size, self.opts.bloom_bits_per_key);
        for (k, v) in inner.memtable.iter() {
            builder.add(k, v.as_deref());
        }
        let encoded = builder.finish();
        let flushed_bytes = encoded.len() as u64;
        let id = inner.next_table_id;
        inner.next_table_id += 1;
        let (table, name) = self.persist_table(id, encoded)?;
        inner.tables.push(table);
        inner.file_names.push(name);
        if self.opts.dir.is_some() {
            self.write_manifest(&inner.file_names)?;
        }
        inner.memtable.clear();
        if let Some(dir) = &self.opts.dir {
            // WAL content is now durable in the SSTable; retire the old
            // log WITHOUT flushing its buffer (a late buffered write would
            // land inside the fresh, truncated log) and start a new one.
            if let Some(old) = inner.wal.take() {
                old.discard();
            }
            // WAL rotation must be atomic with the memtable clear below;
            // releasing the write guard here would let a put land in
            // neither the old log nor the new one.
            // trass-lint: allow(lock-across-io)
            inner.wal = Some(Wal::create(&dir.join(WAL_FILE), self.opts.sync_writes)?);
        }
        self.obs.flushes.inc();
        self.obs.flush_bytes.add(flushed_bytes);
        self.obs.flush_seconds.record_duration(t.elapsed());
        Ok(())
    }

    /// Merges all SSTables into one, dropping tombstones and shadowed
    /// versions.
    pub fn compact(&self) -> Result<()> {
        let mut inner = self.inner.write();
        if inner.tables.len() <= 1 {
            return Ok(());
        }
        let t = Instant::now();
        // Compaction I/O is counted separately from query I/O, then
        // published into dedicated `compaction_*` registry counters below.
        let compaction_metrics = IoMetrics::new();
        let mut sources: Vec<Box<dyn Iterator<Item = Result<MergeItem>> + '_>> = Vec::new();
        for table in inner.tables.iter().rev() {
            // Full compaction swaps the table set atomically; the write
            // guard must span the merge or a concurrent flush could add a
            // table the rewrite would silently drop.
            sources.push(Box::new(
                table
                    // trass-lint: allow(lock-across-io)
                    .scan(KeyRange::all(), &compaction_metrics)
                    .map(|r| r.map(|e| (e.key, e.value))),
            ));
        }
        let mut builder = SsTableBuilder::new(self.opts.block_size, self.opts.bloom_bits_per_key);
        let mut merged_rows = 0u64;
        for item in MergeIter::new(sources)? {
            let (key, value) = item?;
            merged_rows += 1;
            // Full compaction: tombstones have shadowed everything they
            // ever will; drop them.
            if let Some(v) = value {
                builder.add(&key, Some(&v));
            }
        }
        let encoded = builder.finish();
        let written_bytes = encoded.len() as u64;
        let id = inner.next_table_id;
        inner.next_table_id += 1;
        let (table, name) = self.persist_table(id, encoded)?;
        let old_names = std::mem::replace(&mut inner.file_names, vec![name]);
        inner.tables = vec![table];
        if let Some(dir) = &self.opts.dir {
            // Manifest first (the commit point), then delete the inputs.
            self.write_manifest(&inner.file_names)?;
            for name in old_names {
                // Input deletion stays under the guard: dropping it first
                // would let a reopening reader race the unlink.
                // trass-lint: allow(lock-across-io)
                std::fs::remove_file(dir.join(name)).ok();
            }
        }
        let io = compaction_metrics.snapshot();
        self.obs.compactions.inc();
        self.obs.compaction_bytes_written.add(written_bytes);
        self.obs.compaction_blocks_read.add(io.blocks_read);
        self.obs.compaction_bytes_read.add(io.bytes_read);
        self.obs.compaction_entries_scanned.add(merged_rows);
        self.obs.compaction_seconds.record_duration(t.elapsed());
        Ok(())
    }

    /// Writes the encoded table to its backing storage and opens it.
    /// Returns the table and its file name ("" for in-memory stores).
    fn persist_table(&self, id: u64, encoded: Vec<u8>) -> Result<(Arc<SsTable>, String)> {
        if let Some(dir) = &self.opts.dir {
            let name = format!("{id:08}.sst");
            let path = dir.join(&name);
            std::fs::write(&path, &encoded)?;
            let table = match &self.cache {
                Some(c) => SsTable::open_file_cached(&path, Arc::clone(c))?,
                None => SsTable::open_file(&path)?,
            };
            Ok((table, name))
        } else {
            let table = match &self.cache {
                Some(c) => SsTable::open_mem_cached(Bytes::from(encoded), Arc::clone(c))?,
                None => SsTable::open_mem(Bytes::from(encoded))?,
            };
            Ok((table, String::new()))
        }
    }

    /// Atomically replaces the manifest with the given table list (oldest
    /// first).
    fn write_manifest(&self, names: &[String]) -> Result<()> {
        let dir = self
            .opts
            .dir
            .as_ref()
            .ok_or_else(|| KvError::invalid("manifest write on in-memory store"))?;
        let tmp = dir.join("MANIFEST.tmp");
        std::fs::write(&tmp, names.join("\n"))?;
        std::fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
        Ok(())
    }

    /// Number of live SSTables.
    pub fn n_tables(&self) -> usize {
        self.inner.read().tables.len()
    }

    /// Entries currently buffered in the memtable.
    pub fn memtable_len(&self) -> usize {
        self.inner.read().memtable.len()
    }

    /// Sum of entries across SSTables (including shadowed/tombstoned ones —
    /// an upper bound on live rows until compaction).
    pub fn table_entries(&self) -> u64 {
        self.inner.read().tables.iter().map(|t| t.n_entries()).sum()
    }

    /// One-shot health check for liveness/readiness probes.
    ///
    /// Fails when the data directory has gone away or read-only (writes
    /// would start erroring), when a disk-backed store has lost its WAL
    /// handle (durability is gone even though reads still work), or when
    /// the SSTable count has run far past the compaction trigger
    /// (compaction is not keeping up and read amplification is compounding).
    pub fn health(&self) -> std::result::Result<(), String> {
        if let Some(dir) = &self.opts.dir {
            let meta =
                std::fs::metadata(dir).map_err(|e| format!("data dir {}: {e}", dir.display()))?;
            if meta.permissions().readonly() {
                return Err(format!("data dir {} is read-only", dir.display()));
            }
            if self.inner.read().wal.is_none() {
                return Err("WAL handle lost on a disk-backed store".to_string());
            }
        }
        let tables = self.n_tables();
        let backlog_limit = (self.opts.compaction_threshold * 4).max(8);
        if tables > backlog_limit {
            return Err(format!(
                "compaction backlog: {tables} SSTables exceeds {backlog_limit} \
                 (threshold {})",
                self.opts.compaction_threshold
            ));
        }
        Ok(())
    }
}

/// Streaming iterator returned by [`LsmStore::scan_snapshot`].
pub struct SnapshotScan {
    merged: MergeIter<'static>,
    metrics: Arc<IoMetrics>,
}

impl Iterator for SnapshotScan {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match self.merged.next()? {
                Ok((_, None)) => continue, // tombstone
                Ok((key, Some(value))) => {
                    self.metrics.record_entry_scanned();
                    return Some(Ok(Entry { key, value }));
                }
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

impl std::fmt::Debug for LsmStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmStore")
            .field("tables", &self.n_tables())
            .field("memtable_len", &self.memtable_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_store() -> LsmStore {
        LsmStore::open(StoreOptions {
            memtable_bytes: 1 << 14, // small to force flushes
            compaction_threshold: 4,
            ..StoreOptions::in_memory()
        })
        .unwrap()
    }

    fn kv(i: u32) -> (String, String) {
        (format!("key-{i:06}"), format!("value-{i}"))
    }

    #[test]
    fn put_get_roundtrip() {
        let s = mem_store();
        for i in 0..100 {
            let (k, v) = kv(i);
            s.put(k, v).unwrap();
        }
        for i in 0..100 {
            let (k, v) = kv(i);
            assert_eq!(s.get(k.as_bytes()).unwrap().as_deref(), Some(v.as_bytes()));
        }
        assert_eq!(s.get(b"absent").unwrap(), None);
    }

    #[test]
    fn flush_preserves_reads() {
        let s = mem_store();
        for i in 0..50 {
            let (k, v) = kv(i);
            s.put(k, v).unwrap();
        }
        s.flush().unwrap();
        assert_eq!(s.memtable_len(), 0);
        assert!(s.n_tables() >= 1);
        let (k, v) = kv(25);
        assert_eq!(s.get(k.as_bytes()).unwrap().as_deref(), Some(v.as_bytes()));
    }

    #[test]
    fn overwrite_across_flush_reads_newest() {
        let s = mem_store();
        s.put("k", "old").unwrap();
        s.flush().unwrap();
        s.put("k", "new").unwrap();
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"new"[..]));
        s.flush().unwrap();
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"new"[..]));
    }

    #[test]
    fn delete_shadows_flushed_value() {
        let s = mem_store();
        s.put("k", "v").unwrap();
        s.flush().unwrap();
        s.delete("k").unwrap();
        assert_eq!(s.get(b"k").unwrap(), None);
        s.flush().unwrap();
        assert_eq!(s.get(b"k").unwrap(), None);
        let entries = s.scan(KeyRange::all()).unwrap();
        assert!(entries.is_empty());
    }

    #[test]
    fn scan_merges_memtable_and_tables() {
        let s = mem_store();
        s.put("a", "1").unwrap();
        s.flush().unwrap();
        s.put("c", "3").unwrap();
        s.flush().unwrap();
        s.put("b", "2").unwrap(); // stays in memtable
        let entries = s.scan(KeyRange::all()).unwrap();
        let keys: Vec<_> = entries.iter().map(|e| e.key.as_ref().to_vec()).collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn scan_range_bounds() {
        let s = mem_store();
        for i in 0..100 {
            let (k, v) = kv(i);
            s.put(k, v).unwrap();
        }
        s.flush().unwrap();
        let r = KeyRange::new(&b"key-000020"[..], &b"key-000030"[..]);
        let entries = s.scan(r).unwrap();
        assert_eq!(entries.len(), 10);
        assert_eq!(entries[0].key.as_ref(), b"key-000020");
    }

    #[test]
    fn filter_pushdown_skip_and_stop() {
        let s = mem_store();
        for i in 0..100 {
            let (k, v) = kv(i);
            s.put(k, v).unwrap();
        }
        let before = s.metrics().snapshot();
        // Keep every third row.
        let every_third = |key: &[u8], _v: &[u8]| {
            let i: u32 = std::str::from_utf8(&key[4..]).unwrap().parse().unwrap();
            if i % 3 == 0 {
                FilterDecision::Keep
            } else {
                FilterDecision::Skip
            }
        };
        let entries = s.scan_filtered(KeyRange::all(), &every_third).unwrap();
        assert_eq!(entries.len(), 34);
        let after = s.metrics().snapshot().since(&before);
        assert_eq!(after.entries_scanned, 100);
        assert_eq!(after.entries_returned, 34);

        // Stop after the first row.
        let stop_after_first = {
            let seen = std::sync::atomic::AtomicBool::new(false);
            move |_k: &[u8], _v: &[u8]| {
                if seen.swap(true, std::sync::atomic::Ordering::SeqCst) {
                    FilterDecision::Stop
                } else {
                    FilterDecision::Keep
                }
            }
        };
        let entries = s.scan_filtered(KeyRange::all(), &stop_after_first).unwrap();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn automatic_flush_and_compaction_under_load() {
        let s = mem_store();
        for i in 0..5000 {
            let (k, v) = kv(i);
            s.put(k, v).unwrap();
        }
        assert!(s.n_tables() <= 5, "compaction should bound table count, got {}", s.n_tables());
        // All data still readable.
        for i in (0..5000).step_by(501) {
            let (k, v) = kv(i);
            assert_eq!(s.get(k.as_bytes()).unwrap().as_deref(), Some(v.as_bytes()));
        }
        assert_eq!(s.scan(KeyRange::all()).unwrap().len(), 5000);
    }

    #[test]
    fn compaction_drops_tombstones_and_duplicates() {
        let s = mem_store();
        for i in 0..100 {
            let (k, _) = kv(i);
            s.put(k, "v1").unwrap();
        }
        s.flush().unwrap();
        for i in 0..100 {
            let (k, _) = kv(i);
            s.put(k, "v2").unwrap();
        }
        s.flush().unwrap();
        for i in 0..50 {
            let (k, _) = kv(i);
            s.delete(k).unwrap();
        }
        s.flush().unwrap();
        assert_eq!(s.n_tables(), 3);
        s.compact().unwrap();
        assert_eq!(s.n_tables(), 1);
        assert_eq!(s.table_entries(), 50, "compaction leaves only live rows");
        let entries = s.scan(KeyRange::all()).unwrap();
        assert_eq!(entries.len(), 50);
        assert!(entries.iter().all(|e| e.value.as_ref() == b"v2"));
    }

    #[test]
    fn disk_store_recovers_after_reopen() {
        let dir = std::env::temp_dir().join(format!("trass-store-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let opts = StoreOptions { memtable_bytes: 1 << 12, ..StoreOptions::at_dir(&dir) };
        {
            let s = LsmStore::open(opts.clone()).unwrap();
            for i in 0..500 {
                let (k, v) = kv(i);
                s.put(k, v).unwrap();
            }
            s.delete("key-000010").unwrap();
            // No explicit flush for the tail: it must come back via WAL.
        }
        {
            let s = LsmStore::open(opts).unwrap();
            let (k, v) = kv(499);
            assert_eq!(s.get(k.as_bytes()).unwrap().as_deref(), Some(v.as_bytes()));
            assert_eq!(s.get(b"key-000010").unwrap(), None);
            assert_eq!(s.scan(KeyRange::all()).unwrap().len(), 499);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_scan_ignores_later_writes() {
        let s = mem_store();
        for i in 0..200 {
            let (k, v) = kv(i);
            s.put(k, v).unwrap();
        }
        s.flush().unwrap();
        let mut snap = s.scan_snapshot(KeyRange::all()).unwrap();
        // Mutate after the snapshot: delete everything, add new keys,
        // flush and compact underneath the iterator.
        for i in 0..200 {
            let (k, _) = kv(i);
            s.delete(k).unwrap();
        }
        s.put("zzz", "after").unwrap();
        s.flush().unwrap();
        s.compact().unwrap();
        // The snapshot still sees exactly the original 200 rows.
        let mut n = 0;
        for entry in &mut snap {
            let e = entry.unwrap();
            assert!(e.key.as_ref() != b"zzz");
            n += 1;
        }
        assert_eq!(n, 200);
        // A fresh scan sees the new state.
        let now = s.scan(KeyRange::all()).unwrap();
        assert_eq!(now.len(), 1);
        assert_eq!(now[0].key.as_ref(), b"zzz");
    }

    #[test]
    fn snapshot_scan_matches_collecting_scan() {
        let s = mem_store();
        for i in 0..500 {
            let (k, v) = kv(i);
            s.put(k, v).unwrap();
        }
        s.flush().unwrap();
        for i in (0..500).step_by(3) {
            let (k, _) = kv(i);
            s.delete(k).unwrap();
        }
        let range = KeyRange::new(&b"key-000050"[..], &b"key-000400"[..]);
        let collected = s.scan(range.clone()).unwrap();
        let streamed: Vec<Entry> = s.scan_snapshot(range).unwrap().map(|e| e.unwrap()).collect();
        assert_eq!(collected, streamed);
    }

    #[test]
    fn block_cache_serves_repeated_scans() {
        let s = LsmStore::open(StoreOptions {
            memtable_bytes: 1 << 12,
            block_cache_bytes: 4 << 20,
            ..StoreOptions::in_memory()
        })
        .unwrap();
        for i in 0..2000 {
            let (k, v) = kv(i);
            s.put(k, v).unwrap();
        }
        s.flush().unwrap();
        let range = KeyRange::new(&b"key-000100"[..], &b"key-000200"[..]);
        let _ = s.scan(range.clone()).unwrap();
        let cold = s.metrics().snapshot();
        let _ = s.scan(range).unwrap();
        let warm = s.metrics().snapshot().since(&cold);
        assert_eq!(warm.blocks_read, 0, "second scan should be fully cached");
        assert!(warm.cache_hits > 0);
        assert!(s.block_cache().unwrap().resident_bytes() > 0);
    }

    #[test]
    fn cache_disabled_reads_blocks_every_time() {
        let s = LsmStore::open(StoreOptions {
            memtable_bytes: 1 << 12,
            block_cache_bytes: 0,
            ..StoreOptions::in_memory()
        })
        .unwrap();
        for i in 0..2000 {
            let (k, v) = kv(i);
            s.put(k, v).unwrap();
        }
        s.flush().unwrap();
        assert!(s.block_cache().is_none());
        let range = KeyRange::new(&b"key-000100"[..], &b"key-000200"[..]);
        let _ = s.scan(range.clone()).unwrap();
        let cold = s.metrics().snapshot();
        let _ = s.scan(range).unwrap();
        let warm = s.metrics().snapshot().since(&cold);
        assert!(warm.blocks_read > 0);
        assert_eq!(warm.cache_hits, 0);
    }

    #[test]
    fn maintenance_paths_report_to_registry() {
        let registry = trass_obs::Registry::new_shared();
        let s = LsmStore::open(StoreOptions {
            memtable_bytes: 1 << 14,
            compaction_threshold: 4,
            registry: Some(Arc::clone(&registry)),
            shard_label: Some("7".to_string()),
            ..StoreOptions::in_memory()
        })
        .unwrap();
        for i in 0..200 {
            let (k, v) = kv(i);
            s.put(k, v).unwrap();
        }
        s.flush().unwrap();
        for i in 200..400 {
            let (k, v) = kv(i);
            s.put(k, v).unwrap();
        }
        s.flush().unwrap();
        s.compact().unwrap();
        let labels = [("shard", "7")];
        assert!(registry.timer("trass_kv_flush_seconds", &labels).count() >= 2);
        assert!(registry.counter("trass_kv_flush_bytes", &labels).get() > 0);
        assert_eq!(registry.counter("trass_kv_compactions", &labels).get(), 1);
        assert_eq!(registry.timer("trass_kv_compaction_seconds", &labels).count(), 1);
        assert!(registry.counter("trass_kv_compaction_bytes_written", &labels).get() > 0);
        assert!(registry.counter("trass_kv_compaction_blocks_read", &labels).get() > 0);
        assert_eq!(registry.counter("trass_kv_compaction_entries_scanned", &labels).get(), 400);
        // Compaction I/O must not leak into the store's query metrics.
        assert_eq!(s.metrics().entries_scanned(), 0);
        // Query-side counters are mirrored on demand.
        let _ = s.scan(KeyRange::all()).unwrap();
        s.publish_metrics();
        assert_eq!(registry.counter("trass_kv_entries_scanned", &labels).get(), 400);
        assert_eq!(registry.counter("trass_kv_range_scans", &labels).get(), 1);
    }

    #[test]
    fn wal_appends_time_into_registry() {
        let dir = std::env::temp_dir().join(format!("trass-store-obs-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let s = LsmStore::open(StoreOptions::at_dir(&dir)).unwrap();
        for i in 0..50 {
            let (k, v) = kv(i);
            s.put(k, v).unwrap();
        }
        s.delete("key-000000").unwrap();
        let wal = s.registry().timer("trass_kv_wal_append_seconds", &[]);
        assert_eq!(wal.count(), 51);
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_range_scan_is_empty() {
        let s = mem_store();
        s.put("a", "1").unwrap();
        let r = KeyRange::new(&b"x"[..], &b"x"[..]);
        assert!(s.scan(r).unwrap().is_empty());
    }

    #[test]
    fn health_reflects_compaction_backlog() {
        // A live store auto-compacts, so a backlog can only be observed
        // when the on-disk state already has more tables than a (newly
        // tightened) threshold allows — exactly the situation after a
        // config change or a crash loop that kept flushing.
        let dir = std::env::temp_dir().join(format!("trass-store-backlog-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            // Threshold high enough that auto-compaction never fires.
            let s = LsmStore::open(StoreOptions {
                compaction_threshold: 1000,
                ..StoreOptions::at_dir(&dir)
            })
            .unwrap();
            for i in 0..9 {
                s.put(format!("key-{i}"), "v").unwrap();
                s.flush().unwrap();
            }
            assert_eq!(s.n_tables(), 9);
            assert!(s.health().is_ok(), "9 tables is fine at threshold 1000");
        }
        let s = LsmStore::open(StoreOptions {
            compaction_threshold: 2, // backlog limit max(2*4, 8) = 8
            ..StoreOptions::at_dir(&dir)
        })
        .unwrap();
        let err = s.health().expect_err("9 tables over limit 8 must fail");
        assert!(err.contains("compaction backlog"), "{err}");
        s.compact().unwrap();
        assert!(s.health().is_ok(), "compaction clears the backlog");
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn health_checks_data_dir_and_wal() {
        let dir = std::env::temp_dir().join(format!("trass-store-health-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let s = LsmStore::open(StoreOptions::at_dir(&dir)).unwrap();
        s.put("a", "1").unwrap();
        assert!(s.health().is_ok(), "disk store with live WAL must be healthy");
        // Yank the directory out from under the store: writes are doomed,
        // health must say so.
        std::fs::remove_dir_all(&dir).unwrap();
        let err = s.health().expect_err("missing data dir must fail");
        assert!(err.contains("data dir"), "{err}");
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }
}
