//! Write-ahead log.
//!
//! Every mutation is appended to the WAL before entering the memtable, so a
//! crash between write and flush loses nothing. Record layout:
//!
//! ```text
//! record := [len: u32][crc32c: u32][payload]
//! payload := [type: u8][klen: u32][key][value]     (type 0 = put, 1 = delete)
//! ```
//!
//! Replay is tolerant of a torn tail: the first record that fails its
//! length or checksum ends recovery (standard crash-consistency behaviour —
//! a torn record can only be the unacknowledged last write).

use crate::crc::crc32c;
use crate::error::{KvError, Result};
use bytes::Bytes;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const TYPE_PUT: u8 = 0;
const TYPE_DELETE: u8 = 1;

/// An append-only write-ahead log.
#[derive(Debug)]
pub struct Wal {
    writer: BufWriter<File>,
    path: PathBuf,
    /// fsync after every append (durable but slow); otherwise only on
    /// [`Wal::sync`].
    sync_on_write: bool,
}

impl Wal {
    /// Creates a new WAL, truncating any existing file at `path`.
    pub fn create(path: &Path, sync_on_write: bool) -> Result<Self> {
        let file = OpenOptions::new().create(true).write(true).truncate(true).open(path)?;
        Ok(Wal { writer: BufWriter::new(file), path: path.to_path_buf(), sync_on_write })
    }

    /// Opens an existing WAL for appending (after replay).
    pub fn open_append(path: &Path, sync_on_write: bool) -> Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Wal { writer: BufWriter::new(file), path: path.to_path_buf(), sync_on_write })
    }

    /// Logs a put.
    pub fn append_put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.append(TYPE_PUT, key, value)
    }

    /// Logs a delete.
    pub fn append_delete(&mut self, key: &[u8]) -> Result<()> {
        self.append(TYPE_DELETE, key, &[])
    }

    fn append(&mut self, rtype: u8, key: &[u8], value: &[u8]) -> Result<()> {
        let payload_len = 1 + 4 + key.len() + value.len();
        let klen = (key.len() as u32).to_le_bytes();
        let crc = crc32c_payload(rtype, key, value);
        self.writer.write_all(&(payload_len as u32).to_le_bytes())?;
        self.writer.write_all(&crc.to_le_bytes())?;
        self.writer.write_all(&[rtype])?;
        self.writer.write_all(&klen)?;
        self.writer.write_all(key)?;
        self.writer.write_all(value)?;
        if self.sync_on_write {
            self.sync()?;
        }
        Ok(())
    }

    /// Flushes buffers and fsyncs the file.
    pub fn sync(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consumes the WAL *without* flushing its buffer — used when rotating
    /// after a flush, where everything buffered is already durable in an
    /// SSTable and a late buffered write would corrupt the fresh log.
    pub fn discard(self) {
        let (_file, _buffer) = self.writer.into_parts();
        // Both parts drop without any further write.
    }

    /// Replays a WAL file, returning the logged operations in order.
    /// Returns an empty vec when the file does not exist. A torn tail ends
    /// replay silently; corruption *before* the tail is reported.
    pub fn replay(path: &Path) -> Result<Vec<(Bytes, Option<Bytes>)>> {
        let mut buf = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut buf)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        }
        let mut ops = Vec::new();
        let mut pos = 0usize;
        while pos < buf.len() {
            if pos + 8 > buf.len() {
                break; // torn length/crc header
            }
            let len = crate::codec::u32_le(&buf, pos, "WAL record length")? as usize;
            let crc = crate::codec::u32_le(&buf, pos + 4, "WAL record checksum")?;
            let body_start = pos + 8;
            let body_end = match body_start.checked_add(len) {
                Some(e) if e <= buf.len() => e,
                _ => break, // torn body
            };
            let body = &buf[body_start..body_end];
            if crc32c(body) != crc {
                if body_end == buf.len() {
                    break; // torn final record
                }
                return Err(KvError::corruption(format!(
                    "WAL record at offset {pos} failed checksum mid-file"
                )));
            }
            if body.len() < 5 {
                return Err(KvError::corruption("WAL record too short"));
            }
            let rtype = body[0];
            let klen = crate::codec::u32_le(body, 1, "WAL key length")? as usize;
            if 5 + klen > body.len() {
                return Err(KvError::corruption("WAL key length out of range"));
            }
            let key = Bytes::copy_from_slice(&body[5..5 + klen]);
            let value = &body[5 + klen..];
            match rtype {
                TYPE_PUT => ops.push((key, Some(Bytes::copy_from_slice(value)))),
                TYPE_DELETE if value.is_empty() => ops.push((key, None)),
                _ => return Err(KvError::corruption("WAL unknown record type")),
            }
            pos = body_end;
        }
        Ok(ops)
    }
}

fn crc32c_payload(rtype: u8, key: &[u8], value: &[u8]) -> u32 {
    crate::crc::crc32c_parts(&[&[rtype], &(key.len() as u32).to_le_bytes(), key, value])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("trass-wal-{}-{}", std::process::id(), name));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn roundtrip_puts_and_deletes() {
        let path = temp_wal("roundtrip");
        {
            let mut wal = Wal::create(&path, false).unwrap();
            wal.append_put(b"k1", b"v1").unwrap();
            wal.append_delete(b"k2").unwrap();
            wal.append_put(b"k3", b"").unwrap();
            wal.sync().unwrap();
        }
        let ops = Wal::replay(&path).unwrap();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0], (Bytes::from_static(b"k1"), Some(Bytes::from_static(b"v1"))));
        assert_eq!(ops[1], (Bytes::from_static(b"k2"), None));
        assert_eq!(ops[2], (Bytes::from_static(b"k3"), Some(Bytes::new())));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_replays_empty() {
        let path = temp_wal("missing").join("nope.log");
        assert!(Wal::replay(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let path = temp_wal("torn");
        {
            let mut wal = Wal::create(&path, false).unwrap();
            wal.append_put(b"good", b"value").unwrap();
            wal.append_put(b"torn", b"never-acked").unwrap();
            wal.sync().unwrap();
        }
        // Truncate mid-way through the second record.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let ops = Wal::replay(&path).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0.as_ref(), b"good");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let path = temp_wal("midcorrupt");
        {
            let mut wal = Wal::create(&path, false).unwrap();
            wal.append_put(b"first", b"aaaa").unwrap();
            wal.append_put(b"second", b"bbbb").unwrap();
            wal.sync().unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        data[10] ^= 0xFF; // corrupt inside the first record
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(Wal::replay(&path), Err(KvError::Corruption { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_after_reopen_preserves_order() {
        let path = temp_wal("reopen");
        {
            let mut wal = Wal::create(&path, false).unwrap();
            wal.append_put(b"a", b"1").unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open_append(&path, false).unwrap();
            wal.append_put(b"b", b"2").unwrap();
            wal.sync().unwrap();
        }
        let ops = Wal::replay(&path).unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].0.as_ref(), b"a");
        assert_eq!(ops[1].0.as_ref(), b"b");
        std::fs::remove_file(&path).ok();
    }
}
