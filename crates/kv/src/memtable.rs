//! The in-memory write buffer.
//!
//! A sorted map from key to value-or-tombstone, tracking its approximate
//! byte footprint so the store knows when to flush. The memtable is always
//! consulted first by reads: it holds the newest version of every key it
//! contains.

use crate::types::KeyRange;
use bytes::Bytes;
use std::collections::BTreeMap;

/// Sorted in-memory buffer of recent writes.
#[derive(Debug, Default)]
pub struct Memtable {
    map: BTreeMap<Bytes, Option<Bytes>>,
    approx_bytes: usize,
}

impl Memtable {
    /// Creates an empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces a value.
    pub fn put(&mut self, key: Bytes, value: Bytes) {
        self.insert(key, Some(value));
    }

    /// Records a deletion (tombstone) — it must shadow older SSTable data.
    pub fn delete(&mut self, key: Bytes) {
        self.insert(key, None);
    }

    fn insert(&mut self, key: Bytes, value: Option<Bytes>) {
        let add = key.len() + value.as_ref().map_or(0, |v| v.len()) + 32;
        if let Some(old) = self.map.insert(key, value) {
            let removed = old.map_or(0, |v| v.len());
            self.approx_bytes = self.approx_bytes.saturating_sub(removed);
            self.approx_bytes += add - 32; // key already accounted
        } else {
            self.approx_bytes += add;
        }
    }

    /// Looks up the newest version of `key`. Outer `None` = not present in
    /// the memtable; `Some(None)` = tombstone.
    pub fn get(&self, key: &[u8]) -> Option<Option<Bytes>> {
        self.map.get(key).cloned()
    }

    /// Iterates entries within `range` in key order (tombstones included).
    pub fn range<'a>(
        &'a self,
        range: &KeyRange,
    ) -> impl Iterator<Item = (&'a Bytes, &'a Option<Bytes>)> + 'a {
        self.map.range::<[u8], _>(range.bounds())
    }

    /// Iterates all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Bytes, &Option<Bytes>)> {
        self.map.iter()
    }

    /// Number of buffered entries (tombstones included).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Clears the table (after a flush).
    pub fn clear(&mut self) {
        self.map.clear();
        self.approx_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_overwrite() {
        let mut m = Memtable::new();
        m.put(b("k1"), b("v1"));
        m.put(b("k1"), b("v2"));
        assert_eq!(m.get(b"k1"), Some(Some(b("v2"))));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn tombstones_are_visible() {
        let mut m = Memtable::new();
        m.put(b("k1"), b("v1"));
        m.delete(b("k1"));
        assert_eq!(m.get(b"k1"), Some(None));
        assert_eq!(m.get(b"other"), None);
    }

    #[test]
    fn range_iteration_in_order() {
        let mut m = Memtable::new();
        for k in ["d", "a", "c", "b", "e"] {
            m.put(b(k), b("v"));
        }
        let keys: Vec<_> =
            m.range(&KeyRange::new(&b"b"[..], &b"e"[..])).map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![b("b"), b("c"), b("d")]);
    }

    #[test]
    fn approx_bytes_tracks_growth_and_clear() {
        let mut m = Memtable::new();
        assert_eq!(m.approx_bytes(), 0);
        m.put(b("key"), b("value"));
        let after_one = m.approx_bytes();
        assert!(after_one > 0);
        m.put(b("key2"), b("value2"));
        assert!(m.approx_bytes() > after_one);
        m.clear();
        assert_eq!(m.approx_bytes(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn overwrite_does_not_leak_accounting() {
        let mut m = Memtable::new();
        m.put(b("k"), Bytes::from(vec![0u8; 1000]));
        let big = m.approx_bytes();
        m.put(b("k"), b("tiny"));
        assert!(m.approx_bytes() < big);
    }
}
