//! LRU block cache.
//!
//! Scans and point lookups decode SSTable blocks; hot blocks (index roots,
//! frequently queried regions) are worth keeping decoded. The cache is
//! shared by all SSTables of a store and keyed by `(table_id, block_no)`;
//! capacity is accounted in approximate decoded bytes.

use crate::block::Block;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Key of a cached block.
pub type BlockKey = (u64, u32);

struct CacheInner {
    map: HashMap<BlockKey, (Arc<Block>, usize, u64)>,
    /// Monotonic access clock; the entry with the smallest stamp is the
    /// least recently used.
    clock: u64,
    bytes: usize,
    capacity: usize,
}

/// A shared, thread-safe LRU cache of decoded blocks.
pub struct BlockCache {
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BlockCache {
    /// Creates a cache bounded to roughly `capacity_bytes` of decoded
    /// block data.
    pub fn new(capacity_bytes: usize) -> Arc<Self> {
        Arc::new(BlockCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                clock: 0,
                bytes: 0,
                capacity: capacity_bytes,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Looks up a block, refreshing its recency on hit.
    pub fn get(&self, key: BlockKey) -> Option<Arc<Block>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(&key) {
            Some((block, _, stamp)) => {
                *stamp = clock;
                let b = Arc::clone(block);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(b)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a block, evicting least-recently-used entries as needed.
    /// Oversized blocks (larger than the whole capacity) are not cached.
    pub fn insert(&self, key: BlockKey, block: Arc<Block>, approx_bytes: usize) {
        let mut inner = self.inner.lock();
        if approx_bytes > inner.capacity {
            return;
        }
        inner.clock += 1;
        let clock = inner.clock;
        if let Some((_, old_bytes, _)) = inner.map.insert(key, (block, approx_bytes, clock)) {
            inner.bytes -= old_bytes;
        }
        inner.bytes += approx_bytes;
        while inner.bytes > inner.capacity {
            // Evict the stalest entry. Linear scan keeps the structure
            // simple; block counts are small (capacity / block_size).
            let victim = inner.map.iter().min_by_key(|(_, (_, _, stamp))| *stamp).map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some((_, freed, _)) = inner.map.remove(&victim) {
                inner.bytes -= freed;
            }
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Current resident bytes.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("blocks", &self.len())
            .field("bytes", &self.resident_bytes())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockBuilder;

    fn block(tag: u8) -> (Arc<Block>, usize) {
        let mut b = BlockBuilder::new();
        b.add(&[tag], Some(&[tag; 100]));
        let bytes = b.finish();
        let len = bytes.len();
        (Arc::new(Block::decode(&bytes).unwrap()), len)
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = BlockCache::new(10_000);
        assert!(cache.get((1, 0)).is_none());
        assert_eq!(cache.misses(), 1);
        let (b, sz) = block(7);
        cache.insert((1, 0), b, sz);
        assert!(cache.get((1, 0)).is_some());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_respects_capacity_and_recency() {
        let (b0, sz) = block(0);
        let cache = BlockCache::new(sz * 3);
        cache.insert((0, 0), b0, sz);
        for tag in 1..3u8 {
            let (b, sz) = block(tag);
            cache.insert((tag as u64, 0), b, sz);
        }
        assert_eq!(cache.len(), 3);
        // Touch block 0 so block 1 becomes the LRU victim.
        assert!(cache.get((0, 0)).is_some());
        let (b3, sz3) = block(3);
        cache.insert((3, 0), b3, sz3);
        assert_eq!(cache.len(), 3);
        assert!(cache.get((0, 0)).is_some(), "recently used survived");
        assert!(cache.get((1, 0)).is_none(), "LRU evicted");
        assert!(cache.resident_bytes() <= sz * 3);
    }

    #[test]
    fn oversized_blocks_are_not_cached() {
        let cache = BlockCache::new(10);
        let (b, sz) = block(1);
        assert!(sz > 10);
        cache.insert((1, 0), b, sz);
        assert!(cache.is_empty());
    }

    #[test]
    fn reinsert_updates_bytes() {
        let (b, sz) = block(1);
        let cache = BlockCache::new(sz * 2);
        cache.insert((1, 0), Arc::clone(&b), sz);
        cache.insert((1, 0), b, sz);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.resident_bytes(), sz);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let (b, sz) = block(1);
        let cache = BlockCache::new(sz * 8);
        crossbeam::thread::scope(|s| {
            for t in 0..4 {
                let cache = &cache;
                let b = Arc::clone(&b);
                s.spawn(move |_| {
                    for i in 0..500u32 {
                        cache.insert((t, i % 4), Arc::clone(&b), sz);
                        let _ = cache.get((t, i % 4));
                    }
                });
            }
        })
        .unwrap();
        assert!(cache.hits() > 0);
    }
}
