//! K-way merge over memtable and SSTable iterators.
//!
//! Sources are supplied newest-first; when several sources hold the same
//! key, the newest wins and older versions (including shadowed values under
//! a tombstone) are consumed silently. The merged stream still yields
//! tombstones — callers decide whether to surface or drop them (scans drop
//! them, compaction keeps them until a full merge).

use crate::error::Result;
use bytes::Bytes;

/// A versioned key-value item flowing through the merge: `None` value is a
/// tombstone.
pub type MergeItem = (Bytes, Option<Bytes>);

/// Merges `sources` (newest first) into a single ordered, deduplicated
/// stream.
pub struct MergeIter<'a> {
    sources: Vec<Box<dyn Iterator<Item = Result<MergeItem>> + 'a>>,
    heads: Vec<Option<MergeItem>>,
    /// An error hit while pre-fetching the next head; surfaced on the call
    /// *after* the item that was already complete.
    pending_error: Option<crate::error::KvError>,
    failed: bool,
}

impl<'a> MergeIter<'a> {
    /// Creates a merge over the given sources. `sources[0]` is the newest
    /// (typically the memtable), later entries progressively older.
    pub fn new(sources: Vec<Box<dyn Iterator<Item = Result<MergeItem>> + 'a>>) -> Result<Self> {
        let mut iter = MergeIter {
            heads: Vec::with_capacity(sources.len()),
            sources,
            pending_error: None,
            failed: false,
        };
        for i in 0..iter.sources.len() {
            let head = iter.pull(i)?;
            iter.heads.push(head);
        }
        Ok(iter)
    }

    fn pull(&mut self, i: usize) -> Result<Option<MergeItem>> {
        match self.sources[i].next() {
            Some(Ok(item)) => Ok(Some(item)),
            Some(Err(e)) => Err(e),
            None => Ok(None),
        }
    }

    fn advance(&mut self, i: usize) -> Result<()> {
        self.heads[i] = self.pull(i)?;
        Ok(())
    }
}

impl Iterator for MergeIter<'_> {
    type Item = Result<MergeItem>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if let Some(e) = self.pending_error.take() {
            self.failed = true;
            return Some(Err(e));
        }
        // Find the smallest key; ties resolved to the newest source.
        let mut winner: Option<(usize, &[u8])> = None;
        for (i, head) in self.heads.iter().enumerate() {
            if let Some((key, _)) = head {
                match winner {
                    Some((_, wkey)) if key.as_ref() >= wkey => {}
                    _ => winner = Some((i, key.as_ref())),
                }
            }
        }
        let w = winner?.0;
        let (key, value) = self.heads[w].take()?;
        // Advance the winner and every older source holding the same key.
        for i in 0..self.heads.len() {
            let same = match &self.heads[i] {
                Some((k, _)) => *k == key,
                None => i == w,
            };
            if same || i == w {
                if let Err(e) = self.advance(i) {
                    // The current item is complete; deliver it and surface
                    // the error on the next call.
                    self.pending_error = Some(e);
                    break;
                }
            }
        }
        Some(Ok((key, value)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(
        items: Vec<(&'static str, Option<&'static str>)>,
    ) -> Box<dyn Iterator<Item = Result<MergeItem>>> {
        Box::new(items.into_iter().map(|(k, v)| {
            Ok((
                Bytes::copy_from_slice(k.as_bytes()),
                v.map(|v| Bytes::copy_from_slice(v.as_bytes())),
            ))
        }))
    }

    fn collect(m: MergeIter<'_>) -> Vec<(String, Option<String>)> {
        m.map(|r| {
            let (k, v) = r.unwrap();
            (
                String::from_utf8(k.to_vec()).unwrap(),
                v.map(|v| String::from_utf8(v.to_vec()).unwrap()),
            )
        })
        .collect()
    }

    #[test]
    fn disjoint_sources_interleave() {
        let m = MergeIter::new(vec![
            src(vec![("a", Some("1")), ("c", Some("3"))]),
            src(vec![("b", Some("2")), ("d", Some("4"))]),
        ])
        .unwrap();
        let got = collect(m);
        assert_eq!(
            got,
            vec![
                ("a".into(), Some("1".into())),
                ("b".into(), Some("2".into())),
                ("c".into(), Some("3".into())),
                ("d".into(), Some("4".into())),
            ]
        );
    }

    #[test]
    fn newest_source_wins_ties() {
        let m = MergeIter::new(vec![src(vec![("k", Some("new"))]), src(vec![("k", Some("old"))])])
            .unwrap();
        assert_eq!(collect(m), vec![("k".into(), Some("new".into()))]);
    }

    #[test]
    fn tombstone_shadows_older_value() {
        let m =
            MergeIter::new(vec![src(vec![("k", None)]), src(vec![("k", Some("old"))])]).unwrap();
        assert_eq!(collect(m), vec![("k".into(), None)]);
    }

    #[test]
    fn three_way_with_mixed_duplicates() {
        let m = MergeIter::new(vec![
            src(vec![("b", Some("b-new")), ("d", None)]),
            src(vec![("a", Some("a-mid")), ("b", Some("b-mid"))]),
            src(vec![("a", Some("a-old")), ("c", Some("c-old")), ("d", Some("d-old"))]),
        ])
        .unwrap();
        assert_eq!(
            collect(m),
            vec![
                ("a".into(), Some("a-mid".into())),
                ("b".into(), Some("b-new".into())),
                ("c".into(), Some("c-old".into())),
                ("d".into(), None),
            ]
        );
    }

    #[test]
    fn empty_sources() {
        let m = MergeIter::new(vec![src(vec![]), src(vec![])]).unwrap();
        assert!(collect(m).is_empty());
        let m = MergeIter::new(vec![]).unwrap();
        assert!(collect(m).is_empty());
    }

    #[test]
    fn error_propagates_and_stops() {
        let err_src: Box<dyn Iterator<Item = Result<MergeItem>>> = Box::new(
            vec![
                Ok((Bytes::from_static(b"a"), Some(Bytes::from_static(b"1")))),
                Err(crate::error::KvError::corruption("boom")),
            ]
            .into_iter(),
        );
        let mut m = MergeIter::new(vec![err_src]).unwrap();
        assert!(m.next().unwrap().is_ok());
        assert!(m.next().unwrap().is_err());
        assert!(m.next().is_none(), "iterator fuses after error");
    }
}
