//! Immutable sorted-string tables.
//!
//! Layout:
//!
//! ```text
//! [data block]* [index block] [bloom filter] [footer]
//!
//! index  := [n: u32] ([klen: u32][last_key][offset: u64][len: u32])* [crc: u32]
//! footer := [index_off: u64][index_len: u64][bloom_off: u64][bloom_len: u64]
//!           [n_entries: u64][magic: u64]                      (48 bytes)
//! ```
//!
//! The index stores each block's *last* key; binary search for the first
//! block whose last key is `>= target` locates the block that may contain
//! the target. SSTables are immutable once built and can live either on
//! disk or fully in memory ([`SsData`]), which keeps unit tests and
//! benchmark setups hermetic.

use crate::block::{Block, BlockBuilder, BlockEntry};
use crate::bloom::BloomFilter;
use crate::cache::BlockCache;
use crate::crc::crc32c;
use crate::error::{KvError, Result};
use crate::metrics::IoMetrics;
use crate::types::KeyRange;
use bytes::Bytes;
use parking_lot::Mutex;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide table id source, used as the block-cache key namespace.
static NEXT_TABLE_ID: AtomicU64 = AtomicU64::new(0);

const MAGIC: u64 = 0x7452_6153_5353_5442; // "tRaSSSTB"
const FOOTER_LEN: usize = 48;

/// Where an SSTable's bytes live.
#[derive(Debug)]
pub enum SsData {
    /// Entire table held in memory.
    Mem(Bytes),
    /// Table backed by a file; reads seek under a mutex.
    File(Mutex<File>),
}

impl SsData {
    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        match self {
            SsData::Mem(b) => {
                let start = offset as usize;
                let end = start
                    .checked_add(len)
                    .ok_or_else(|| KvError::corruption("sstable read range overflow"))?;
                if end > b.len() {
                    return Err(KvError::corruption("sstable read past end"));
                }
                Ok(b[start..end].to_vec())
            }
            SsData::File(f) => {
                // The guard *is* the file handle: seek+read must be one
                // atomic unit per reader, and this mutex serialises only
                // this table's handle, never the store lock.
                let mut guard = f.lock();
                guard.seek(SeekFrom::Start(offset))?;
                let mut buf = vec![0u8; len];
                // trass-lint: allow(lock-across-io)
                guard.read_exact(&mut buf)?;
                Ok(buf)
            }
        }
    }

    fn len(&self) -> Result<u64> {
        match self {
            SsData::Mem(b) => Ok(b.len() as u64),
            SsData::File(f) => Ok(f.lock().metadata()?.len()),
        }
    }
}

/// One index entry describing a data block.
#[derive(Debug, Clone)]
struct IndexEntry {
    last_key: Bytes,
    offset: u64,
    len: u32,
}

/// Builds an SSTable from strictly-increasing keyed entries.
pub struct SsTableBuilder {
    target_block_size: usize,
    bits_per_key: usize,
    buf: Vec<u8>,
    current: BlockBuilder,
    index: Vec<IndexEntry>,
    keys: Vec<Vec<u8>>,
    last_key: Vec<u8>,
    n_entries: u64,
}

impl SsTableBuilder {
    /// Creates a builder with the given target data-block size (bytes) and
    /// bloom-filter density.
    pub fn new(target_block_size: usize, bits_per_key: usize) -> Self {
        SsTableBuilder {
            target_block_size: target_block_size.max(64),
            bits_per_key,
            buf: Vec::new(),
            current: BlockBuilder::new(),
            index: Vec::new(),
            keys: Vec::new(),
            last_key: Vec::new(),
            n_entries: 0,
        }
    }

    /// Appends an entry (`None` value = tombstone). Keys must be strictly
    /// increasing.
    pub fn add(&mut self, key: &[u8], value: Option<&[u8]>) {
        debug_assert!(
            self.n_entries == 0 || key > self.last_key.as_slice(),
            "sstable keys must be strictly increasing"
        );
        self.current.add(key, value);
        self.keys.push(key.to_vec());
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.n_entries += 1;
        if self.current.encoded_size() >= self.target_block_size {
            self.rotate_block();
        }
    }

    fn rotate_block(&mut self) {
        if self.current.is_empty() {
            return;
        }
        let builder = std::mem::take(&mut self.current);
        let offset = self.buf.len() as u64;
        let encoded = builder.finish();
        self.index.push(IndexEntry {
            last_key: Bytes::copy_from_slice(&self.last_key),
            offset,
            len: encoded.len() as u32,
        });
        self.buf.extend_from_slice(&encoded);
    }

    /// Number of entries added so far.
    pub fn len(&self) -> u64 {
        self.n_entries
    }

    /// True when nothing was added.
    pub fn is_empty(&self) -> bool {
        self.n_entries == 0
    }

    /// Seals the table and returns its encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.rotate_block();

        // Index block.
        let index_off = self.buf.len() as u64;
        let mut index_buf = Vec::new();
        index_buf.extend_from_slice(&(self.index.len() as u32).to_le_bytes());
        for e in &self.index {
            index_buf.extend_from_slice(&(e.last_key.len() as u32).to_le_bytes());
            index_buf.extend_from_slice(&e.last_key);
            index_buf.extend_from_slice(&e.offset.to_le_bytes());
            index_buf.extend_from_slice(&e.len.to_le_bytes());
        }
        let index_crc = crc32c(&index_buf);
        index_buf.extend_from_slice(&index_crc.to_le_bytes());
        let index_len = index_buf.len() as u64;
        self.buf.extend_from_slice(&index_buf);

        // Bloom filter (CRC-protected: a corrupt filter could cause false
        // negatives, i.e. silently missing data).
        let bloom_off = self.buf.len() as u64;
        let bloom = BloomFilter::build(
            self.keys.iter().map(|k| k.as_slice()),
            self.keys.len(),
            self.bits_per_key,
        );
        let mut bloom_buf = bloom.encode();
        let bloom_crc = crc32c(&bloom_buf);
        bloom_buf.extend_from_slice(&bloom_crc.to_le_bytes());
        let bloom_len = bloom_buf.len() as u64;
        self.buf.extend_from_slice(&bloom_buf);

        // Footer.
        self.buf.extend_from_slice(&index_off.to_le_bytes());
        self.buf.extend_from_slice(&index_len.to_le_bytes());
        self.buf.extend_from_slice(&bloom_off.to_le_bytes());
        self.buf.extend_from_slice(&bloom_len.to_le_bytes());
        self.buf.extend_from_slice(&self.n_entries.to_le_bytes());
        self.buf.extend_from_slice(&MAGIC.to_le_bytes());
        self.buf
    }
}

/// An open, immutable SSTable.
pub struct SsTable {
    /// Process-unique id (block-cache key namespace).
    id: u64,
    data: SsData,
    index: Vec<IndexEntry>,
    bloom: BloomFilter,
    n_entries: u64,
    min_key: Bytes,
    max_key: Bytes,
    cache: Option<Arc<BlockCache>>,
}

impl std::fmt::Debug for SsTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsTable")
            .field("blocks", &self.index.len())
            .field("entries", &self.n_entries)
            .finish()
    }
}

impl SsTable {
    /// Opens an SSTable from in-memory bytes, uncached.
    pub fn open_mem(bytes: Bytes) -> Result<Arc<Self>> {
        Self::open(SsData::Mem(bytes), None)
    }

    /// Opens an SSTable from in-memory bytes with a shared block cache.
    pub fn open_mem_cached(bytes: Bytes, cache: Arc<BlockCache>) -> Result<Arc<Self>> {
        Self::open(SsData::Mem(bytes), Some(cache))
    }

    /// Opens an SSTable file from disk, uncached.
    pub fn open_file(path: &Path) -> Result<Arc<Self>> {
        let file = File::open(path)?;
        Self::open(SsData::File(Mutex::new(file)), None)
    }

    /// Opens an SSTable file from disk with a shared block cache.
    pub fn open_file_cached(path: &Path, cache: Arc<BlockCache>) -> Result<Arc<Self>> {
        let file = File::open(path)?;
        Self::open(SsData::File(Mutex::new(file)), Some(cache))
    }

    fn open(data: SsData, cache: Option<Arc<BlockCache>>) -> Result<Arc<Self>> {
        let total = data.len()?;
        if (total as usize) < FOOTER_LEN {
            return Err(KvError::corruption("sstable shorter than footer"));
        }
        let footer = data.read_at(total - FOOTER_LEN as u64, FOOTER_LEN)?;
        let u64_at = |i: usize| crate::codec::u64_le(&footer, i * 8, "sstable footer");
        let (index_off, index_len) = (u64_at(0)?, u64_at(1)?);
        let (bloom_off, bloom_len) = (u64_at(2)?, u64_at(3)?);
        let n_entries = u64_at(4)?;
        if u64_at(5)? != MAGIC {
            return Err(KvError::corruption("sstable bad magic"));
        }
        if index_off.checked_add(index_len).map_or(true, |e| e > total)
            || bloom_off.checked_add(bloom_len).map_or(true, |e| e > total)
        {
            return Err(KvError::corruption("sstable footer offsets out of range"));
        }

        // Index.
        let index_buf = data.read_at(index_off, index_len as usize)?;
        if index_buf.len() < 8 {
            return Err(KvError::corruption("sstable index truncated"));
        }
        let (body, _) = index_buf.split_at(index_buf.len() - 4);
        let stored = crate::codec::u32_le(&index_buf, index_buf.len() - 4, "sstable index crc")?;
        if crc32c(body) != stored {
            return Err(KvError::corruption("sstable index checksum mismatch"));
        }
        let n_blocks = crate::codec::u32_le(body, 0, "sstable index count")? as usize;
        let mut index = Vec::with_capacity(n_blocks);
        let mut pos = 4usize;
        for _ in 0..n_blocks {
            if pos + 4 > body.len() {
                return Err(KvError::corruption("sstable index entry truncated"));
            }
            let klen = crate::codec::u32_le(body, pos, "sstable index klen")? as usize;
            pos += 4;
            if pos + klen + 12 > body.len() {
                return Err(KvError::corruption("sstable index entry truncated"));
            }
            let last_key = Bytes::copy_from_slice(&body[pos..pos + klen]);
            pos += klen;
            let offset = crate::codec::u64_le(body, pos, "sstable index offset")?;
            pos += 8;
            let len = crate::codec::u32_le(body, pos, "sstable index block len")?;
            pos += 4;
            index.push(IndexEntry { last_key, offset, len });
        }
        if pos != body.len() {
            return Err(KvError::corruption("sstable index trailing bytes"));
        }

        // Bloom.
        let bloom_buf = data.read_at(bloom_off, bloom_len as usize)?;
        if bloom_buf.len() < 4 {
            return Err(KvError::corruption("sstable bloom section truncated"));
        }
        let (bloom_body, _) = bloom_buf.split_at(bloom_buf.len() - 4);
        let bloom_stored =
            crate::codec::u32_le(&bloom_buf, bloom_buf.len() - 4, "sstable bloom crc")?;
        if crc32c(bloom_body) != bloom_stored {
            return Err(KvError::corruption("sstable bloom checksum mismatch"));
        }
        let bloom = BloomFilter::decode(bloom_body)
            .ok_or_else(|| KvError::corruption("sstable bloom filter invalid"))?;

        // Min key: first key of first block (decode it once at open).
        let (min_key, max_key) = match (index.first(), index.last()) {
            (Some(first), Some(last)) => {
                let block = Block::decode(&data.read_at(first.offset, first.len as usize)?)?;
                let min = block.entries().first().map(|e| e.key.clone()).unwrap_or_default();
                (min, last.last_key.clone())
            }
            _ => (Bytes::new(), Bytes::new()),
        };

        Ok(Arc::new(SsTable {
            id: NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed),
            data,
            index,
            bloom,
            n_entries,
            min_key,
            max_key,
            cache,
        }))
    }

    /// Total logical entries (including tombstones).
    pub fn n_entries(&self) -> u64 {
        self.n_entries
    }

    /// Smallest key in the table.
    pub fn min_key(&self) -> &Bytes {
        &self.min_key
    }

    /// Largest key in the table.
    pub fn max_key(&self) -> &Bytes {
        &self.max_key
    }

    /// Number of data blocks.
    pub fn n_blocks(&self) -> usize {
        self.index.len()
    }

    fn read_block(&self, i: usize, metrics: &IoMetrics) -> Result<Arc<Block>> {
        let key = (self.id, i as u32);
        if let Some(cache) = &self.cache {
            if let Some(block) = cache.get(key) {
                metrics.record_cache_hit();
                return Ok(block);
            }
            metrics.record_cache_miss();
        }
        let e = &self.index[i];
        let raw = self.data.read_at(e.offset, e.len as usize)?;
        metrics.record_block_read(raw.len());
        let block = Arc::new(Block::decode(&raw)?);
        if let Some(cache) = &self.cache {
            cache.insert(key, Arc::clone(&block), raw.len());
        }
        Ok(block)
    }

    /// Index of the first block that may contain `key`.
    fn block_for(&self, key: &[u8]) -> usize {
        self.index.partition_point(|e| e.last_key.as_ref() < key)
    }

    /// Point lookup. Returns `Ok(None)` when absent, `Ok(Some(None))` for a
    /// tombstone, `Ok(Some(Some(v)))` for a live value.
    pub fn get(&self, key: &[u8], metrics: &IoMetrics) -> Result<Option<Option<Bytes>>> {
        if self.index.is_empty() || key < self.min_key.as_ref() || key > self.max_key.as_ref() {
            return Ok(None);
        }
        metrics.record_bloom_probe();
        if !self.bloom.may_contain(key) {
            metrics.record_bloom_skip();
            return Ok(None);
        }
        let bi = self.block_for(key);
        if bi >= self.index.len() {
            return Ok(None);
        }
        let block = self.read_block(bi, metrics)?;
        Ok(block.get(key).map(|e| e.value.clone()))
    }

    /// Creates an *owning* scan over `range`: it keeps the table and
    /// metrics alive itself, so it can outlive the store lock (used by
    /// snapshot scans).
    pub fn scan_owned(self: Arc<Self>, range: KeyRange, metrics: Arc<IoMetrics>) -> OwnedScan {
        let start_block =
            if self.index.is_empty() { 0 } else { self.block_for(range.start.as_ref()) };
        OwnedScan {
            table: self,
            metrics,
            range,
            next_block: start_block,
            current: None,
            pos: 0,
            done: false,
        }
    }

    /// Creates a scanning iterator over `range`.
    pub fn scan<'a>(
        self: &'a Arc<Self>,
        range: KeyRange,
        metrics: &'a IoMetrics,
    ) -> SsTableScan<'a> {
        let start_block =
            if self.index.is_empty() { 0 } else { self.block_for(range.start.as_ref()) };
        SsTableScan {
            table: self,
            metrics,
            range,
            next_block: start_block,
            current: None,
            pos: 0,
            done: false,
        }
    }
}

/// Iterator over the entries of one SSTable within a key range.
pub struct SsTableScan<'a> {
    table: &'a Arc<SsTable>,
    metrics: &'a IoMetrics,
    range: KeyRange,
    next_block: usize,
    current: Option<Arc<Block>>,
    pos: usize,
    done: bool,
}

impl Iterator for SsTableScan<'_> {
    type Item = Result<BlockEntry>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            if let Some(block) = &self.current {
                while self.pos < block.entries().len() {
                    let e = &block.entries()[self.pos];
                    self.pos += 1;
                    if e.key.as_ref() < self.range.start.as_ref() {
                        continue;
                    }
                    if let Some(end) = &self.range.end {
                        if e.key.as_ref() >= end.as_ref() {
                            self.done = true;
                            return None;
                        }
                    }
                    return Some(Ok(e.clone()));
                }
                self.current = None;
            }
            if self.next_block >= self.table.index.len() {
                self.done = true;
                return None;
            }
            match self.table.read_block(self.next_block, self.metrics) {
                Ok(block) => {
                    // Skip within the block to the range start.
                    self.pos = block.lower_bound(self.range.start.as_ref());
                    self.current = Some(block);
                    self.next_block += 1;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Owning variant of [`SsTableScan`]: holds `Arc`s instead of borrows so
/// snapshot scans can stream after the store lock is released.
pub struct OwnedScan {
    table: Arc<SsTable>,
    metrics: Arc<IoMetrics>,
    range: KeyRange,
    next_block: usize,
    current: Option<Arc<Block>>,
    pos: usize,
    done: bool,
}

impl Iterator for OwnedScan {
    type Item = Result<BlockEntry>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            if let Some(block) = &self.current {
                while self.pos < block.entries().len() {
                    let e = &block.entries()[self.pos];
                    self.pos += 1;
                    if e.key.as_ref() < self.range.start.as_ref() {
                        continue;
                    }
                    if let Some(end) = &self.range.end {
                        if e.key.as_ref() >= end.as_ref() {
                            self.done = true;
                            return None;
                        }
                    }
                    return Some(Ok(e.clone()));
                }
                self.current = None;
            }
            if self.next_block >= self.table.index.len() {
                self.done = true;
                return None;
            }
            match self.table.read_block(self.next_block, &self.metrics) {
                Ok(block) => {
                    self.pos = block.lower_bound(self.range.start.as_ref());
                    self.current = Some(block);
                    self.next_block += 1;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize, block_size: usize) -> Arc<SsTable> {
        let mut b = SsTableBuilder::new(block_size, 10);
        for i in 0..n {
            let key = format!("key-{i:06}");
            if i % 17 == 3 {
                b.add(key.as_bytes(), None); // sprinkle tombstones
            } else {
                let value = format!("value-{i}");
                b.add(key.as_bytes(), Some(value.as_bytes()));
            }
        }
        SsTable::open_mem(Bytes::from(b.finish())).unwrap()
    }

    #[test]
    fn point_lookups() {
        let t = build(1000, 512);
        let m = IoMetrics::default();
        assert_eq!(t.get(b"key-000042", &m).unwrap().unwrap().as_deref(), Some(&b"value-42"[..]));
        assert_eq!(t.get(b"key-000003", &m).unwrap(), Some(None), "tombstone visible");
        assert_eq!(t.get(b"key-999999", &m).unwrap(), None);
        assert_eq!(t.get(b"absent", &m).unwrap(), None);
    }

    #[test]
    fn min_max_keys() {
        let t = build(100, 256);
        assert_eq!(t.min_key().as_ref(), b"key-000000");
        assert_eq!(t.max_key().as_ref(), b"key-000099");
        assert_eq!(t.n_entries(), 100);
        assert!(t.n_blocks() > 1, "should span multiple blocks");
    }

    #[test]
    fn full_scan_returns_everything_in_order() {
        let t = build(500, 256);
        let m = IoMetrics::default();
        let entries: Vec<_> = t.scan(KeyRange::all(), &m).map(|e| e.unwrap()).collect();
        assert_eq!(entries.len(), 500);
        for w in entries.windows(2) {
            assert!(w[0].key < w[1].key);
        }
        assert!(m.blocks_read() as usize >= t.n_blocks());
    }

    #[test]
    fn range_scan_respects_bounds() {
        let t = build(1000, 512);
        let m = IoMetrics::default();
        let range = KeyRange::new(&b"key-000100"[..], &b"key-000200"[..]);
        let entries: Vec<_> = t.scan(range, &m).map(|e| e.unwrap()).collect();
        assert_eq!(entries.len(), 100);
        assert_eq!(entries[0].key.as_ref(), b"key-000100");
        assert_eq!(entries.last().unwrap().key.as_ref(), b"key-000199");
    }

    #[test]
    fn range_scan_skips_unneeded_blocks() {
        let t = build(10_000, 512);
        let m = IoMetrics::default();
        let range = KeyRange::new(&b"key-005000"[..], &b"key-005010"[..]);
        let n = t.scan(range, &m).count();
        assert_eq!(n, 10);
        assert!(
            (m.blocks_read() as usize) < t.n_blocks() / 10,
            "read {} of {} blocks",
            m.blocks_read(),
            t.n_blocks()
        );
    }

    #[test]
    fn bloom_avoids_block_reads_for_absent_keys() {
        let t = build(10_000, 512);
        let m = IoMetrics::default();
        for i in 0..1000 {
            // Absent keys *inside* the table's key range, so the min/max
            // check cannot short-circuit before the bloom filter.
            let key = format!("key-{i:06}x");
            let _ = t.get(key.as_bytes(), &m).unwrap();
        }
        assert!(m.bloom_skips() > 900, "bloom skips: {}", m.bloom_skips());
    }

    #[test]
    fn empty_table() {
        let t = SsTable::open_mem(Bytes::from(SsTableBuilder::new(4096, 10).finish())).unwrap();
        let m = IoMetrics::default();
        assert_eq!(t.n_entries(), 0);
        assert_eq!(t.get(b"x", &m).unwrap(), None);
        assert_eq!(t.scan(KeyRange::all(), &m).count(), 0);
    }

    #[test]
    fn corrupt_footer_rejected() {
        let mut bytes = {
            let mut b = SsTableBuilder::new(4096, 10);
            b.add(b"a", Some(b"1"));
            b.finish()
        };
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF; // clobber magic
        assert!(SsTable::open_mem(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn corrupt_index_rejected() {
        let mut bytes = {
            let mut b = SsTableBuilder::new(64, 10);
            for i in 0..100 {
                let k = format!("k{i:04}");
                b.add(k.as_bytes(), Some(b"v"));
            }
            b.finish()
        };
        // Index sits between data and footer; flip a byte near the end of
        // the data+index region.
        let n = bytes.len();
        bytes[n - FOOTER_LEN - 10] ^= 0xFF;
        assert!(SsTable::open_mem(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn file_backed_table_roundtrip() {
        let dir = std::env::temp_dir().join(format!("trass-kv-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.sst");
        let mut b = SsTableBuilder::new(256, 10);
        for i in 0..200 {
            let k = format!("key-{i:04}");
            let v = format!("val-{i}");
            b.add(k.as_bytes(), Some(v.as_bytes()));
        }
        std::fs::write(&path, b.finish()).unwrap();
        let t = SsTable::open_file(&path).unwrap();
        let m = IoMetrics::default();
        assert_eq!(t.get(b"key-0123", &m).unwrap().unwrap().as_deref(), Some(&b"val-123"[..]));
        assert_eq!(t.scan(KeyRange::all(), &m).count(), 200);
        std::fs::remove_dir_all(&dir).ok();
    }
}
