//! Bloom filter for SSTable point lookups.
//!
//! Standard double-hashing construction (Kirsch–Mitzenmacher): two base
//! hashes combined as `h1 + i·h2` simulate `k` independent hash functions.
//! Sized by bits-per-key like LevelDB's filter policy.

/// A serializable bloom filter over byte keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u8>,
    k: u8,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(data: &[u8], seed: u64) -> u64 {
    let mut h = FNV_OFFSET ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl BloomFilter {
    /// Builds a filter over `keys` with roughly `bits_per_key` bits per key.
    pub fn build<'a, I>(keys: I, n_keys: usize, bits_per_key: usize) -> Self
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        // k ≈ bits_per_key * ln2 rounded, clamped to a sane range.
        let k = ((bits_per_key as f64 * 0.69) as u8).clamp(1, 30);
        let n_bits = (n_keys * bits_per_key).max(64);
        let n_bytes = n_bits.div_ceil(8);
        let mut bits = vec![0u8; n_bytes];
        let n_bits = n_bytes * 8;
        for key in keys {
            let h1 = fnv1a(key, 0);
            let h2 = fnv1a(key, 1) | 1; // odd step to cover all positions
            let mut h = h1;
            for _ in 0..k {
                let bit = (h % n_bits as u64) as usize;
                bits[bit / 8] |= 1 << (bit % 8);
                h = h.wrapping_add(h2);
            }
        }
        BloomFilter { bits, k }
    }

    /// Returns `false` when `key` is definitely absent; `true` when it *may*
    /// be present.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let n_bits = self.bits.len() * 8;
        if n_bits == 0 {
            return true;
        }
        let h1 = fnv1a(key, 0);
        let h2 = fnv1a(key, 1) | 1;
        let mut h = h1;
        for _ in 0..self.k {
            let bit = (h % n_bits as u64) as usize;
            if self.bits[bit / 8] & (1 << (bit % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(h2);
        }
        true
    }

    /// Serializes the filter: `[k: u8][bits...]`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + self.bits.len());
        out.push(self.k);
        out.extend_from_slice(&self.bits);
        out
    }

    /// Deserializes a filter written by [`BloomFilter::encode`].
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let (&k, bits) = buf.split_first()?;
        if k == 0 || k > 30 {
            return None;
        }
        Some(BloomFilter { bits: bits.to_vec(), k })
    }

    /// Size of the encoded filter in bytes.
    pub fn encoded_len(&self) -> usize {
        1 + self.bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("key-{i:08}").into_bytes()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let ks = keys(10_000);
        let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), ks.len(), 10);
        for k in &ks {
            assert!(f.may_contain(k), "false negative for {k:?}");
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let ks = keys(10_000);
        let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), ks.len(), 10);
        let mut fp = 0;
        let probes = 10_000;
        for i in 0..probes {
            let k = format!("absent-{i:08}").into_bytes();
            if f.may_contain(&k) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        // 10 bits/key should give ~1 %; allow generous slack.
        assert!(rate < 0.05, "false positive rate {rate}");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ks = keys(100);
        let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), ks.len(), 8);
        let enc = f.encode();
        assert_eq!(enc.len(), f.encoded_len());
        let g = BloomFilter::decode(&enc).unwrap();
        assert_eq!(f, g);
        for k in &ks {
            assert!(g.may_contain(k));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BloomFilter::decode(&[]).is_none());
        assert!(BloomFilter::decode(&[0, 1, 2]).is_none()); // k = 0
        assert!(BloomFilter::decode(&[200, 1, 2]).is_none()); // k too large
    }

    #[test]
    fn empty_key_set() {
        let f = BloomFilter::build(std::iter::empty(), 0, 10);
        // May return false for anything — but must not panic.
        let _ = f.may_contain(b"whatever");
    }
}
