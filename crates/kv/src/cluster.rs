//! Sharded multi-region cluster emulation.
//!
//! The paper's deployment spreads trajectories over HBase regions via a
//! hash *shard* prefix in the rowkey (§IV-E):
//! `rowkey = shard + index value + tid`. The [`Cluster`] reproduces that
//! topology as one [`LsmStore`] per shard, routed by the first key byte.
//! Scans over multiple key ranges fan out across the owning regions —
//! optionally on parallel threads, standing in for the evaluation's five
//! region servers — and filter push-down runs inside each region, as a
//! coprocessor would.

use crate::error::{KvError, Result};
use crate::filter::{KeepAll, ScanFilter};
use crate::metrics::MetricsSnapshot;
use crate::store::{LsmStore, StoreOptions};
use crate::types::{Entry, KeyRange};
use bytes::Bytes;
use std::sync::Arc;
use std::time::Instant;
use trass_exec::ScopedPool;
use trass_obs::{Counter, Histogram, Registry, TraceSpan};

/// Cluster topology and per-region store tuning.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Number of shards (regions). The first byte of every rowkey must be
    /// in `0..shards`.
    pub shards: u8,
    /// Options applied to each region's store. When `dir` is set, region
    /// `i` stores under `dir/region-<i>`.
    pub store: StoreOptions,
    /// Fan scans out across a scoped worker pool, up to one worker per
    /// involved region. `false` forces every scan onto the calling thread.
    pub parallel_scans: bool,
    /// Worker budget for parallel scans: `0` uses the machine's available
    /// parallelism, `1` is exact sequential behavior (equivalent to
    /// `parallel_scans: false`), anything else caps the fan-out.
    pub scan_threads: usize,
    /// Observability registry shared by every region (each labelled with
    /// its shard). `None` creates a private one, reachable via
    /// [`Cluster::registry`].
    pub registry: Option<Arc<Registry>>,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            shards: 8,
            store: StoreOptions::default(),
            parallel_scans: true,
            scan_threads: 0,
            registry: None,
        }
    }
}

impl ClusterOptions {
    /// In-memory cluster with `shards` regions.
    pub fn in_memory(shards: u8) -> Self {
        ClusterOptions { shards, ..Self::default() }
    }
}

/// A sharded key-value cluster.
pub struct Cluster {
    regions: Vec<Arc<LsmStore>>,
    /// Per-region scan fan-out metrics, parallel to `regions`.
    scan_obs: Vec<RegionScanObs>,
    /// Scoped worker pool for multi-region scan fan-out.
    pool: ScopedPool,
    registry: Arc<Registry>,
    opts: ClusterOptions,
}

/// Fan-out accounting for one region: how many scan requests it served and
/// how long each took, resolved once at open.
struct RegionScanObs {
    scans: Arc<Counter>,
    seconds: Arc<Histogram>,
}

impl Cluster {
    /// Opens a cluster with the given topology.
    pub fn open(opts: ClusterOptions) -> Result<Self> {
        if opts.shards == 0 {
            return Err(KvError::invalid("cluster requires at least one shard"));
        }
        let registry = opts.registry.clone().unwrap_or_else(Registry::new_shared);
        let mut regions = Vec::with_capacity(opts.shards as usize);
        let mut scan_obs = Vec::with_capacity(opts.shards as usize);
        for i in 0..opts.shards {
            let mut store_opts = opts.store.clone();
            if let Some(dir) = &opts.store.dir {
                store_opts.dir = Some(dir.join(format!("region-{i}")));
            }
            store_opts.registry = Some(Arc::clone(&registry));
            store_opts.shard_label = Some(i.to_string());
            regions.push(Arc::new(LsmStore::open(store_opts)?));
            let shard = i.to_string();
            let labels = [("shard", shard.as_str())];
            scan_obs.push(RegionScanObs {
                scans: registry.counter("trass_kv_region_scans", &labels),
                seconds: registry.timer("trass_kv_region_scan_seconds", &labels),
            });
        }
        let pool_threads = if opts.parallel_scans { opts.scan_threads } else { 1 };
        let pool = ScopedPool::with_registry(pool_threads, &registry, "scan");
        Ok(Cluster { regions, scan_obs, pool, registry, opts })
    }

    /// The registry every region reports into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Mirrors each region's cumulative I/O counters into the shared
    /// registry as per-shard `trass_kv_*` counters. Call before scraping.
    pub fn publish_metrics(&self) {
        for r in &self.regions {
            r.publish_metrics();
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> u8 {
        self.opts.shards
    }

    fn region_of(&self, key: &[u8]) -> Result<&Arc<LsmStore>> {
        let shard = *key.first().ok_or_else(|| KvError::invalid("empty rowkey"))?;
        self.regions
            .get(shard as usize)
            .ok_or_else(|| KvError::invalid(format!("shard {shard} out of range")))
    }

    /// Writes a row; the first key byte selects the shard.
    pub fn put(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Result<()> {
        let key = key.into();
        self.region_of(&key)?.put(key, value.into())
    }

    /// Deletes a row.
    pub fn delete(&self, key: impl Into<Bytes>) -> Result<()> {
        let key = key.into();
        self.region_of(&key)?.delete(key)
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        self.region_of(key)?.get(key)
    }

    /// Scans a single key range (which must not cross shards — the schema's
    /// shard prefix guarantees this for rowkey ranges).
    pub fn scan(&self, range: KeyRange) -> Result<Vec<Entry>> {
        self.scan_ranges(std::slice::from_ref(&range), &KeepAll)
    }

    /// Scans many key ranges with a push-down filter, fanning out across
    /// the owning regions. Results are concatenated in (shard, key) order.
    pub fn scan_ranges(
        &self,
        ranges: &[KeyRange],
        filter: &(dyn ScanFilter + '_),
    ) -> Result<Vec<Entry>> {
        self.scan_ranges_traced(ranges, filter, &TraceSpan::disabled())
    }

    /// [`Cluster::scan_ranges`] recording one `region-scan` child span per
    /// involved shard under `parent`, with per-region row/byte/bloom/cache
    /// deltas. With a disabled parent this adds one branch per shard.
    pub fn scan_ranges_traced(
        &self,
        ranges: &[KeyRange],
        filter: &(dyn ScanFilter + '_),
        parent: &TraceSpan,
    ) -> Result<Vec<Entry>> {
        // Group ranges by owning shard. Ranges produced by the rowkey
        // schema carry a shard prefix and land on one shard; administrative
        // scans (e.g. `KeyRange::all()`) are split per shard.
        let mut per_shard: Vec<Vec<KeyRange>> = vec![Vec::new(); self.regions.len()];
        for range in ranges {
            if range.is_empty() {
                continue;
            }
            for (shard, bucket) in per_shard.iter_mut().enumerate() {
                let clipped = range.intersect(&KeyRange::prefix(vec![shard as u8]));
                if !clipped.is_empty() {
                    bucket.push(clipped);
                }
            }
        }

        let involved: Vec<usize> =
            (0..self.regions.len()).filter(|&i| !per_shard[i].is_empty()).collect();

        // Spans (and the fan-out counters) are opened here on the calling
        // thread, in ascending shard order, so the trace tree and counter
        // sequence are identical whatever the worker interleaving. Workers
        // only fill in the per-region results.
        let tasks: Vec<(usize, Option<(TraceSpan, MetricsSnapshot)>)> = involved
            .into_iter()
            .map(|shard| {
                self.scan_obs[shard].scans.inc();
                (shard, region_span(parent, shard, &per_shard[shard], &self.regions[shard]))
            })
            .collect();
        // The pool returns results in task order — ascending shard order —
        // so the concatenation below yields the exact byte sequence of a
        // sequential scan. A single involved region (or scan_threads = 1)
        // runs inline on the calling thread with no fan-out at all.
        let results: Vec<Result<Vec<Entry>>> = self.pool.run(tasks, |_, (shard, span)| {
            let region = &self.regions[shard];
            // Resource marks for the span's alloc/cpu fields, taken here
            // on the worker thread — the span was opened on the caller's
            // thread, so it cannot self-report these deltas at finish.
            let marks = span.as_ref().map(|_| {
                (trass_obs::alloc::thread_alloc_snapshot(), trass_obs::alloc::thread_cpu_ns())
            });
            let io_before = region.metrics().snapshot();
            let t = Instant::now();
            let r = scan_region(region, &per_shard[shard], filter);
            self.scan_obs[shard].seconds.record_duration(t.elapsed());
            // Attribute this scan's read bytes to the active stage
            // ("scan" for queries — the pool propagates the caller's
            // stage tag into this worker).
            trass_obs::alloc::charge_bytes_scanned(
                region.metrics().snapshot().since(&io_before).bytes_read,
            );
            finish_region_span(span, marks, region, &r);
            r
        });
        let mut out = Vec::new();
        for r in results {
            out.extend(r?);
        }
        Ok(out)
    }

    /// Aggregated I/O metrics across all regions.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.regions
            .iter()
            .map(|r| r.metrics().snapshot())
            .fold(MetricsSnapshot::default(), |acc, s| acc.plus(&s))
    }

    /// Resets every region's metrics.
    pub fn reset_metrics(&self) {
        for r in &self.regions {
            r.metrics().reset();
        }
    }

    /// Flushes every region's memtable.
    pub fn flush(&self) -> Result<()> {
        for r in &self.regions {
            r.flush()?;
        }
        Ok(())
    }

    /// Compacts every region.
    pub fn compact(&self) -> Result<()> {
        for r in &self.regions {
            r.compact()?;
        }
        Ok(())
    }

    /// Per-region live-row upper bounds, for skew diagnostics (Fig. 19).
    pub fn region_entry_counts(&self) -> Vec<u64> {
        self.regions.iter().map(|r| r.table_entries() + r.memtable_len() as u64).collect()
    }

    /// A self-contained closure doing [`Cluster::publish_metrics`],
    /// holding its own region handles — the telemetry endpoint's refresh
    /// hook, runnable without borrowing the cluster.
    pub fn metrics_publisher(&self) -> Arc<dyn Fn() + Send + Sync> {
        let regions: Vec<Arc<LsmStore>> = self.regions.clone();
        Arc::new(move || {
            for r in &regions {
                r.publish_metrics();
            }
        })
    }

    /// Registers this cluster's health probes on `health` (served by the
    /// telemetry endpoint's `/healthz` and `/readyz`):
    ///
    /// * `kv-regions` — every region's [`LsmStore::health`] (data dir
    ///   present and writable, WAL alive, compaction keeping up). The
    ///   first failing shard wins and is named in the report.
    /// * `kv-scan-pool` — the scan pool's queue depth stays under
    ///   `4 × shards` (deeper means fan-out is outrunning the workers).
    pub fn register_health_probes(&self, health: &trass_obs::HealthRegistry) {
        let regions: Vec<Arc<LsmStore>> = self.regions.clone();
        health.register("kv-regions", move || {
            for (shard, region) in regions.iter().enumerate() {
                if let Err(e) = region.health() {
                    return Err(format!("shard {shard}: {e}"));
                }
            }
            Ok(())
        });
        let max_queue = (self.regions.len() as i64) * 4;
        self.pool.register_health_probe(health, "kv-scan-pool", max_queue);
    }
}

/// Opens a per-region trace span, capturing the region's I/O counters so
/// [`finish_region_span`] can record the scan's deltas. `None` (no work at
/// all) when the parent span is disabled.
fn region_span(
    parent: &TraceSpan,
    shard: usize,
    ranges: &[KeyRange],
    region: &LsmStore,
) -> Option<(TraceSpan, MetricsSnapshot)> {
    if !parent.is_enabled() {
        return None;
    }
    let mut span = parent.child("region-scan");
    span.set_label("shard", &shard.to_string());
    span.set_field("ranges", ranges.len());
    Some((span, region.metrics().snapshot()))
}

/// Records the scan's per-region I/O deltas and row count into the span
/// opened by [`region_span`]. Deltas are computed from the region's shared
/// counters, so concurrent queries on the same region can inflate them;
/// rows_returned comes from this scan's own result and is exact. `marks`
/// carries the worker thread's alloc/CPU readings from just before the
/// scan, recorded as explicit `alloc_bytes`/`allocs`/`cpu_ns` fields.
fn finish_region_span(
    span: Option<(TraceSpan, MetricsSnapshot)>,
    marks: Option<(trass_obs::alloc::AllocSnapshot, Option<u64>)>,
    region: &LsmStore,
    result: &Result<Vec<Entry>>,
) {
    let Some((mut span, before)) = span else { return };
    let delta = region.metrics().snapshot().since(&before);
    span.set_field("rows_scanned", delta.entries_scanned);
    match result {
        Ok(entries) => span.set_field("rows_returned", entries.len()),
        Err(e) => span.set_field("error", e.to_string()),
    }
    span.set_field("bytes_read", delta.bytes_read);
    span.set_field("blocks_read", delta.blocks_read);
    span.set_field("bloom_probes", delta.bloom_probes);
    span.set_field("cache_hits", delta.cache_hits);
    span.set_field("cache_misses", delta.cache_misses);
    if let Some((alloc_before, cpu_before)) = marks {
        if trass_obs::alloc::allocator_installed() {
            let d = trass_obs::alloc::thread_alloc_snapshot().since(&alloc_before);
            span.set_field("alloc_bytes", d.bytes);
            span.set_field("allocs", d.count);
        }
        if let (Some(c0), Some(c1)) = (cpu_before, trass_obs::alloc::thread_cpu_ns()) {
            span.set_field("cpu_ns", c1.saturating_sub(c0));
        }
    }
    span.finish();
}

fn scan_region(
    region: &LsmStore,
    ranges: &[KeyRange],
    filter: &(dyn ScanFilter + '_),
) -> Result<Vec<Entry>> {
    let mut out = Vec::new();
    for range in ranges {
        out.extend(region.scan_filtered(range.clone(), filter)?);
    }
    Ok(out)
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster").field("shards", &self.opts.shards).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::FilterDecision;

    fn key(shard: u8, rest: &str) -> Vec<u8> {
        let mut k = vec![shard];
        k.extend_from_slice(rest.as_bytes());
        k
    }

    fn cluster(shards: u8) -> Cluster {
        Cluster::open(ClusterOptions {
            shards,
            store: StoreOptions { memtable_bytes: 1 << 14, ..StoreOptions::in_memory() },
            ..ClusterOptions::default()
        })
        .unwrap()
    }

    #[test]
    fn routing_by_first_byte() {
        let c = cluster(4);
        for shard in 0..4u8 {
            for i in 0..25 {
                c.put(key(shard, &format!("k{i:03}")), format!("v{shard}-{i}")).unwrap();
            }
        }
        assert_eq!(c.get(&key(2, "k007")).unwrap().as_deref(), Some(&b"v2-7"[..]));
        let counts = c.region_entry_counts();
        assert_eq!(counts.len(), 4);
        assert!(counts.iter().all(|&n| n == 25), "counts: {counts:?}");
    }

    #[test]
    fn shard_out_of_range_rejected() {
        let c = cluster(2);
        assert!(c.put(key(5, "x"), "v").is_err());
        assert!(c.get(&key(5, "x")).is_err());
        assert!(c.put(Vec::new(), "v").is_err());
    }

    #[test]
    fn multi_range_scan_fans_out() {
        let c = cluster(4);
        for shard in 0..4u8 {
            for i in 0..100 {
                c.put(key(shard, &format!("k{i:03}")), "v").unwrap();
            }
        }
        let ranges = vec![
            KeyRange::new(key(0, "k010"), key(0, "k020")),
            KeyRange::new(key(2, "k050"), key(2, "k055")),
            KeyRange::new(key(3, "k000"), key(3, "k001")),
        ];
        let entries = c.scan_ranges(&ranges, &KeepAll).unwrap();
        assert_eq!(entries.len(), 10 + 5 + 1);
    }

    #[test]
    fn filter_pushdown_applies_per_region() {
        let c = cluster(3);
        for shard in 0..3u8 {
            for i in 0..30 {
                c.put(key(shard, &format!("k{i:03}")), format!("{i}")).unwrap();
            }
        }
        let even = |_k: &[u8], v: &[u8]| {
            let i: u32 = std::str::from_utf8(v).unwrap().parse().unwrap();
            if i % 2 == 0 {
                FilterDecision::Keep
            } else {
                FilterDecision::Skip
            }
        };
        let ranges: Vec<KeyRange> = (0..3u8).map(|s| KeyRange::prefix(vec![s])).collect();
        let entries = c.scan_ranges(&ranges, &even).unwrap();
        assert_eq!(entries.len(), 45);
        let m = c.metrics_snapshot();
        assert_eq!(m.entries_scanned, 90);
        assert_eq!(m.entries_returned, 45);
    }

    #[test]
    fn metrics_aggregate_and_reset() {
        let c = cluster(2);
        c.put(key(0, "a"), "1").unwrap();
        c.put(key(1, "b"), "2").unwrap();
        c.flush().unwrap();
        let _ = c.scan(KeyRange::prefix(vec![0u8])).unwrap();
        let _ = c.scan(KeyRange::prefix(vec![1u8])).unwrap();
        let m = c.metrics_snapshot();
        assert_eq!(m.entries_scanned, 2);
        assert!(m.blocks_read >= 2);
        c.reset_metrics();
        assert_eq!(c.metrics_snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn scan_fanout_reports_per_region() {
        let c = cluster(4);
        for shard in 0..4u8 {
            for i in 0..50 {
                c.put(key(shard, &format!("k{i:03}")), "v").unwrap();
            }
        }
        // Touch shards 0 and 2 only.
        let ranges = vec![
            KeyRange::new(key(0, "k000"), key(0, "k999")),
            KeyRange::new(key(2, "k000"), key(2, "k999")),
        ];
        let _ = c.scan_ranges(&ranges, &KeepAll).unwrap();
        let r = c.registry();
        assert_eq!(r.counter("trass_kv_region_scans", &[("shard", "0")]).get(), 1);
        assert_eq!(r.counter("trass_kv_region_scans", &[("shard", "1")]).get(), 0);
        assert_eq!(r.counter("trass_kv_region_scans", &[("shard", "2")]).get(), 1);
        assert_eq!(r.timer("trass_kv_region_scan_seconds", &[("shard", "0")]).count(), 1);
        // Publishing mirrors per-shard I/O counters into the same registry.
        c.publish_metrics();
        assert_eq!(r.counter("trass_kv_entries_scanned", &[("shard", "0")]).get(), 50);
        assert_eq!(r.counter("trass_kv_entries_scanned", &[("shard", "1")]).get(), 0);
        // All regions share one registry and label themselves by shard.
        let text = r.render_prometheus();
        assert!(text.contains("trass_kv_region_scans{shard=\"2\"} 1"));
    }

    #[test]
    fn traced_scan_records_one_span_per_involved_region() {
        use trass_obs::TraceCtx;
        let c = cluster(4);
        for shard in 0..4u8 {
            for i in 0..20 {
                c.put(key(shard, &format!("k{i:03}")), "v").unwrap();
            }
        }
        let ranges = vec![
            KeyRange::new(key(0, "k000"), key(0, "k010")),
            KeyRange::new(key(3, "k000"), key(3, "k005")),
        ];
        let ctx = TraceCtx::enabled();
        let root = ctx.root("scan");
        let entries = c.scan_ranges_traced(&ranges, &KeepAll, &root).unwrap();
        root.finish();
        let t = ctx.finish().unwrap();
        assert_eq!(entries.len(), 15);
        // Parallel fan-out: span start order is nondeterministic, so key
        // the assertions by shard label.
        let mut spans: Vec<_> = t.root.children_named("region-scan").collect();
        spans.sort_by_key(|s| s.label("shard").unwrap().to_string());
        assert_eq!(spans.len(), 2);
        let shards: Vec<&str> = spans.iter().map(|s| s.label("shard").unwrap()).collect();
        assert_eq!(shards, vec!["0", "3"]);
        assert_eq!(spans[0].field_u64("rows_scanned"), Some(10));
        assert_eq!(spans[0].field_u64("rows_returned"), Some(10));
        assert_eq!(spans[1].field_u64("rows_returned"), Some(5));
    }

    #[test]
    fn single_shard_cluster_works() {
        let c = cluster(1);
        for i in 0..50 {
            c.put(key(0, &format!("k{i:03}")), "v").unwrap();
        }
        assert_eq!(c.scan(KeyRange::all()).unwrap().len(), 50);
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(Cluster::open(ClusterOptions::in_memory(0)).is_err());
    }

    #[test]
    fn health_probes_cover_regions_and_scan_pool() {
        let c = cluster(3);
        let health = trass_obs::HealthRegistry::new();
        c.register_health_probes(&health);
        let names: Vec<String> = health.check().into_iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["kv-regions".to_string(), "kv-scan-pool".to_string()]);
        assert!(health.healthy(), "fresh in-memory cluster must be healthy");
    }

    #[test]
    fn region_probe_names_the_failing_shard() {
        let dir = std::env::temp_dir().join(format!("trass-cluster-health-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let c = Cluster::open(ClusterOptions {
            shards: 3,
            store: StoreOptions::at_dir(&dir),
            ..ClusterOptions::default()
        })
        .unwrap();
        let health = trass_obs::HealthRegistry::new();
        c.register_health_probes(&health);
        assert!(health.healthy(), "fresh disk cluster must be healthy");
        // Yank one region's directory: the probe must fail and say which
        // shard is broken.
        std::fs::remove_dir_all(dir.join("region-1")).unwrap();
        let reports = health.check();
        let err = reports[0].result.as_ref().expect_err("missing region dir must fail");
        assert!(err.contains("shard 1"), "{err}");
        drop(c);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_cluster_roundtrip() {
        let dir = std::env::temp_dir().join(format!("trass-cluster-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let opts = ClusterOptions {
            shards: 2,
            store: StoreOptions::at_dir(&dir),
            parallel_scans: false,
            ..ClusterOptions::default()
        };
        {
            let c = Cluster::open(opts.clone()).unwrap();
            c.put(key(0, "x"), "1").unwrap();
            c.put(key(1, "y"), "2").unwrap();
        }
        {
            let c = Cluster::open(opts).unwrap();
            assert_eq!(c.get(&key(0, "x")).unwrap().as_deref(), Some(&b"1"[..]));
            assert_eq!(c.get(&key(1, "y")).unwrap().as_deref(), Some(&b"2"[..]));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
