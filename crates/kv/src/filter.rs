//! Server-side scan filters ("coprocessor push-down").
//!
//! TraSS pushes its local filtering (Algorithm 2) into HBase coprocessors
//! so dissimilar trajectories are discarded *inside* the region server. The
//! store mirrors that: a [`ScanFilter`] runs against every row a scan
//! visits, and only surviving rows are materialized into results. The scan
//! metrics distinguish rows *visited* from rows *returned*, which is
//! exactly the paper's retrieved-vs-candidates accounting (Fig. 11).

/// Outcome of filtering one row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterDecision {
    /// Keep the row in the scan result.
    Keep,
    /// Drop the row and continue scanning.
    Skip,
    /// Drop the row and stop this range scan early (e.g. a top-k scan whose
    /// bound proves nothing further can qualify).
    Stop,
}

/// A predicate applied inside the store during scans.
///
/// Implementations must be `Send + Sync`: the cluster fans scans out across
/// region threads.
pub trait ScanFilter: Send + Sync {
    /// Decides the fate of one row.
    fn check(&self, key: &[u8], value: &[u8]) -> FilterDecision;
}

/// A filter that keeps every row (the default for plain scans).
#[derive(Debug, Clone, Copy, Default)]
pub struct KeepAll;

impl ScanFilter for KeepAll {
    fn check(&self, _key: &[u8], _value: &[u8]) -> FilterDecision {
        FilterDecision::Keep
    }
}

impl<F> ScanFilter for F
where
    F: Fn(&[u8], &[u8]) -> FilterDecision + Send + Sync,
{
    fn check(&self, key: &[u8], value: &[u8]) -> FilterDecision {
        self(key, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_all_keeps() {
        assert_eq!(KeepAll.check(b"k", b"v"), FilterDecision::Keep);
    }

    #[test]
    fn closures_are_filters() {
        let f = |key: &[u8], _v: &[u8]| {
            if key.starts_with(b"a") {
                FilterDecision::Keep
            } else {
                FilterDecision::Skip
            }
        };
        assert_eq!(f.check(b"abc", b""), FilterDecision::Keep);
        assert_eq!(f.check(b"xyz", b""), FilterDecision::Skip);
    }
}
