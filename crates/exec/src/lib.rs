//! Intra-query parallel execution for TraSS.
//!
//! The query pipeline (global pruning → region scans → local filtering →
//! refinement) is embarrassingly parallel across both the sharded rowkey
//! space (§IV-E) and the refinement candidate set, but parallel execution
//! only pays off when it leaves the *semantics* of the sequential pipeline
//! untouched. This crate provides the two primitives the pipeline uses to
//! get speed without giving up determinism:
//!
//! * [`ScopedPool`] — a scoped worker pool: tasks borrow from the caller's
//!   stack, workers live exactly as long as one [`ScopedPool::run`] call,
//!   and results come back **in task order** no matter which worker ran
//!   which task. Sequential fallback (`threads == 1`, or a single task) is
//!   byte-identical to a plain loop.
//! * [`TopKBound`] — a shared, atomically readable distance bound fed by a
//!   bounded max-heap of the best results so far. Refine workers read it
//!   with one atomic load and use it to stop measuring candidates that can
//!   no longer make the top-k ("early-exit propagation").
//!
//! Everything here is std-only; observability hooks report into a
//! [`trass_obs::Registry`] when one is attached.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use trass_obs::{Counter, Gauge, Registry};

/// Resolves a configured thread count: `0` means "use all available
/// parallelism", anything else is taken literally.
pub fn resolve_threads(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Registry handles for a pool's instrumentation, resolved once at
/// construction so recording on the hot path is a single atomic op.
struct PoolObs {
    /// Tasks submitted but not yet claimed by a worker.
    queue_depth: Arc<Gauge>,
    /// Total tasks ever submitted to this pool.
    tasks_total: Arc<Counter>,
}

/// The outcome of one [`ScopedPool::run_timed`] call.
#[derive(Debug)]
pub struct PoolRun<R> {
    /// Per-task results, in task order.
    pub results: Vec<R>,
    /// Busy wall-clock time of each worker that participated (length =
    /// number of workers actually spawned; a single entry for the
    /// sequential fallback).
    pub worker_busy: Vec<Duration>,
}

/// A scoped worker pool.
///
/// "Scoped" in the [`std::thread::scope`] sense: workers are spawned for
/// one `run` call, may borrow non-`'static` state from the caller (query
/// objects, filters, trace spans), and are all joined before `run`
/// returns. There is no task queue outliving a call and no shutdown
/// protocol — the pool object itself is just a thread budget plus metric
/// handles, so it is cheap to keep on a store and share across queries.
///
/// # Ordering guarantee
///
/// `run` returns results **indexed by task**, not by completion order.
/// Combined with a deterministic task list this makes the parallel
/// execution observationally identical to the sequential one: callers that
/// concatenate results get the exact byte sequence a `threads = 1` run
/// produces.
///
/// # Panics
///
/// A panicking task propagates its panic to the caller once every worker
/// has finished (via [`std::thread::scope`]'s join-on-exit), never
/// silently dropping sibling results into an inconsistent state.
pub struct ScopedPool {
    threads: usize,
    obs: Option<PoolObs>,
}

impl ScopedPool {
    /// A pool running `threads` workers per call (`0` = available
    /// parallelism), without registry instrumentation.
    pub fn new(threads: usize) -> Self {
        ScopedPool { threads: resolve_threads(threads).max(1), obs: None }
    }

    /// A pool reporting `trass_pool_queue_depth` / `trass_pool_tasks_total`
    /// into `registry`, labelled `pool=<name>` so several pools (scan,
    /// refine) can share one registry.
    pub fn with_registry(threads: usize, registry: &Registry, name: &str) -> Self {
        let labels = [("pool", name)];
        ScopedPool {
            threads: resolve_threads(threads).max(1),
            obs: Some(PoolObs {
                queue_depth: registry.gauge("trass_pool_queue_depth", &labels),
                tasks_total: registry.counter("trass_pool_tasks_total", &labels),
            }),
        }
    }

    /// The number of workers a `run` call may spawn.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Registers a readiness probe named `name` on `health` that fails
    /// when the pool's queue depth exceeds `max_queue` — a saturated pool
    /// means queries are arriving faster than workers drain them, which an
    /// orchestrator should see on `/readyz` before latency SLOs burn.
    ///
    /// No-op for uninstrumented pools (no registry attached): with no
    /// gauge to read there is nothing to probe.
    pub fn register_health_probe(
        &self,
        health: &trass_obs::HealthRegistry,
        name: &str,
        max_queue: i64,
    ) {
        let Some(obs) = &self.obs else { return };
        let depth = Arc::clone(&obs.queue_depth);
        health.register(name, move || {
            let d = depth.get();
            if d > max_queue {
                Err(format!("pool queue depth {d} exceeds {max_queue}"))
            } else {
                Ok(())
            }
        });
    }

    /// Runs `f` over every item, returning results in item order. See
    /// [`ScopedPool::run_timed`] for the full contract.
    pub fn run<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.run_timed(items, f).results
    }

    /// Runs `f(index, item)` over every item on up to
    /// `min(threads, items.len())` scoped workers and returns the results
    /// in item order, together with each worker's busy time.
    ///
    /// With one worker (or zero/one items) the items are processed inline
    /// on the calling thread in order — the exact legacy sequential
    /// behavior, with no thread spawned at all.
    pub fn run_timed<T, R, F>(&self, items: Vec<T>, f: F) -> PoolRun<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if let Some(obs) = &self.obs {
            obs.tasks_total.add(n as u64);
        }
        let workers = self.threads.min(n);
        if workers <= 1 {
            let t0 = Instant::now();
            let results = items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
            return PoolRun { results, worker_busy: vec![t0.elapsed()] };
        }

        // The caller's stage tag (e.g. "refine") is thread-local, so
        // spawned workers would otherwise account their allocations and
        // CPU to stage "other". Capture it here and re-enter it on each
        // worker for the whole claim loop, making resource attribution
        // identical to the inline fallback above (which already runs
        // under the caller's tag).
        let stage = trass_obs::alloc::current_stage();

        // Each slot is claimed by exactly one worker (the atomic cursor
        // hands out indices), so the mutexes are uncontended — they exist
        // to move values across the scope without unsafe code.
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let busy: Vec<Mutex<Duration>> = (0..workers).map(|_| Mutex::new(Duration::ZERO)).collect();
        let cursor = AtomicUsize::new(0);
        if let Some(obs) = &self.obs {
            obs.queue_depth.add(n as i64);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let slots = &slots;
                    let results = &results;
                    let busy = &busy;
                    let cursor = &cursor;
                    let f = &f;
                    let obs = &self.obs;
                    scope.spawn(move || {
                        let _stage = trass_obs::alloc::StageGuard::enter(stage);
                        let t0 = Instant::now();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            if let Some(obs) = obs {
                                obs.queue_depth.add(-1);
                            }
                            // The ticket counter hands each index to exactly
                            // one worker: trass-lint: allow(unwrap)
                            let item = lock(&slots[i]).take().expect("task claimed twice");
                            let r = f(i, item);
                            *lock(&results[i]) = Some(r);
                        }
                        *lock(&busy[w]) = t0.elapsed();
                    })
                })
                .collect();
            // Join explicitly so a task panic reaches the caller with its
            // original payload instead of scope's generic message.
            let panics: Vec<_> = handles.into_iter().filter_map(|h| h.join().err()).collect();
            if let Some(payload) = panics.into_iter().next() {
                std::panic::resume_unwind(payload);
            }
        });
        PoolRun {
            results: results
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        // scope join guarantees every claimed slot was
                        // filled: trass-lint: allow(unwrap)
                        .expect("worker completed every claimed task")
                })
                .collect(),
            worker_busy: busy
                .into_iter()
                .map(|d| d.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner))
                .collect(),
        }
    }
}

impl std::fmt::Debug for ScopedPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopedPool")
            .field("threads", &self.threads)
            .field("instrumented", &self.obs.is_some())
            .finish()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// `f64` ordered by `total_cmp` for use in a [`BinaryHeap`].
#[derive(Debug, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A shared top-k distance bound for refine early exit.
///
/// Workers verifying candidates in parallel [`offer`](TopKBound::offer)
/// every exact distance they compute; the bound tracks the k-th best
/// distance seen so far (`+∞` until `k` results exist) behind a bounded
/// max-heap, and mirrors it into an atomic so readers on the hot path pay
/// one load, no lock.
///
/// # Soundness / determinism
///
/// The bound is **monotonically non-increasing** and always ≥ the true
/// k-th best distance of the full candidate set (it is the k-th best of a
/// subset). A candidate skipped because its distance exceeds the bound
/// therefore can never belong to the final top-k, so the *final ranked
/// top-k is identical* for every thread count and interleaving — only the
/// set of also-ran distances that get fully measured varies.
#[derive(Debug)]
pub struct TopKBound {
    k: usize,
    /// Max-heap of the k smallest distances offered so far.
    heap: Mutex<BinaryHeap<OrdF64>>,
    /// Bit pattern of the current bound (`f64::INFINITY` until full).
    bound_bits: AtomicU64,
}

impl TopKBound {
    /// A bound tracking the `k` smallest offered distances. `k == 0`
    /// pins the bound at zero — nothing can qualify.
    pub fn new(k: usize) -> Self {
        let initial = if k == 0 { 0.0 } else { f64::INFINITY };
        TopKBound {
            k,
            heap: Mutex::new(BinaryHeap::new()),
            bound_bits: AtomicU64::new(initial.to_bits()),
        }
    }

    /// The current bound: the k-th smallest distance offered so far, or
    /// `+∞` while fewer than `k` have been offered.
    pub fn current(&self) -> f64 {
        f64::from_bits(self.bound_bits.load(Ordering::Acquire))
    }

    /// The effective refine threshold given the query's `eps`: the tighter
    /// of the two. Refinement prunes and abandons against this value — the
    /// bound is always ≥ the true k-th best distance, so anything skipped
    /// is provably outside both the threshold and the final top-k.
    pub fn effective(&self, eps: f64) -> f64 {
        self.current().min(eps)
    }

    /// Records an exact distance. NaNs are ignored (a NaN distance is a
    /// measure bug, not a result).
    pub fn offer(&self, distance: f64) {
        if self.k == 0 || distance.is_nan() || distance >= self.current() {
            return;
        }
        let mut heap = lock(&self.heap);
        heap.push(OrdF64(distance));
        if heap.len() > self.k {
            heap.pop();
        }
        if heap.len() == self.k {
            if let Some(OrdF64(worst)) = heap.peek() {
                // Published under the heap lock; `current` may briefly read
                // a stale (looser) bound, which is always sound.
                self.bound_bits.store(worst.to_bits(), Ordering::Release);
            }
        }
    }
}

// The unit-test binary installs the counting allocator so the stage
// attribution tests below observe real allocation counts.
#[cfg(test)]
#[global_allocator]
static TEST_ALLOC: trass_obs::CountingAlloc = trass_obs::CountingAlloc::system();

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn resolve_threads_zero_means_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn results_come_back_in_task_order() {
        let pool = ScopedPool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.run(items, |i, item| {
            assert_eq!(i, item);
            // Stagger completion so late tasks finish first.
            if i % 7 == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
            item * 2
        });
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_runs_inline() {
        let pool = ScopedPool::new(1);
        let caller = std::thread::current().id();
        let out = pool.run(vec![1, 2, 3], |_, x| {
            assert_eq!(std::thread::current().id(), caller);
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn single_item_runs_inline_even_with_many_threads() {
        let pool = ScopedPool::new(8);
        let caller = std::thread::current().id();
        let out = pool.run(vec![9], |_, x: i32| {
            assert_eq!(std::thread::current().id(), caller);
            x
        });
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = ScopedPool::new(5);
        let ran = AtomicUsize::new(0);
        let out = pool.run((0..1000).collect(), |_, i: usize| {
            ran.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn tasks_may_borrow_caller_state() {
        let pool = ScopedPool::new(4);
        let shared = vec![10u64, 20, 30, 40];
        let out = pool.run((0..4).collect(), |_, i: usize| shared[i]);
        assert_eq!(out, shared);
    }

    #[test]
    fn worker_busy_reported_per_worker() {
        let pool = ScopedPool::new(3);
        let run = pool.run_timed((0..30).collect(), |_, i: usize| i);
        assert_eq!(run.worker_busy.len(), 3);
        let run = ScopedPool::new(1).run_timed(vec![1], |_, x: i32| x);
        assert_eq!(run.worker_busy.len(), 1);
    }

    #[test]
    fn empty_input_is_empty_output() {
        let pool = ScopedPool::new(4);
        let out: Vec<i32> = pool.run(Vec::<i32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "task 3 exploded")]
    fn task_panics_propagate() {
        let pool = ScopedPool::new(4);
        let _ = pool.run((0..8).collect(), |_, i: usize| {
            if i == 3 {
                panic!("task 3 exploded");
            }
            i
        });
    }

    #[test]
    fn registry_instruments_report() {
        let registry = Registry::new();
        let pool = ScopedPool::with_registry(4, &registry, "test");
        let _ = pool.run((0..50).collect(), |_, i: usize| i);
        let labels = [("pool", "test")];
        assert_eq!(registry.counter("trass_pool_tasks_total", &labels).get(), 50);
        // Every submitted task was drained.
        assert_eq!(registry.gauge("trass_pool_queue_depth", &labels).get(), 0);
    }

    #[test]
    fn health_probe_tracks_queue_depth() {
        let registry = Registry::new();
        let pool = ScopedPool::with_registry(2, &registry, "probe-test");
        let health = trass_obs::HealthRegistry::new();
        pool.register_health_probe(&health, "scan-pool", 10);
        assert!(health.healthy(), "idle pool must be healthy");
        // Saturate the gauge directly: the probe reads whatever the pool's
        // queue-depth handle says, it does not re-derive it.
        let depth = registry.gauge("trass_pool_queue_depth", &[("pool", "probe-test")]);
        depth.set(11);
        let reports = health.check();
        assert_eq!(reports.len(), 1);
        let err = reports[0].result.as_ref().expect_err("saturated pool must fail");
        assert!(err.contains("11"), "{err}");
        depth.set(0);
        assert!(health.healthy(), "drained pool must recover");
        // Uninstrumented pools register nothing.
        let bare = ScopedPool::new(2);
        let empty = trass_obs::HealthRegistry::new();
        bare.register_health_probe(&empty, "noop", 1);
        assert!(empty.is_empty());
    }

    /// The satellite regression test: allocations performed *inside*
    /// pool tasks are attributed to the caller's active stage, and the
    /// task-level totals are identical whether the pool runs inline
    /// (1 thread) or fans out (4 threads).
    #[test]
    fn stage_tag_propagates_to_workers_at_any_thread_count() {
        use trass_obs::alloc::{stage_id, stage_totals, thread_alloc_snapshot, StageGuard};
        let stage = stage_id("exec-attrib-test");
        let attributed = |threads: usize| {
            let pool = ScopedPool::new(threads);
            let before = stage_totals(stage);
            let per_task: Vec<u64> = {
                let _g = StageGuard::enter(stage);
                pool.run((0..8).collect(), |_, i: usize| {
                    let snap = thread_alloc_snapshot();
                    let v: Vec<u8> = Vec::with_capacity(64 * 1024 + i);
                    let d = thread_alloc_snapshot().since(&snap);
                    drop(v);
                    d.bytes
                })
            };
            let stage_bytes = stage_totals(stage).alloc_bytes - before.alloc_bytes;
            (per_task.iter().sum::<u64>(), stage_bytes)
        };
        let (task_total_seq, stage_seq) = attributed(1);
        let (task_total_par, stage_par) = attributed(4);
        // Identical attribution totals at 1 and 4 threads …
        assert_eq!(task_total_seq, task_total_par);
        assert_eq!(task_total_seq, (0..8u64).map(|i| 64 * 1024 + i).sum::<u64>());
        // … and the task allocations landed in the propagated stage
        // (without propagation the 4-thread run would charge `other`).
        assert!(stage_seq >= task_total_seq, "{stage_seq} < {task_total_seq}");
        assert!(stage_par >= task_total_par, "{stage_par} < {task_total_par}");
    }

    #[test]
    fn bound_is_infinite_until_k_offers() {
        let b = TopKBound::new(3);
        assert_eq!(b.current(), f64::INFINITY);
        b.offer(5.0);
        b.offer(1.0);
        assert_eq!(b.current(), f64::INFINITY);
        b.offer(3.0);
        assert_eq!(b.current(), 5.0);
    }

    #[test]
    fn bound_tightens_monotonically() {
        let b = TopKBound::new(2);
        b.offer(10.0);
        b.offer(8.0);
        assert_eq!(b.current(), 10.0);
        b.offer(9.0); // worse than current 2nd best? no: replaces 10
        assert_eq!(b.current(), 9.0);
        b.offer(1.0);
        assert_eq!(b.current(), 8.0);
        b.offer(50.0); // worse than bound: ignored
        assert_eq!(b.current(), 8.0);
    }

    #[test]
    fn zero_k_bound_is_zero() {
        let b = TopKBound::new(0);
        assert_eq!(b.current(), 0.0);
        b.offer(1.0);
        assert_eq!(b.current(), 0.0);
    }

    #[test]
    fn effective_is_the_tighter_of_bound_and_eps() {
        let b = TopKBound::new(1);
        assert_eq!(b.effective(0.5), 0.5, "unfilled bound defers to eps");
        assert_eq!(b.effective(f64::INFINITY), f64::INFINITY);
        b.offer(2.0);
        assert_eq!(b.effective(5.0), 2.0, "tight bound wins");
        assert_eq!(b.effective(1.0), 1.0, "tight eps wins");
    }

    #[test]
    fn nan_offers_are_ignored() {
        let b = TopKBound::new(1);
        b.offer(f64::NAN);
        assert_eq!(b.current(), f64::INFINITY);
        b.offer(2.0);
        assert_eq!(b.current(), 2.0);
    }

    #[test]
    fn concurrent_offers_converge_to_true_kth_best() {
        let b = Arc::new(TopKBound::new(10));
        let pool = ScopedPool::new(8);
        // Distances 1..=1000 in a scrambled deterministic order.
        let distances: Vec<f64> = (0..1000u64).map(|i| ((i * 613) % 1009 + 1) as f64).collect();
        let mut sorted = distances.clone();
        sorted.sort_by(f64::total_cmp);
        pool.run(distances, |_, d| b.offer(d));
        assert_eq!(b.current(), sorted[9]);
    }

    proptest! {
        /// Pool output equals a plain sequential map for any input and
        /// thread count.
        #[test]
        fn pool_matches_sequential_map(
            items in proptest::collection::vec(any::<u32>(), 0..200),
            threads in 1usize..9,
        ) {
            let pool = ScopedPool::new(threads);
            let expected: Vec<u64> =
                items.iter().enumerate().map(|(i, &x)| (x as u64) * 3 + i as u64).collect();
            let got = pool.run(items, |i, x| (x as u64) * 3 + i as u64);
            prop_assert_eq!(got, expected);
        }
    }
}
