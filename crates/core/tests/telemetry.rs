//! End-to-end acceptance tests for the embedded telemetry endpoint:
//! Prometheus exposition over a live query workload, health probes wired
//! from the kv cluster and worker pools, SLO burn-rate verdicts flipping
//! `/healthz` to 503 under an injected latency spike, collector history
//! wraparound, and clean shutdown (the port must be rebindable).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use trass_core::config::TrassConfig;
use trass_core::store::TrajectoryStore;
use trass_core::{range_search, threshold_search};
use trass_geo::Mbr;
use trass_obs::{SloObjective, TelemetryOptions};
use trass_traj::{generator, Measure};

fn populated_store(n: usize) -> (TrajectoryStore, Vec<trass_traj::Trajectory>) {
    let extent = Mbr::new(116.0, 39.6, 116.8, 40.2);
    let mut config = TrassConfig::for_extent(extent);
    // Ignore any ambient TRASS_TELEMETRY_ADDR: these tests always bind
    // ephemeral ports so parallel test binaries cannot collide.
    config.telemetry_addr = None;
    let store = TrajectoryStore::open(config).unwrap();
    let data = generator::tdrive_like(7, n);
    store.insert_all(&data).unwrap();
    store.flush().unwrap();
    (store, data)
}

/// Raw HTTP/1.1 GET returning `(status, headers, body)` — the tests talk
/// to the endpoint exactly the way curl or a Prometheus scraper would.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
        .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {raw:?}"));
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    (status, head.to_string(), body.to_string())
}

/// Manual-stepping options: an interval long enough that the background
/// thread never ticks on its own, so tests drive `collect_once` directly.
fn manual_options(objectives: Vec<SloObjective>, history: usize) -> TelemetryOptions {
    TelemetryOptions {
        addr: "127.0.0.1:0".to_string(),
        interval: Duration::from_secs(3600),
        history,
        objectives,
    }
}

#[test]
fn metrics_expose_the_query_pipeline_over_a_live_workload() {
    let (store, data) = populated_store(200);
    for q in data.iter().take(4) {
        threshold_search(&store, q, 0.02, Measure::Frechet).unwrap();
    }
    range_search(&store, &Mbr::new(116.3, 39.8, 116.5, 40.0)).unwrap();

    let telemetry = store.serve_telemetry().unwrap();
    let addr = telemetry.local_addr();

    let (status, head, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    // The query-latency histogram carries the workload just executed.
    assert!(body.contains("# TYPE trass_query_seconds histogram"), "{body}");
    assert!(body.contains("trass_query_seconds_bucket"), "{body}");
    let count = body
        .lines()
        .find(|l| l.starts_with("trass_query_seconds_count"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<u64>().ok())
        .expect("trass_query_seconds_count series");
    assert!(count >= 5, "expected >= 5 recorded queries, got {count}");
    assert!(body.contains("trass_queries_total 5"), "{body}");
    // Scraping refreshes kv-side gauges through the cluster publisher.
    assert!(body.contains("trass_kv_entries_scanned"), "{body}");
    // Per-stage timers from the pipeline are present too.
    assert!(body.contains("# TYPE trass_query_stage_seconds histogram"), "{body}");

    let (status, _, json) = http_get(addr, "/metrics.json");
    assert_eq!(status, 200);
    assert!(json.trim_start().starts_with('{'), "{json}");
    assert!(json.contains("trass_query_seconds"), "{json}");

    // The companion debug surfaces answer on the same listener.
    assert_eq!(http_get(addr, "/").0, 200);
    assert_eq!(http_get(addr, "/slowlog").0, 200);
    assert_eq!(http_get(addr, "/traces").0, 200);
    assert_eq!(http_get(addr, "/definitely-not-a-route").0, 404);

    telemetry.shutdown();
}

#[test]
fn healthz_reports_probes_and_flips_on_latency_spike() {
    let (store, _) = populated_store(100);
    let mut objective =
        SloObjective::latency_under("query-latency-p99", "trass_query_seconds", 0.5, 0.99);
    objective.fast_window = 2;
    objective.slow_window = 4;
    let telemetry = store.serve_telemetry_with(manual_options(vec![objective], 16)).unwrap();
    let addr = telemetry.local_addr();

    // Healthy baseline: all wired probes pass and are named in the body.
    // No queries run yet, so the latency objective has no samples and the
    // verdict below is driven purely by the injected spike — real query
    // latency in a debug build would be an uncontrolled input.
    telemetry.collector().collect_once();
    let (status, _, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    for probe in ["kv-regions", "kv-scan-pool", "refine-pool"] {
        assert!(body.contains(&format!("ok   probe {probe}")), "{body}");
    }

    // Injected latency spike: every new sample blows the 500 ms target,
    // so both burn windows saturate and the endpoint must page.
    let timer = store.registry().timer("trass_query_seconds", &[]);
    for _ in 0..5 {
        for _ in 0..10 {
            timer.record_duration(Duration::from_secs(2));
        }
        telemetry.collector().collect_once();
    }
    let (status, _, body) = http_get(addr, "/healthz");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("FAIL slo \"query-latency-p99\""), "{body}");
    // Readiness ignores SLO verdicts: the process can still serve.
    assert_eq!(http_get(addr, "/readyz").0, 200);
    // The verdict is scrapeable alongside the metrics it was derived from.
    let (_, _, metrics) = http_get(addr, "/metrics");
    assert!(metrics.contains("trass_slo_ok{objective=\"query-latency-p99\"} 0"), "{metrics}");

    telemetry.shutdown();
}

#[test]
fn vars_history_wraps_once_capacity_is_exceeded() {
    let (store, data) = populated_store(50);
    let telemetry = store.serve_telemetry_with(manual_options(Vec::new(), 4)).unwrap();
    let addr = telemetry.local_addr();

    // Seven manual ticks into a four-slot ring: every series must report
    // the wraparound and retain only the last four samples. The collector
    // thread also takes one startup sample of its own, and on a loaded
    // box it may land before or after the first query registers its
    // counters — so totals are 7 or 8 depending on scheduling.
    for _ in 0..7 {
        threshold_search(&store, &data[0], 0.01, Measure::Frechet).unwrap();
        telemetry.collector().collect_once();
    }
    let (status, _, history) = http_get(addr, "/vars/history");
    assert_eq!(status, 200);
    assert!(history.contains("\"trass_queries_total\""), "{history}");
    assert!(history.contains("\"wrapped\":true"), "{history}");
    assert!(history.contains("\"total\":7") || history.contains("\"total\":8"), "{history}");

    telemetry.shutdown();
}

#[test]
fn telemetry_shutdown_is_clean() {
    let (store, _) = populated_store(10);
    let telemetry = store.serve_telemetry().unwrap();
    let addr = telemetry.local_addr();
    assert_eq!(http_get(addr, "/healthz").0, 200);
    telemetry.shutdown();
    // All threads joined and the socket is released: the exact address
    // must be immediately rebindable.
    let rebound = TcpListener::bind(addr).expect("port still held after shutdown");
    drop(rebound);
}
