//! End-to-end checks of the continuous-profiling layer: stage-tagged
//! allocation/CPU accounting in EXPLAIN output, flame-graph folding of
//! the flight recorder, and per-fingerprint workload analytics.

use trass_core::config::TrassConfig;
use trass_core::query;
use trass_core::store::{ExplainQuery, TrajectoryStore};
use trass_geo::{Mbr, Point};
use trass_obs::{ProfileWeight, WorkloadTotals};
use trass_traj::{Measure, Trajectory};

// The accounting only engages when the counting allocator is the process
// allocator — exactly how the shipped binaries install it.
#[global_allocator]
static ALLOC: trass_obs::CountingAlloc = trass_obs::CountingAlloc::system();

fn traj(id: u64, base: (f64, f64), n: usize) -> Trajectory {
    Trajectory::new(
        id,
        (0..n)
            .map(|i| Point::new(base.0 + i as f64 * 0.001, base.1 + (i % 3) as f64 * 0.0005))
            .collect(),
    )
}

fn populated_store(query_threads: usize) -> TrajectoryStore {
    let cfg = TrassConfig {
        query_threads,
        // The flight recorder should hold exactly the explains below.
        trace_sample_every: 0,
        ..TrassConfig::default()
    };
    let store = TrajectoryStore::open(cfg).unwrap();
    for i in 0..40 {
        store.insert(&traj(i, (116.30 + (i % 5) as f64 * 0.01, 39.90), 12)).unwrap();
    }
    store.flush().unwrap();
    store
}

/// Runs a small mixed workload: several threshold shapes, a top-k, and a
/// range query.
fn run_workload(store: &TrajectoryStore) {
    let q_small = traj(1000, (116.30, 39.90), 12);
    let q_long = traj(1001, (116.31, 39.90), 40);
    for eps in [0.002, 0.0021, 0.0022] {
        query::threshold_search(store, &q_small, eps, Measure::Frechet).unwrap();
    }
    query::threshold_search(store, &q_long, 0.004, Measure::Hausdorff).unwrap();
    query::top_k_search(store, &q_small, 5, Measure::Frechet).unwrap();
    query::range_search(store, &Mbr::new(116.29, 39.89, 116.35, 39.92)).unwrap();
}

#[test]
fn explain_reports_per_span_alloc_and_cpu() {
    let store = populated_store(2);
    let q = traj(1000, (116.30, 39.90), 12);
    let explained = store
        .explain(ExplainQuery::Threshold { query: &q, eps: 0.002, measure: Measure::Frechet })
        .unwrap();
    let root = &explained.trace.root;

    // The root span accounts the driver thread's allocations over the
    // whole query: never zero (pruning alone builds range vectors).
    assert!(root.field_u64("alloc_bytes").unwrap() > 0, "{root:?}");
    assert!(root.field_u64("allocs").unwrap() > 0);
    // Stage children carry their own attribution.
    let pruning = root.child("pruning").unwrap();
    assert!(pruning.field_u64("alloc_bytes").unwrap() > 0);
    // CPU deltas appear whenever the platform exposes per-thread CPU.
    if trass_obs::alloc::cpu_supported() {
        assert!(root.field_u64("cpu_ns").is_some());
    }
    // Traced queries are identified for slow-log cross-referencing.
    assert!(root.label("trace_id").is_some());
    // Both renderings surface the accounting.
    let text = explained.trace.render_text();
    assert!(text.contains("alloc_bytes="), "missing alloc in:\n{text}");
    let json = explained.trace.render_json();
    assert!(json.contains("alloc_bytes"), "missing alloc in:\n{json}");
}

#[test]
fn folded_wall_weights_sum_to_trace_durations() {
    let store = populated_store(4);
    let q = traj(1000, (116.30, 39.90), 12);
    for eps in [0.002, 0.004] {
        store
            .explain(ExplainQuery::Threshold { query: &q, eps, measure: Measure::Frechet })
            .unwrap();
    }
    store.explain(ExplainQuery::Range { window: Mbr::new(116.29, 39.89, 116.35, 39.92) }).unwrap();

    let traces = store.flight_recorder().snapshot();
    assert_eq!(traces.len(), 3);
    let expected: f64 = traces.iter().map(|t| t.root.duration_ns as f64).sum();
    let folded = trass_obs::profile::render_flight(store.flight_recorder(), ProfileWeight::Wall);
    assert!(!folded.is_empty());
    let total: f64 = folded
        .lines()
        .map(|l| l.rsplit_once(' ').expect("stack weight").1.parse::<f64>().unwrap())
        .sum();
    let err = (total - expected).abs() / expected;
    assert!(
        err < 0.01,
        "folded wall total {total} vs trace total {expected} ({:.3}% off)\n{folded}",
        err * 100.0
    );
    // Parallel region scans overlap in wall time; the per-trace rescaling
    // must keep every line non-negative.
    for line in folded.lines() {
        let (stack, w) = line.rsplit_once(' ').unwrap();
        assert!(w.parse::<f64>().unwrap() >= 0.0, "negative weight on {stack}");
    }
}

#[test]
fn workload_summary_aggregates_distinct_fingerprints() {
    let store = populated_store(2);
    run_workload(&store);
    let summary = store.workload();
    assert!(summary.len() >= 3, "expected >= 3 shapes:\n{}", summary.render_text());
    let shapes = summary.fingerprints();
    // Jittered thresholds fold into one shape; kinds never collide.
    assert_eq!(shapes.iter().filter(|s| s.starts_with("threshold|frechet")).count(), 1);
    assert!(shapes.iter().any(|s| s.starts_with("threshold|hausdorff")));
    assert!(shapes.iter().any(|s| s.starts_with("topk|")));
    assert!(shapes.iter().any(|s| s.starts_with("range|")));
    // The busiest shape (the three jittered thresholds) leads.
    let json = summary.render_json();
    assert!(json.contains("\"count\":3") || json.contains("\"count\": 3"), "{json}");
    let first = json.find("threshold|frechet").unwrap();
    assert!(
        shapes.iter().skip(1).all(|s| json.find(s.as_str()).unwrap() > first),
        "busiest shape must sort first:\n{json}"
    );
}

#[test]
fn attribution_totals_identical_across_thread_counts() {
    let totals: Vec<WorkloadTotals> = [1usize, 4]
        .into_iter()
        .map(|threads| {
            let store = populated_store(threads);
            run_workload(&store);
            store.workload().totals()
        })
        .collect();
    assert_eq!(totals[0], totals[1], "attribution totals must not depend on the thread count");
    assert!(totals[0].count >= 6);
    assert!(totals[0].retrieved > 0);
}
