//! End-to-end acceptance tests for `TrajectoryStore::explain` and the
//! per-query tracing pipeline: span-tree shape, per-shard scan spans,
//! consistency between trace fields and `QueryStats`, renderer round-trips
//! and the sampled-out fast path.

use trass_core::config::TrassConfig;
use trass_core::store::{ExplainQuery, TrajectoryStore};
use trass_geo::Mbr;
use trass_obs::QueryTrace;
use trass_traj::{generator, Measure};

fn populated_store(n: usize, sample_every: u64) -> (TrajectoryStore, Vec<trass_traj::Trajectory>) {
    let extent = Mbr::new(116.0, 39.6, 116.8, 40.2);
    let mut config = TrassConfig::for_extent(extent);
    config.trace_sample_every = sample_every;
    let store = TrajectoryStore::open(config).unwrap();
    let data = generator::tdrive_like(7, n);
    store.insert_all(&data).unwrap();
    store.flush().unwrap();
    (store, data)
}

#[test]
fn explain_threshold_builds_the_full_span_tree() {
    let (store, data) = populated_store(200, 0);
    let q = &data[5];
    let explained = store
        .explain(ExplainQuery::Threshold { query: q, eps: 0.02, measure: Measure::Frechet })
        .unwrap();
    let root = &explained.trace.root;
    assert_eq!(root.name, "threshold");
    assert_eq!(root.label("measure"), Some("frechet"));

    // Stage children in pipeline order.
    let pruning = root.child("pruning").expect("pruning child");
    let scan = root.child("scan").expect("scan child");
    let filter = root.child("local-filter").expect("local-filter child");
    let refine = root.child("refine").expect("refine child");

    // Global pruning accounted for the traversal.
    assert!(pruning.field_u64("visited").unwrap() > 0);
    assert!(pruning.field_u64("key_ranges").unwrap() > 0);

    // One region-scan child per shard touched, each with real work in it.
    let region_spans: Vec<_> = scan.children_named("region-scan").collect();
    assert!(!region_spans.is_empty(), "no region-scan spans under scan");
    assert!(region_spans.len() <= store.config().shards as usize);
    let mut seen_shards = std::collections::HashSet::new();
    let mut scanned_total = 0;
    for rs in &region_spans {
        let shard = rs.label("shard").expect("shard label").to_string();
        assert!(seen_shards.insert(shard), "duplicate shard span");
        scanned_total += rs.field_u64("rows_scanned").unwrap();
    }
    assert!(scanned_total > 0, "region-scan spans recorded no scanned rows");

    // Trace fields agree with the returned QueryStats.
    let stats = &explained.result.stats;
    assert_eq!(scanned_total, stats.retrieved);
    assert!(stats.retrieved >= stats.candidates);
    assert!(stats.candidates >= stats.results);
    assert_eq!(refine.field_u64("candidates").unwrap(), stats.candidates);
    assert_eq!(refine.field_u64("hits").unwrap(), stats.results);
    let kept = filter.field_u64("kept").unwrap();
    let rejected = filter.field_u64("rejected").unwrap();
    assert_eq!(kept, stats.candidates);
    assert_eq!(kept + rejected, stats.retrieved);
    let lemma_total = filter.field_u64("lemma12_rejects").unwrap()
        + filter.field_u64("lemma13_rejects").unwrap()
        + filter.field_u64("lemma14_rejects").unwrap()
        + filter.field_u64("corrupt_rejects").unwrap();
    assert_eq!(lemma_total, rejected);
}

#[test]
fn explain_renderers_round_trip() {
    let (store, data) = populated_store(120, 0);
    let explained = store
        .explain(ExplainQuery::Threshold {
            query: &data[0],
            eps: 0.015,
            measure: Measure::Hausdorff,
        })
        .unwrap();
    let text = explained.trace.render_text();
    assert!(text.contains("threshold"), "text rendering misses root:\n{text}");
    assert!(text.contains("region-scan"));
    assert!(text.contains('%'), "no percent-of-parent annotations:\n{text}");

    let json = explained.trace.render_json();
    let back = QueryTrace::from_json(&json).expect("parse emitted JSON");
    assert_eq!(back.render_json(), json, "JSON round-trip is not a fixed point");
    assert_eq!(back.root.span_count(), explained.trace.root.span_count());
}

#[test]
fn explain_topk_records_deepening_rounds() {
    let (store, data) = populated_store(150, 0);
    let explained = store
        .explain(ExplainQuery::TopK { query: &data[9], k: 5, measure: Measure::Frechet })
        .unwrap();
    let root = &explained.trace.root;
    assert_eq!(root.name, "topk");
    assert_eq!(root.field_u64("k"), Some(5));
    let rounds: Vec<_> = root.children_named("round").collect();
    assert!(!rounds.is_empty());
    assert_eq!(root.field_u64("rounds"), Some(rounds.len() as u64));
    for (i, r) in rounds.iter().enumerate() {
        assert_eq!(r.label("round"), Some(i.to_string().as_str()));
        assert!(r.fields.iter().any(|(k, _)| k == "eps"), "round without eps");
        // Every round ran the threshold pipeline.
        assert!(r.child("pruning").is_some());
        assert!(r.child("scan").is_some());
    }
    // The last round found at least k matches (they get truncated to k).
    let last = rounds.last().unwrap();
    assert!(last.field_u64("results").unwrap() >= 5);
    assert_eq!(explained.result.results.len(), 5);
}

#[test]
fn explain_range_has_stage_children() {
    let (store, data) = populated_store(100, 0);
    let m = data[3].mbr();
    let window = Mbr::new(m.min_x - 0.01, m.min_y - 0.01, m.max_x + 0.01, m.max_y + 0.01);
    let explained = store.explain(ExplainQuery::Range { window }).unwrap();
    let root = &explained.trace.root;
    assert_eq!(root.name, "range");
    assert!(root.child("pruning").is_some());
    let scan = root.child("scan").expect("scan child");
    assert!(scan.children_named("region-scan").next().is_some());
    assert!(root.child("refine").is_some());
    assert!(!explained.result.results.is_empty());
}

#[test]
fn sampled_out_queries_leave_no_trace() {
    // trace_sample_every = 0 disables background sampling entirely.
    let (store, data) = populated_store(60, 0);
    for q in data.iter().take(5) {
        trass_core::query::threshold_search(&store, q, 0.01, Measure::Frechet).unwrap();
    }
    assert!(store.flight_recorder().is_empty(), "disabled sampler still recorded traces");
    // explain still traces unconditionally...
    store
        .explain(ExplainQuery::Threshold { query: &data[0], eps: 0.01, measure: Measure::Frechet })
        .unwrap();
    // ...and its trace lands in the flight recorder.
    assert_eq!(store.flight_recorder().len(), 1);
}

#[test]
fn sampling_is_deterministic_one_in_n() {
    // Every third query is traced, starting with the first.
    let (store, data) = populated_store(60, 3);
    for q in data.iter().take(9) {
        trass_core::query::threshold_search(&store, q, 0.01, Measure::Frechet).unwrap();
    }
    assert_eq!(store.flight_recorder().len(), 3, "expected queries 0, 3, 6 to be traced");
    for trace in store.flight_recorder().snapshot() {
        assert_eq!(trace.root.name, "threshold");
    }
}

#[test]
fn traced_queries_attach_to_the_slow_log() {
    let (store, data) = populated_store(60, 1);
    for q in data.iter().take(3) {
        trass_core::query::threshold_search(&store, q, 0.01, Measure::Frechet).unwrap();
    }
    let slow = store.slow_queries();
    assert!(!slow.is_empty());
    for rec in &slow {
        let trace = rec.trace.as_ref().expect("always-sampled query lost its trace");
        assert_eq!(trace.root.name, "threshold");
    }
}
