//! Framework configuration.

use trass_geo::{Mbr, NormalizedSpace};
use trass_kv::StoreOptions;

/// Configuration of a TraSS deployment.
#[derive(Debug, Clone)]
pub struct TrassConfig {
    /// Maximum XZ\* resolution (paper default: 16).
    pub max_resolution: u8,
    /// Number of rowkey shards (paper sweeps 1–32; 8 is its sweet spot).
    pub shards: u8,
    /// Douglas-Peucker tolerance in world units (paper default: 0.01°).
    pub dp_theta: f64,
    /// World extent mapped onto the unit square. Must be square so
    /// distance-based pruning scales uniformly (see `trass_geo::normalize`).
    pub space: NormalizedSpace,
    /// Gap tolerance when coalescing index values into scan ranges.
    pub range_gap: u64,
    /// Run region scans on parallel threads (the five-node cluster of the
    /// paper's evaluation).
    pub parallel_scans: bool,
    /// Worker budget for intra-query parallelism (region-scan fan-out and
    /// candidate refinement). `0` uses the machine's available parallelism;
    /// `1` reproduces the exact sequential pipeline. The default honours
    /// the `TRASS_QUERY_THREADS` environment variable (CI's determinism
    /// matrix relies on it), falling back to `0`.
    pub query_threads: usize,
    /// Per-region store tuning. `dir = None` runs in memory.
    pub store: StoreOptions,
    /// Ablation: apply position-code filtering (Lemmas 10–11) in global
    /// pruning. Off reduces XZ\* to element-granularity pruning (§VI-D).
    pub use_position_codes: bool,
    /// Ablation: apply the distance-bound lemmas (9 and 11).
    pub use_min_dist: bool,
    /// Ablation: push local filtering (Lemmas 12–14) into scans. Off makes
    /// every retrieved row a refinement candidate.
    pub use_local_filter: bool,
    /// Evaluate cheap lower bounds (endpoint, MBR gap, reference-point
    /// interval gap) before each exact refinement kernel, and let the
    /// kernels abandon early at the threshold. Results are bit-identical
    /// either way (the differential harness in `tests/refine_exactness.rs`
    /// enforces it); off reproduces the pre-bounds refine path. The default
    /// honours the `TRASS_REFINE_BOUNDS` environment variable.
    pub refine_bounds: bool,
    /// Trace one query in N (deterministic counter; queries 1, N+1, 2N+1,
    /// … record full span trees into the flight recorder). `0` disables
    /// sampling entirely; `explain` always traces regardless.
    pub trace_sample_every: u64,
    /// Capacity of the per-fingerprint workload summary: how many distinct
    /// query shapes are tracked individually before new shapes fold into
    /// the overflow bucket. Memory is O(capacity); the default comfortably
    /// covers a hand-written workload while bounding a pathological one.
    pub workload_fingerprints: usize,
    /// Bind address for the embedded telemetry endpoint
    /// ([`TrajectoryStore::serve_telemetry`](crate::TrajectoryStore::serve_telemetry)),
    /// e.g. `"127.0.0.1:9090"`; port `0` picks an ephemeral port. `None`
    /// (the default) means the endpoint is only started when asked
    /// explicitly. The default honours the `TRASS_TELEMETRY_ADDR`
    /// environment variable.
    pub telemetry_addr: Option<String>,
}

impl Default for TrassConfig {
    fn default() -> Self {
        TrassConfig {
            max_resolution: 16,
            shards: 8,
            dp_theta: 0.01,
            space: trass_geo::WORLD_SQUARE,
            range_gap: 0,
            parallel_scans: true,
            query_threads: default_query_threads(),
            store: StoreOptions::default(),
            use_position_codes: true,
            use_min_dist: true,
            use_local_filter: true,
            refine_bounds: default_refine_bounds(),
            trace_sample_every: 64,
            workload_fingerprints: 32,
            telemetry_addr: default_telemetry_addr(),
        }
    }
}

/// The `query_threads` default: `TRASS_QUERY_THREADS` when set to a valid
/// count, otherwise `0` (auto).
fn default_query_threads() -> usize {
    std::env::var("TRASS_QUERY_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// The `refine_bounds` default: on, unless `TRASS_REFINE_BOUNDS` is set to
/// an explicit off value (`0`, `false`, `off`, `no`).
fn default_refine_bounds() -> bool {
    match std::env::var("TRASS_REFINE_BOUNDS") {
        Ok(v) => !matches!(v.trim().to_ascii_lowercase().as_str(), "0" | "false" | "off" | "no"),
        Err(_) => true,
    }
}

/// The `telemetry_addr` default: `TRASS_TELEMETRY_ADDR` when set and
/// non-empty, otherwise `None` (endpoint off).
fn default_telemetry_addr() -> Option<String> {
    std::env::var("TRASS_TELEMETRY_ADDR").ok().filter(|v| !v.is_empty())
}

impl TrassConfig {
    /// A configuration whose index covers only `extent` (padded to a
    /// square), useful for city-scale tests needing finer effective
    /// resolution.
    pub fn for_extent(extent: Mbr) -> Self {
        TrassConfig { space: NormalizedSpace::square(extent), ..Self::default() }
    }

    /// Validates invariants the framework relies on.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if !(1..=30).contains(&self.max_resolution) {
            return Err(format!("max_resolution {} out of 1..=30", self.max_resolution));
        }
        if self.shards == 0 {
            return Err("shards must be >= 1".into());
        }
        if !self.space.is_square() {
            return Err("space extent must be square for sound distance pruning".into());
        }
        if self.dp_theta.is_nan() || self.dp_theta < 0.0 {
            return Err("dp_theta must be non-negative".into());
        }
        if self.workload_fingerprints == 0 {
            return Err("workload_fingerprints must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = TrassConfig::default();
        assert_eq!(c.max_resolution, 16);
        assert_eq!(c.shards, 8);
        assert_eq!(c.dp_theta, 0.01);
        assert!(c.space.is_square());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = TrassConfig { max_resolution: 0, ..TrassConfig::default() };
        assert!(c.validate().is_err());
        let c = TrassConfig { shards: 0, ..TrassConfig::default() };
        assert!(c.validate().is_err());
        let c = TrassConfig { space: trass_geo::WORLD, ..TrassConfig::default() }; // not square
        assert!(c.validate().is_err());
        let c = TrassConfig { dp_theta: f64::NAN, ..TrassConfig::default() };
        assert!(c.validate().is_err());
        let c = TrassConfig { workload_fingerprints: 0, ..TrassConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn query_threads_env_override_feeds_default() {
        // Restore the ambient value afterwards: CI's determinism job runs
        // the whole suite under an explicit TRASS_QUERY_THREADS.
        let ambient = std::env::var("TRASS_QUERY_THREADS").ok();
        std::env::set_var("TRASS_QUERY_THREADS", "3");
        assert_eq!(TrassConfig::default().query_threads, 3);
        std::env::set_var("TRASS_QUERY_THREADS", "not-a-number");
        assert_eq!(TrassConfig::default().query_threads, 0);
        match ambient {
            Some(v) => std::env::set_var("TRASS_QUERY_THREADS", v),
            None => std::env::remove_var("TRASS_QUERY_THREADS"),
        }
    }

    #[test]
    fn refine_bounds_env_override_feeds_default() {
        let ambient = std::env::var("TRASS_REFINE_BOUNDS").ok();
        std::env::remove_var("TRASS_REFINE_BOUNDS");
        assert!(TrassConfig::default().refine_bounds, "unset defaults to on");
        for off in ["0", "false", "OFF", " no "] {
            std::env::set_var("TRASS_REFINE_BOUNDS", off);
            assert!(!TrassConfig::default().refine_bounds, "{off:?} should disable");
        }
        for on in ["1", "true", "anything-else"] {
            std::env::set_var("TRASS_REFINE_BOUNDS", on);
            assert!(TrassConfig::default().refine_bounds, "{on:?} should enable");
        }
        match ambient {
            Some(v) => std::env::set_var("TRASS_REFINE_BOUNDS", v),
            None => std::env::remove_var("TRASS_REFINE_BOUNDS"),
        }
    }

    #[test]
    fn telemetry_addr_env_feeds_default() {
        let ambient = std::env::var("TRASS_TELEMETRY_ADDR").ok();
        std::env::set_var("TRASS_TELEMETRY_ADDR", "127.0.0.1:9090");
        assert_eq!(TrassConfig::default().telemetry_addr.as_deref(), Some("127.0.0.1:9090"));
        std::env::set_var("TRASS_TELEMETRY_ADDR", "");
        assert_eq!(TrassConfig::default().telemetry_addr, None);
        match ambient {
            Some(v) => std::env::set_var("TRASS_TELEMETRY_ADDR", v),
            None => std::env::remove_var("TRASS_TELEMETRY_ADDR"),
        }
    }

    #[test]
    fn for_extent_squares_the_extent() {
        let c = TrassConfig::for_extent(Mbr::new(116.0, 39.6, 116.8, 40.2));
        assert!(c.space.is_square());
        assert!(c.validate().is_ok());
    }
}
