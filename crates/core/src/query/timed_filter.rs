//! Attributing local-filter time inside the scan.
//!
//! Local filtering runs *inside* the store's scan (as an HBase coprocessor
//! would), so its cost is buried in the scan stage. [`TimedFilter`] wraps
//! any [`ScanFilter`] and accumulates the wall-clock time spent in `check`
//! across every row and every region thread; the query drivers record the
//! total into `trass_query_stage_seconds{stage="local-filter"}`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use trass_kv::{FilterDecision, ScanFilter};

/// A [`ScanFilter`] decorator measuring time spent in the inner filter.
pub struct TimedFilter<'a> {
    inner: &'a (dyn ScanFilter + 'a),
    nanos: AtomicU64,
}

impl<'a> TimedFilter<'a> {
    /// Wraps `inner`, starting from zero accumulated time.
    pub fn new(inner: &'a (dyn ScanFilter + 'a)) -> Self {
        TimedFilter { inner, nanos: AtomicU64::new(0) }
    }

    /// Total time spent inside the wrapped filter so far. When region
    /// scans run on parallel threads this is CPU-style summed time, not
    /// elapsed wall clock.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }
}

impl ScanFilter for TimedFilter<'_> {
    fn check(&self, key: &[u8], value: &[u8]) -> FilterDecision {
        let t = Instant::now();
        let decision = self.inner.check(key, value);
        self.nanos.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_decisions_through_and_accumulates() {
        let inner = |key: &[u8], _v: &[u8]| {
            if key.starts_with(b"a") {
                FilterDecision::Keep
            } else {
                FilterDecision::Skip
            }
        };
        let timed = TimedFilter::new(&inner);
        assert_eq!(timed.check(b"abc", b""), FilterDecision::Keep);
        assert_eq!(timed.check(b"xyz", b""), FilterDecision::Skip);
        let after_two = timed.elapsed();
        // The decorator is itself a filter usable behind a trait object,
        // and accumulated time is monotone across checks.
        let as_dyn: &dyn ScanFilter = &timed;
        assert_eq!(as_dyn.check(b"a", b""), FilterDecision::Keep);
        assert!(timed.elapsed() >= after_two);
    }
}
