//! The refinement-side lower-bound prefilter (shared by threshold search
//! and top-k's deepening rounds).
//!
//! [`RefineContext`] wraps a query-side [`QueryEnvelope`] plus atomic
//! per-outcome tallies, so parallel refine workers can assess candidates
//! through one shared read-only object and the driver can snapshot an
//! attribution breakdown afterwards ([`RefinePrune`]). With bounds
//! disabled the context degrades to the legacy two-pass refine path
//! (`within` then `distance`), byte-identical to the pre-bounds pipeline.

use crate::stats::RefinePrune;
use std::sync::atomic::{AtomicU64, Ordering};
use trass_geo::{Mbr, Point};
use trass_traj::bounds::{BoundKind, QueryEnvelope};
use trass_traj::Measure;

/// How refinement disposed of one candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum RefineOutcome {
    /// Survived every bound and the exact kernel: a result at this
    /// distance.
    Hit(f64),
    /// A lower bound proved the candidate dissimilar before the exact
    /// kernel ran.
    Pruned(BoundKind),
    /// The exact kernel abandoned mid-computation (running value crossed
    /// the threshold), or the legacy decision kernel said no.
    Abandoned,
    /// Empty point sequence — a corrupt row the exact kernels would panic
    /// on; skipped and counted, never an error for the whole query.
    Corrupt,
}

impl RefineOutcome {
    /// Stable label for trace verdict fields.
    pub(crate) fn label(&self) -> String {
        match self {
            RefineOutcome::Hit(_) => "hit".to_string(),
            RefineOutcome::Pruned(kind) => format!("pruned={kind}"),
            RefineOutcome::Abandoned => "abandoned".to_string(),
            RefineOutcome::Corrupt => "corrupt".to_string(),
        }
    }
}

/// Shared per-query refine state: the query envelope (when bounds are
/// enabled) and atomic outcome tallies.
#[derive(Debug)]
pub(crate) struct RefineContext {
    envelope: Option<QueryEnvelope>,
    endpoint: AtomicU64,
    mbr_gap: AtomicU64,
    ref_gap: AtomicU64,
    abandoned: AtomicU64,
    computed: AtomicU64,
    corrupt: AtomicU64,
}

impl RefineContext {
    /// Builds the context. `enabled = false` (or an empty query, which has
    /// nothing to bound) keeps the envelope off and routes every candidate
    /// through the legacy two-pass path.
    pub(crate) fn new(query: &[Point], enabled: bool) -> RefineContext {
        RefineContext {
            envelope: if enabled { QueryEnvelope::new(query) } else { None },
            endpoint: AtomicU64::new(0),
            mbr_gap: AtomicU64::new(0),
            ref_gap: AtomicU64::new(0),
            abandoned: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        }
    }

    /// Whether the lower-bound prefilter is active.
    pub(crate) fn bounds_enabled(&self) -> bool {
        self.envelope.is_some()
    }

    /// Assesses one candidate against threshold `eff`, counting the
    /// outcome. `cand_mbr` is the candidate's cached covering MBR when the
    /// row carries one (the DP-feature MBR); a covering rectangle is
    /// sufficient — the gap bound only loosens, never breaks.
    ///
    /// The exact value of a [`RefineOutcome::Hit`] is bit-identical
    /// between the bounded and legacy paths (`Measure::distance_within`'s
    /// contract), which is what keeps `TRASS_REFINE_BOUNDS` invisible in
    /// query results.
    pub(crate) fn assess(
        &self,
        query: &[Point],
        cand: &[Point],
        cand_mbr: Option<&Mbr>,
        measure: Measure,
        eff: f64,
    ) -> RefineOutcome {
        if cand.is_empty() || query.is_empty() {
            self.corrupt.fetch_add(1, Ordering::Relaxed);
            return RefineOutcome::Corrupt;
        }
        if let Some(env) = &self.envelope {
            if let Some(kind) = env.prunes(cand, cand_mbr, measure, eff) {
                match kind {
                    BoundKind::Endpoint => &self.endpoint,
                    BoundKind::MbrGap => &self.mbr_gap,
                    BoundKind::RefGap => &self.ref_gap,
                }
                .fetch_add(1, Ordering::Relaxed);
                return RefineOutcome::Pruned(kind);
            }
            match measure.distance_within(query, cand, eff) {
                Some(d) => {
                    self.computed.fetch_add(1, Ordering::Relaxed);
                    RefineOutcome::Hit(d)
                }
                None => {
                    self.abandoned.fetch_add(1, Ordering::Relaxed);
                    RefineOutcome::Abandoned
                }
            }
        } else {
            // Legacy two-pass path, kept verbatim so `refine_bounds =
            // false` reproduces the pre-bounds pipeline exactly.
            if !measure.within(query, cand, eff) {
                self.abandoned.fetch_add(1, Ordering::Relaxed);
                return RefineOutcome::Abandoned;
            }
            let d = measure.distance(query, cand);
            self.computed.fetch_add(1, Ordering::Relaxed);
            RefineOutcome::Hit(d)
        }
    }

    /// Snapshot of the outcome tallies.
    pub(crate) fn snapshot(&self) -> RefinePrune {
        RefinePrune {
            endpoint: self.endpoint.load(Ordering::Relaxed),
            mbr_gap: self.mbr_gap.load(Ordering::Relaxed),
            ref_gap: self.ref_gap.load(Ordering::Relaxed),
            abandoned: self.abandoned.load(Ordering::Relaxed),
            computed: self.computed.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn empty_candidate_is_corrupt_not_a_panic() {
        // Regression for the empty-sequence panic surface:
        // `Measure::distance` asserts non-empty input, so the refine call
        // site must skip such rows.
        let q = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        for enabled in [true, false] {
            let ctx = RefineContext::new(&q, enabled);
            let out = ctx.assess(&q, &[], None, Measure::Frechet, 1.0);
            assert_eq!(out, RefineOutcome::Corrupt);
            assert_eq!(ctx.snapshot().corrupt, 1);
        }
    }

    #[test]
    fn bounded_and_legacy_paths_agree_bit_for_bit() {
        let q = pts(&[(0.0, 0.0), (1.0, 0.3), (2.0, -0.1)]);
        let near = pts(&[(0.1, 0.1), (1.1, 0.2), (2.1, 0.0)]);
        let far = pts(&[(8.0, 8.0), (9.0, 8.0)]);
        for m in [Measure::Frechet, Measure::Hausdorff, Measure::Dtw] {
            let on = RefineContext::new(&q, true);
            let off = RefineContext::new(&q, false);
            for cand in [&near, &far] {
                for eff in [0.1, 0.5, 5.0, f64::INFINITY] {
                    let a = on.assess(&q, cand, None, m, eff);
                    let b = off.assess(&q, cand, None, m, eff);
                    match (a, b) {
                        (RefineOutcome::Hit(x), RefineOutcome::Hit(y)) => {
                            assert_eq!(x.to_bits(), y.to_bits(), "{m} eff {eff}");
                        }
                        (RefineOutcome::Hit(_), other) | (other, RefineOutcome::Hit(_)) => {
                            panic!("{m} eff {eff}: hit vs {other:?}");
                        }
                        // Pruned vs abandoned is the expected divergence:
                        // both mean "not a result".
                        _ => {}
                    }
                }
            }
        }
    }

    #[test]
    fn attribution_counts_add_up() {
        let q = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let ctx = RefineContext::new(&q, true);
        assert!(ctx.bounds_enabled());
        let cands = [
            pts(&[(0.0, 0.0), (1.0, 0.0)]),     // hit
            pts(&[(50.0, 50.0), (51.0, 50.0)]), // pruned (far)
            // Close endpoints and overlapping extents (every bound passes)
            // but a 5-unit spike mid-way: the kernel must abandon.
            pts(&[(0.0, 0.5), (0.5, 5.0), (1.0, 0.5)]),
        ];
        for c in &cands {
            ctx.assess(&q, c, None, Measure::Frechet, 1.0);
        }
        let s = ctx.snapshot();
        assert_eq!(s.pruned_total() + s.abandoned + s.computed + s.corrupt, 3, "{s:?}");
        assert_eq!(s.computed, 1, "{s:?}");
        assert_eq!(s.abandoned, 1, "{s:?}");
        assert_eq!(s.pruned_total(), 1, "{s:?}");
    }

    #[test]
    fn disabled_context_never_prunes() {
        let q = pts(&[(0.0, 0.0)]);
        let ctx = RefineContext::new(&q, false);
        assert!(!ctx.bounds_enabled());
        let far = pts(&[(100.0, 100.0)]);
        assert_eq!(ctx.assess(&q, &far, None, Measure::Frechet, 1.0), RefineOutcome::Abandoned);
        assert_eq!(ctx.snapshot().pruned_total(), 0);
    }
}
