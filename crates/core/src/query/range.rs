//! Spatial range query over the XZ\* index.
//!
//! The paper's conclusion notes that "XZ\* index supports spatial range
//! query". The mechanics mirror global pruning with the distance lemmas
//! replaced by plain intersection: an index space can hold trajectories
//! intersecting a window only if the union of its sub-quads intersects the
//! window, and a trajectory qualifies only if one of its points falls
//! inside.

use crate::query::timed_filter::TimedFilter;
use crate::schema::{parse_rowkey, rowkey_range, RowValue};
use crate::stats::{QueryStats, SearchResult};
use crate::store::TrajectoryStore;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;
use trass_geo::Mbr;
use trass_index::quad::Cell;
use trass_index::ranges::coalesce;
use trass_index::xzstar::{IndexSpace, PositionCode, XzStar};
use trass_kv::{FilterDecision, KeyRange, KvError};
use trass_obs::{QueryTrace, Span, TraceCtx, STAGE_HISTOGRAM};

/// Finds every trajectory with at least one point inside `window` (world
/// coordinates). The returned "distance" field carries 0.0 — range queries
/// have no similarity value.
pub fn range_search(store: &TrajectoryStore, window: &Mbr) -> Result<SearchResult, KvError> {
    let ctx = store.begin_trace();
    let (result, _) = range_search_traced(store, window, ctx)?;
    Ok(result)
}

/// [`range_search`] under an explicit trace context.
pub(crate) fn range_search_traced(
    store: &TrajectoryStore,
    window: &Mbr,
    ctx: TraceCtx,
) -> Result<(SearchResult, Option<Arc<QueryTrace>>), KvError> {
    let alloc_mark = trass_obs::alloc::thread_alloc_snapshot();
    let mut root = ctx.root("range");
    if root.is_enabled() {
        root.set_label("trace_id", &store.next_trace_id().to_string());
    }
    let t_all = Instant::now();
    let mut stats = QueryStats::default();
    let config = store.config();
    let index = store.index();

    let mut tspan = root.child("pruning");
    let span = Span::enter(store.registry(), "pruning");
    let unit_window = config.space.mbr_to_unit(window);
    let (values, mut value_ranges) = window_values(index, &unit_window);
    value_ranges.extend(coalesce(values, config.range_gap));
    // Merge overlapping/adjacent ranges so no rowkey is scanned twice.
    value_ranges.sort_by_key(|r| r.start);
    let mut merged: Vec<trass_index::ranges::ValueRange> = Vec::new();
    for r in value_ranges {
        match merged.last_mut() {
            Some(last) if r.start <= last.end.saturating_add(1) => {
                last.end = last.end.max(r.end);
            }
            _ => merged.push(r),
        }
    }
    let value_ranges = merged;
    let mut key_ranges: Vec<KeyRange> =
        Vec::with_capacity(value_ranges.len() * config.shards as usize);
    for shard in 0..config.shards {
        for vr in &value_ranges {
            key_ranges.push(rowkey_range(shard, vr.start, vr.end));
        }
    }
    stats.pruning_time = span.finish();
    stats.n_ranges = key_ranges.len();
    if tspan.is_enabled() {
        tspan.set_field("value_ranges", value_ranges.len());
        tspan.set_field("key_ranges", key_ranges.len());
        tspan.set_duration(stats.pruning_time);
    }
    tspan.finish();

    // Push the point-in-window test into the scan.
    let window_copy = *window;
    let filter = move |_key: &[u8], value: &[u8]| {
        let Ok(row) = RowValue::decode(value) else { return FilterDecision::Skip };
        if row.points.iter().any(|p| window_copy.contains_point(p)) {
            FilterDecision::Keep
        } else {
            FilterDecision::Skip
        }
    };
    let timed = TimedFilter::new(&filter);
    let io_before = store.cluster().metrics_snapshot();
    let mut tspan = root.child("scan");
    let span = Span::enter(store.registry(), "scan");
    let rows = match store.cluster().scan_ranges_traced(&key_ranges, &timed, &tspan) {
        Ok(rows) => rows,
        Err(e) => {
            store.record_query_error("range");
            return Err(e);
        }
    };
    stats.scan_time = span.finish();
    if tspan.is_enabled() {
        tspan.set_field("rows_returned", rows.len());
        tspan.set_duration(stats.scan_time);
    }
    tspan.finish();
    store
        .registry()
        .timer(STAGE_HISTOGRAM, &[("stage", "local-filter")])
        .record_duration(timed.elapsed());
    stats.io = store.cluster().metrics_snapshot().since(&io_before);
    stats.retrieved = stats.io.entries_scanned;
    stats.candidates = stats.io.entries_returned;

    let mut tspan = root.child("refine");
    let span = Span::enter(store.registry(), "refine");
    let mut results = Vec::with_capacity(rows.len());
    for row in rows {
        if let Some((_, _, tid)) = parse_rowkey(&row.key) {
            results.push((tid, 0.0));
        }
    }
    results.sort_by_key(|&(tid, _)| tid);
    stats.refine_time = span.finish();
    if tspan.is_enabled() {
        tspan.set_field("results", results.len());
        tspan.set_duration(stats.refine_time);
    }
    tspan.finish();
    stats.results = results.len() as u64;
    stats.total_time = t_all.elapsed();
    let detail = format!(
        "window=[{},{}]x[{},{}] results={}",
        window.min_x,
        window.max_x,
        window.min_y,
        window.max_y,
        results.len()
    );
    if root.is_enabled() {
        root.set_field("retrieved", stats.retrieved);
        root.set_field("results", results.len());
    }
    root.finish();
    let trace = store.finish_trace(ctx);
    store.record_query(
        "range",
        detail,
        &stats,
        trace.clone(),
        trass_obs::QueryFingerprint::range(stats.n_ranges),
        trass_obs::alloc::thread_alloc_snapshot().since(&alloc_mark).bytes,
    );
    Ok((SearchResult { results, stats }, trace))
}

/// Index values (and whole-subtree ranges) whose space intersects the
/// unit-space window. Subtrees fully inside the window collapse to one
/// contiguous range — all their geometry lies inside the enlarged element,
/// so every descendant space intersects the window. Without the collapse a
/// window covering the space would enumerate all `4^r` elements.
fn window_values(index: &XzStar, window: &Mbr) -> (Vec<u64>, Vec<trass_index::ranges::ValueRange>) {
    // Planning budget: past it, boundary subtrees spill as whole ranges.
    // Spilled ranges over-cover (sound — the point-in-window filter decides),
    // trading a few extra scanned rows for bounded plan size; large windows
    // would otherwise emit hundreds of thousands of boundary ranges.
    let mut budget: u32 = 1 << 14;
    let mut out = Vec::new();
    let mut ranges = Vec::new();
    let mut queue = VecDeque::new();
    queue.push_back(Cell::ROOT);
    while let Some(cell) = queue.pop_front() {
        let ee = cell.enlarged();
        if !ee.intersects(window) {
            continue;
        }
        if budget == 0 {
            let (start, end) = index.subtree_range(&cell);
            ranges.push(trass_index::ranges::ValueRange { start, end });
            continue;
        }
        budget -= 1;
        // Collapse when the window covers the element's *effective* area
        // (its enlarged region clamped to the unit square — stored
        // trajectories never extend past it). Collapsing emits a superset
        // of the exact spaces, which is always sound for a range filter.
        let effective = Mbr::new(
            ee.min_x.max(0.0),
            ee.min_y.max(0.0),
            ee.max_x.min(1.0).max(ee.min_x.max(0.0)),
            ee.max_y.min(1.0).max(ee.min_y.max(0.0)),
        );
        if window.contains(&effective) {
            let (start, end) = index.subtree_range(&cell);
            ranges.push(trass_index::ranges::ValueRange { start, end });
            continue;
        }
        let rects = XzStar::quad_rects(&cell);
        let at_max = cell.level == index.max_resolution();
        for code in PositionCode::all(at_max) {
            let touches = code
                .quads()
                .iter()
                .filter_map(|q| q.quad_index())
                .any(|i| rects[i].intersects(window));
            if touches {
                out.push(index.encode(&IndexSpace { cell, code }));
            }
        }
        if cell.level < index.max_resolution() {
            queue.extend(cell.children());
        }
    }
    (out, ranges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrassConfig;
    use trass_geo::Point;
    use trass_traj::Trajectory;

    fn store_with_grid() -> TrajectoryStore {
        let extent = Mbr::new(116.0, 39.6, 116.8, 40.2);
        let store = TrajectoryStore::open(TrassConfig::for_extent(extent)).unwrap();
        // A 10×10 grid of short trajectories.
        let mut id = 0;
        for gx in 0..10 {
            for gy in 0..10 {
                let x = 116.05 + gx as f64 * 0.07;
                let y = 39.65 + gy as f64 * 0.05;
                let t = Trajectory::new(id, vec![Point::new(x, y), Point::new(x + 0.01, y + 0.01)]);
                store.insert(&t).unwrap();
                id += 1;
            }
        }
        store.flush().unwrap();
        store
    }

    #[test]
    fn matches_brute_force_over_grid() {
        let store = store_with_grid();
        let window = Mbr::new(116.1, 39.7, 116.3, 39.9);
        let got = range_search(&store, &window).unwrap();
        let got_ids: Vec<u64> = got.results.iter().map(|&(id, _)| id).collect();
        // Brute force against the same grid.
        let mut expected = Vec::new();
        let mut id = 0u64;
        for gx in 0..10 {
            for gy in 0..10 {
                let x = 116.05 + gx as f64 * 0.07;
                let y = 39.65 + gy as f64 * 0.05;
                let pts = [Point::new(x, y), Point::new(x + 0.01, y + 0.01)];
                if pts.iter().any(|p| window.contains_point(p)) {
                    expected.push(id);
                }
                id += 1;
            }
        }
        assert_eq!(got_ids, expected);
        assert!(!got_ids.is_empty());
    }

    #[test]
    fn empty_window_returns_nothing() {
        let store = store_with_grid();
        let window = Mbr::new(100.0, 10.0, 100.1, 10.1); // far away
        let got = range_search(&store, &window).unwrap();
        assert!(got.results.is_empty());
    }

    #[test]
    fn whole_extent_returns_everything() {
        let store = store_with_grid();
        let window = Mbr::new(116.0, 39.6, 116.8, 40.2);
        let got = range_search(&store, &window).unwrap();
        assert_eq!(got.results.len(), 100);
    }

    #[test]
    fn whole_space_window_completes_quickly() {
        // Regression: a window covering the entire index space used to
        // enumerate all 4^r elements. The subtree collapse must answer in
        // milliseconds via a handful of contiguous ranges.
        let store = store_with_grid();
        let window = Mbr::new(-200.0, -100.0, 400.0, 400.0);
        let t0 = std::time::Instant::now();
        let got = range_search(&store, &window).unwrap();
        assert!(t0.elapsed() < std::time::Duration::from_secs(5), "collapse failed");
        assert_eq!(got.results.len(), 100);
        assert!(got.stats.n_ranges < 100, "{} ranges", got.stats.n_ranges);
    }

    #[test]
    fn random_workload_matches_brute_force() {
        let extent = Mbr::new(116.0, 39.6, 116.8, 40.2);
        let store = TrajectoryStore::open(TrassConfig::for_extent(extent)).unwrap();
        let data = trass_traj::generator::tdrive_like(77, 200);
        store.insert_all(&data).unwrap();
        store.flush().unwrap();
        for window in [Mbr::new(116.2, 39.8, 116.4, 39.95), Mbr::new(116.0, 39.6, 116.1, 39.7)] {
            let got = range_search(&store, &window).unwrap();
            let got_ids: Vec<u64> = got.results.iter().map(|&(id, _)| id).collect();
            let mut expected: Vec<u64> = data
                .iter()
                .filter(|t| t.points().iter().any(|p| window.contains_point(p)))
                .map(|t| t.id)
                .collect();
            expected.sort_unstable();
            assert_eq!(got_ids, expected);
        }
    }
}
