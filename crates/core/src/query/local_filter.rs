//! Local filtering (§V-D, Algorithm 2) — the coprocessor-side predicate.
//!
//! Checks run cheap-first, exactly as §V-E prescribes:
//!
//! 1. **Lemma 12** — the start/end points of similar trajectories must be
//!    within ε (Fréchet and DTW only; Hausdorff has no endpoint coupling,
//!    §VII-A).
//! 2. **Lemma 13** — every DP representative point of one trajectory must
//!    be within ε of the other's covering-box union (both directions).
//! 3. **Lemma 14** — every edge of every DP covering box must be within ε
//!    of the other trajectory's box union (both directions).
//!
//! All distances here are in *world* units (degrees), matching the stored
//! geometry; global pruning, by contrast, works in unit space.

use crate::schema::RowValue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use trass_kv::{FilterDecision, ScanFilter};
use trass_traj::{DpFeatures, Measure, Trajectory};

/// Pre-computed query-side state, shared across the scans of one query.
#[derive(Debug, Clone)]
pub struct QuerySide {
    /// Raw query points (world units).
    pub points: Vec<trass_geo::Point>,
    /// Query DP features.
    pub features: DpFeatures,
    /// The similarity measure in use.
    pub measure: Measure,
}

impl QuerySide {
    /// Builds the query-side state, extracting DP features with tolerance
    /// `theta`.
    pub fn new(query: &Trajectory, theta: f64, measure: Measure) -> Arc<Self> {
        Arc::new(QuerySide {
            points: query.points().to_vec(),
            features: DpFeatures::extract(query, theta),
            measure,
        })
    }
}

/// Which check rejected a row (or none).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Pass,
    Lemma12,
    Lemma13,
    Lemma14,
}

/// Per-lemma reject counts, snapshotted after a scan for traces and
/// ablation reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterRejects {
    /// Rows rejected by the lemma 12 endpoint test.
    pub lemma12: u64,
    /// Rows rejected by the lemma 13 representative-point bound.
    pub lemma13: u64,
    /// Rows rejected by the lemma 14 covering-box bound.
    pub lemma14: u64,
    /// Rows that failed to decode (or were empty) and were skipped.
    pub corrupt: u64,
}

/// The push-down scan filter applying Lemmas 12–14.
pub struct LocalFilter {
    side: Arc<QuerySide>,
    eps: f64,
    /// Rows that survived the filter (the paper's "candidates").
    kept: AtomicU64,
    /// Per-lemma reject tallies (their sum is the total rejected).
    lemma12: AtomicU64,
    lemma13: AtomicU64,
    lemma14: AtomicU64,
    corrupt: AtomicU64,
}

impl LocalFilter {
    /// Creates a filter for the given query side and threshold (world
    /// units). `eps = f64::INFINITY` passes everything — the top-k warm-up
    /// state before k results exist.
    pub fn new(side: Arc<QuerySide>, eps: f64) -> Self {
        LocalFilter {
            side,
            eps,
            kept: AtomicU64::new(0),
            lemma12: AtomicU64::new(0),
            lemma13: AtomicU64::new(0),
            lemma14: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        }
    }

    /// Rows that survived so far.
    pub fn kept(&self) -> u64 {
        self.kept.load(Ordering::Relaxed)
    }

    /// Rows rejected so far (all causes).
    pub fn rejected(&self) -> u64 {
        let r = self.reject_counts();
        r.lemma12 + r.lemma13 + r.lemma14 + r.corrupt
    }

    /// Reject tallies broken down by the lemma that fired.
    pub fn reject_counts(&self) -> FilterRejects {
        FilterRejects {
            lemma12: self.lemma12.load(Ordering::Relaxed),
            lemma13: self.lemma13.load(Ordering::Relaxed),
            lemma14: self.lemma14.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }

    /// The pure predicate: would a row with these columns survive?
    pub fn passes(&self, row: &RowValue) -> bool {
        self.classify(row) == Verdict::Pass
    }

    /// Runs the checks cheap-first and names the first one that fails.
    fn classify(&self, row: &RowValue) -> Verdict {
        let q = &self.side;
        // Rejection slack: oriented-box distance arithmetic leaves ~1e-16
        // residue; a filter may only reject when the bound *certainly*
        // exceeds ε (matters for exact-duplicate searches at ε = 0).
        let eps = self.eps + 1e-12;
        // Lemma 12: endpoints must couple under Fréchet and DTW. Rows and
        // queries are non-empty by construction; an empty one simply has
        // no endpoints to test.
        if q.measure.supports_endpoint_lemma() {
            if let (Some(t_start), Some(t_end), Some(q_start), Some(q_end)) =
                (row.points.first(), row.points.last(), q.points.first(), q.points.last())
            {
                if q_start.distance(t_start) > eps || q_end.distance(t_end) > eps {
                    return Verdict::Lemma12;
                }
            }
        }
        // Lemma 13, both directions (Lemma 5 is symmetric in T₁/T₂).
        if !row.features.rep_points_within(&q.features, eps) {
            return Verdict::Lemma13;
        }
        if !q.features.rep_points_within(&row.features, eps) {
            return Verdict::Lemma13;
        }
        // Lemma 14, both directions.
        if !row.features.boxes_within(&q.features, eps) {
            return Verdict::Lemma14;
        }
        if !q.features.boxes_within(&row.features, eps) {
            return Verdict::Lemma14;
        }
        Verdict::Pass
    }
}

impl ScanFilter for LocalFilter {
    fn check(&self, _key: &[u8], value: &[u8]) -> FilterDecision {
        let Ok(row) = RowValue::decode(value) else {
            // A corrupt row cannot be verified; reject it rather than crash
            // the scan (it will surface via store-level checksums).
            self.corrupt.fetch_add(1, Ordering::Relaxed);
            return FilterDecision::Skip;
        };
        if row.points.is_empty() {
            self.corrupt.fetch_add(1, Ordering::Relaxed);
            return FilterDecision::Skip;
        }
        match self.classify(&row) {
            Verdict::Pass => {
                self.kept.fetch_add(1, Ordering::Relaxed);
                FilterDecision::Keep
            }
            Verdict::Lemma12 => {
                self.lemma12.fetch_add(1, Ordering::Relaxed);
                FilterDecision::Skip
            }
            Verdict::Lemma13 => {
                self.lemma13.fetch_add(1, Ordering::Relaxed);
                FilterDecision::Skip
            }
            Verdict::Lemma14 => {
                self.lemma14.fetch_add(1, Ordering::Relaxed);
                FilterDecision::Skip
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trass_geo::Point;

    fn traj(id: u64, pts: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(id, pts.iter().map(|&(x, y)| Point::new(x, y)).collect())
    }

    fn row_of(t: &Trajectory, theta: f64) -> RowValue {
        RowValue { points: t.points().to_vec(), features: DpFeatures::extract(t, theta) }
    }

    #[test]
    fn identical_trajectory_always_passes() {
        let q = traj(0, &[(0.0, 0.0), (1.0, 0.4), (2.0, 0.0)]);
        let side = QuerySide::new(&q, 0.1, Measure::Frechet);
        let filter = LocalFilter::new(side, 1e-9);
        assert!(filter.passes(&row_of(&q, 0.1)));
    }

    #[test]
    fn far_trajectory_rejected() {
        let q = traj(0, &[(0.0, 0.0), (1.0, 0.0)]);
        let t = traj(1, &[(10.0, 10.0), (11.0, 10.0)]);
        let side = QuerySide::new(&q, 0.1, Measure::Frechet);
        let filter = LocalFilter::new(side, 0.5);
        assert!(!filter.passes(&row_of(&t, 0.1)));
    }

    #[test]
    fn endpoint_lemma_only_for_coupling_measures() {
        // Same point set, reversed: endpoints differ, Hausdorff identical.
        let q = traj(0, &[(0.0, 0.0), (5.0, 0.0)]);
        let t = traj(1, &[(5.0, 0.0), (0.0, 0.0)]);
        let eps = 0.1;
        let frechet = LocalFilter::new(QuerySide::new(&q, 0.01, Measure::Frechet), eps);
        assert!(!frechet.passes(&row_of(&t, 0.01)), "Fréchet endpoint filter fires");
        let hausdorff = LocalFilter::new(QuerySide::new(&q, 0.01, Measure::Hausdorff), eps);
        assert!(
            hausdorff.passes(&row_of(&t, 0.01)),
            "Hausdorff must not reject a reversed trajectory"
        );
    }

    #[test]
    fn filter_never_rejects_truly_similar_rows() {
        // Soundness sweep: any trajectory whose actual distance is <= eps
        // must pass the filter.
        let q = traj(0, &[(0.0, 0.0), (1.0, 0.5), (2.0, -0.2), (3.0, 0.1)]);
        let side = QuerySide::new(&q, 0.2, Measure::Frechet);
        for dy in [0.0, 0.1, 0.3, 0.8] {
            let t = traj(1, &[(0.0, dy), (1.0, 0.5 + dy), (2.0, -0.2 + dy), (3.0, 0.1 + dy)]);
            let d = Measure::Frechet.distance(q.points(), t.points());
            let filter = LocalFilter::new(side.clone(), d + 1e-9);
            assert!(filter.passes(&row_of(&t, 0.2)), "rejected at its own distance (dy={dy})");
        }
    }

    #[test]
    fn infinite_eps_passes_everything() {
        let q = traj(0, &[(0.0, 0.0)]);
        let t = traj(1, &[(1000.0, 1000.0)]);
        let filter = LocalFilter::new(QuerySide::new(&q, 0.01, Measure::Frechet), f64::INFINITY);
        assert!(filter.passes(&row_of(&t, 0.01)));
    }

    #[test]
    fn scan_filter_counts_and_rejects_garbage() {
        let q = traj(0, &[(0.0, 0.0), (1.0, 0.0)]);
        let t_near = traj(1, &[(0.01, 0.0), (1.01, 0.0)]);
        let t_far = traj(2, &[(50.0, 50.0), (51.0, 50.0)]);
        let filter = LocalFilter::new(QuerySide::new(&q, 0.01, Measure::Frechet), 0.5);
        assert_eq!(filter.check(b"k", &row_of(&t_near, 0.01).encode()), FilterDecision::Keep);
        assert_eq!(filter.check(b"k", &row_of(&t_far, 0.01).encode()), FilterDecision::Skip);
        assert_eq!(filter.check(b"k", b"\x03garbage"), FilterDecision::Skip);
        assert_eq!(filter.kept(), 1);
        assert_eq!(filter.rejected(), 2);
        let rejects = filter.reject_counts();
        assert_eq!(rejects.corrupt, 1);
        assert_eq!(rejects.lemma12 + rejects.lemma13 + rejects.lemma14, 1, "{rejects:?}");
    }

    #[test]
    fn reject_counts_attribute_the_firing_lemma() {
        // Endpoints far apart → lemma 12 under Fréchet.
        let q = traj(0, &[(0.0, 0.0), (1.0, 0.0)]);
        let t = traj(1, &[(50.0, 0.0), (1.0, 0.0)]);
        let filter = LocalFilter::new(QuerySide::new(&q, 0.01, Measure::Frechet), 0.5);
        assert_eq!(filter.check(b"k", &row_of(&t, 0.01).encode()), FilterDecision::Skip);
        assert_eq!(filter.reject_counts().lemma12, 1);
        // Hausdorff skips lemma 12, so a far row falls to lemma 13/14.
        let filter = LocalFilter::new(QuerySide::new(&q, 0.01, Measure::Hausdorff), 0.5);
        let far = traj(2, &[(50.0, 50.0), (51.0, 50.0)]);
        assert_eq!(filter.check(b"k", &row_of(&far, 0.01).encode()), FilterDecision::Skip);
        let r = filter.reject_counts();
        assert_eq!(r.lemma12, 0);
        assert_eq!(r.lemma13 + r.lemma14, 1, "{r:?}");
    }
}
