//! Threshold similarity search (§V-E, Algorithm 3).

use crate::query::local_filter::{LocalFilter, QuerySide};
use crate::query::refine::{RefineContext, RefineOutcome};
use crate::query::timed_filter::TimedFilter;
use crate::schema::{parse_rowkey, rowkey_range, RowValue};
use crate::stats::{QueryStats, SearchResult};
use crate::store::TrajectoryStore;
use std::sync::Arc;
use std::time::Instant;
use trass_exec::TopKBound;
use trass_index::xzstar::{GlobalPruning, PruningConfig, QueryContext};
use trass_kv::{KeyRange, KvError};
use trass_obs::{QueryTrace, Span, TraceCtx, TraceSpan, STAGE_HISTOGRAM};
use trass_traj::{Measure, Trajectory};

/// At most this many per-candidate refine verdicts are recorded into a
/// trace; past the cap only the counts grow (traces stay bounded even for
/// ε covering the whole store).
const REFINE_VERDICT_CAP: usize = 16;

/// Finds every stored trajectory `T` with `f(Q, T) ≤ eps` (world units,
/// i.e. degrees under the default whole-earth space).
///
/// Follows Algorithm 3: global pruning generates the scan ranges
/// (Algorithm 1), local filtering runs inside the store's scan
/// (Algorithm 2), and only survivors pay the exact measure.
pub fn threshold_search(
    store: &TrajectoryStore,
    query: &Trajectory,
    eps: f64,
    measure: Measure,
) -> Result<SearchResult, KvError> {
    let ctx = store.begin_trace();
    let (result, _) = threshold_search_traced(store, query, eps, measure, ctx)?;
    Ok(result)
}

/// [`threshold_search`] under an explicit trace context: the driver for
/// both sampled production queries and `explain`. Returns the trace when
/// the context was enabled.
pub(crate) fn threshold_search_traced(
    store: &TrajectoryStore,
    query: &Trajectory,
    eps: f64,
    measure: Measure,
    ctx: TraceCtx,
) -> Result<(SearchResult, Option<Arc<QueryTrace>>), KvError> {
    // Driver-thread allocation delta over the whole query; feeds the
    // per-fingerprint workload summary.
    let alloc_mark = trass_obs::alloc::thread_alloc_snapshot();
    let mut root = ctx.root("threshold");
    root.set_label("measure", &measure.to_string());
    root.set_field("eps", eps);
    if root.is_enabled() {
        root.set_label("trace_id", &store.next_trace_id().to_string());
    }
    let result = match threshold_search_impl(store, query, eps, measure, None, &root) {
        Ok(result) => result,
        Err(e) => {
            store.record_query_error("threshold");
            return Err(e);
        }
    };
    root.set_field("results", result.results.len());
    root.finish();
    let trace = store.finish_trace(ctx);
    store.record_query(
        "threshold",
        format!("eps={eps} measure={measure} results={}", result.results.len()),
        &result.stats,
        trace.clone(),
        trass_obs::QueryFingerprint::threshold(&measure.to_string(), eps, query.points().len()),
        trass_obs::alloc::thread_alloc_snapshot().since(&alloc_mark).bytes,
    );
    Ok((result, trace))
}

/// The search body, shared with top-k's deepening rounds (which record one
/// aggregate "topk" query instead of one entry per round). Stage spans
/// (`pruning` / `scan` / `local-filter` / `refine`) become children of
/// `parent`; a disabled parent reduces every trace operation to a branch.
///
/// `bound` is top-k's early-exit protocol: refine workers shrink their
/// effective threshold to `min(eps, bound.current())` and offer every hit's
/// exact distance back. The bound is always ≥ the k-th best distance among
/// the hits recorded so far, so a skipped candidate is provably outside the
/// final top-k; which *non-top-k* hits get skipped depends on worker
/// timing, so per-round hit counts may vary across runs while the ranked
/// top-k (and plain threshold results, `bound = None`) never do.
pub(crate) fn threshold_search_impl(
    store: &TrajectoryStore,
    query: &Trajectory,
    eps: f64,
    measure: Measure,
    bound: Option<&TopKBound>,
    parent: &TraceSpan,
) -> Result<SearchResult, KvError> {
    if eps.is_nan() || eps < 0.0 {
        return Err(KvError::InvalidUsage { message: format!("invalid threshold {eps}") });
    }
    let t_all = Instant::now();
    let measure_name = measure.to_string();
    let labels: [(&str, &str); 1] = [("measure", &measure_name)];
    let mut stats = QueryStats::default();
    let config = store.config();

    // Global pruning (G-Pruning in Fig. 8).
    let span = Span::enter_with(store.registry(), "pruning", &labels);
    let mut tspan = parent.child("pruning");
    let unit_points = store.to_unit(query.points());
    let eps_unit = config.space.distance_to_unit(eps);
    let ctx = QueryContext::new(store.index(), unit_points, eps_unit);
    let pruner = GlobalPruning::new(
        store.index(),
        PruningConfig {
            range_gap: config.range_gap,
            use_position_codes: config.use_position_codes,
            use_min_dist: config.use_min_dist,
            ..PruningConfig::default()
        },
    );
    let (value_ranges, prune_stats) = pruner.query_ranges_stats(&ctx);
    let mut key_ranges: Vec<KeyRange> =
        Vec::with_capacity(value_ranges.len() * config.shards as usize);
    for shard in 0..config.shards {
        for vr in &value_ranges {
            key_ranges.push(rowkey_range(shard, vr.start, vr.end));
        }
    }
    stats.pruning_time = span.finish();
    stats.n_ranges = key_ranges.len();
    if tspan.is_enabled() {
        tspan.set_field("visited", prune_stats.visited);
        tspan.set_field("lemma8_pruned", prune_stats.lemma8_pruned);
        tspan.set_field("lemma9_pruned", prune_stats.lemma9_pruned);
        tspan.set_field("lemma10_codes_pruned", prune_stats.lemma10_codes_pruned);
        tspan.set_field("lemma11_codes_pruned", prune_stats.lemma11_codes_pruned);
        tspan.set_field("codes_emitted", prune_stats.codes_emitted);
        tspan.set_field("spilled_subtrees", prune_stats.spilled_subtrees);
        tspan.set_field("traversal_seconds", prune_stats.elapsed.as_secs_f64());
        tspan.set_field("value_ranges", value_ranges.len());
        tspan.set_field("key_ranges", key_ranges.len());
        tspan.set_duration(stats.pruning_time);
    }
    tspan.finish();

    // Scan with local filtering pushed down (L-Filtering in Fig. 8).
    let io_before = store.cluster().metrics_snapshot();
    let side = QuerySide::new(query, config.dp_theta, measure);
    // Ablation: an infinite threshold disables every local-filter lemma
    // while keeping the scan path identical.
    let filter_eps = if config.use_local_filter { eps } else { f64::INFINITY };
    let filter = LocalFilter::new(side, filter_eps);
    let timed = TimedFilter::new(&filter);
    let span = Span::enter_with(store.registry(), "scan", &labels);
    let mut tspan = parent.child("scan");
    let rows = store.cluster().scan_ranges_traced(&key_ranges, &timed, &tspan)?;
    stats.scan_time = span.finish();
    // The filter ran inside the scan; attribute its share separately.
    store
        .registry()
        .timer(STAGE_HISTOGRAM, &[("stage", "local-filter"), ("measure", &measure_name)])
        .record_duration(timed.elapsed());
    stats.io = store.cluster().metrics_snapshot().since(&io_before);
    stats.retrieved = stats.io.entries_scanned;
    stats.candidates = filter.kept();
    if tspan.is_enabled() {
        tspan.set_field("rows_returned", rows.len());
        tspan.set_duration(stats.scan_time);
        // The local filter ran inside the scan threads; record its share
        // (and per-lemma kills) as a sibling span with the accumulated
        // filter time rather than wall time.
        let mut fspan = parent.child("local-filter");
        let rejects = filter.reject_counts();
        fspan.set_field("kept", filter.kept());
        fspan.set_field("rejected", filter.rejected());
        fspan.set_field("lemma12_rejects", rejects.lemma12);
        fspan.set_field("lemma13_rejects", rejects.lemma13);
        fspan.set_field("lemma14_rejects", rejects.lemma14);
        fspan.set_field("corrupt_rejects", rejects.corrupt);
        fspan.set_duration(timed.elapsed());
        fspan.finish();
    }
    tspan.finish();

    // Refinement: exact similarity on the candidates, fanned out across
    // the store's refine pool. Lower bounds (endpoint / MBR gap / ref gap)
    // run before each exact kernel when `refine_bounds` is on; the kernel
    // itself abandons at the effective threshold. Either way the surviving
    // hits carry the bit-identical exact distance. Verdicts come back
    // indexed by candidate, so the merge below observes them in scan order
    // — the same order the sequential loop produced — and the trace stays
    // deterministic.
    let rctx = RefineContext::new(query.points(), config.refine_bounds);
    let span = Span::enter_with(store.registry(), "refine", &labels);
    let mut tspan = parent.child("refine");
    let run = store.refine_pool().run_timed(rows, |_, row| {
        let (_, _, tid) = parse_rowkey(&row.key)?;
        let value = RowValue::decode(&row.value).ok()?;
        // The row's cached DP-feature MBR covers the trajectory (covering
        // boxes), which is all the gap bound needs.
        let mbr = (!value.features.is_empty()).then(|| value.features.mbr());
        // Early exit: a bound tighter than eps means enough closer hits
        // are already recorded to disqualify anything past it.
        let eff = bound.map_or(eps, |b| b.effective(eps));
        let outcome = rctx.assess(query.points(), &value.points, mbr.as_ref(), measure, eff);
        if let RefineOutcome::Hit(d) = outcome {
            if let Some(b) = bound {
                b.offer(d);
            }
        }
        Some((tid, outcome))
    });
    let mut results = Vec::new();
    let mut verdicts = 0usize;
    for (tid, outcome) in run.results.into_iter().flatten() {
        if let RefineOutcome::Hit(d) = outcome {
            results.push((tid, d));
        }
        if tspan.is_enabled() && verdicts < REFINE_VERDICT_CAP {
            verdicts += 1;
            tspan.set_field("verdict", format!("tid={tid} {}", outcome.label()));
        }
    }
    results.sort_by_key(|&(tid, _)| tid);
    stats.refine_time = span.finish();
    stats.refine_worker_busy = run.worker_busy;
    stats.refine_prune = rctx.snapshot();
    stats.results = results.len() as u64;
    for (outcome, n) in [
        ("pruned-endpoint", stats.refine_prune.endpoint),
        ("pruned-mbr-gap", stats.refine_prune.mbr_gap),
        ("pruned-ref-gap", stats.refine_prune.ref_gap),
        ("abandoned", stats.refine_prune.abandoned),
        ("computed", stats.refine_prune.computed),
        ("corrupt", stats.refine_prune.corrupt),
    ] {
        if n > 0 {
            store.registry().counter("trass_refine_outcomes", &[("outcome", outcome)]).add(n);
        }
    }
    if tspan.is_enabled() {
        tspan.set_field("candidates", stats.candidates);
        tspan.set_field("hits", results.len());
        tspan.set_field("workers", stats.refine_workers());
        tspan.set_field("bounds_enabled", rctx.bounds_enabled());
        tspan.set_field("pruned_endpoint", stats.refine_prune.endpoint);
        tspan.set_field("pruned_mbr_gap", stats.refine_prune.mbr_gap);
        tspan.set_field("pruned_ref_gap", stats.refine_prune.ref_gap);
        tspan.set_field("abandoned", stats.refine_prune.abandoned);
        tspan.set_field("exact_computed", stats.refine_prune.computed);
        if stats.refine_prune.corrupt > 0 {
            tspan.set_field("corrupt_rejects", stats.refine_prune.corrupt);
        }
        if stats.candidates as usize > REFINE_VERDICT_CAP {
            tspan.set_field("verdicts_capped", true);
        }
        tspan.set_duration(stats.refine_time);
    }
    tspan.finish();
    stats.total_time = t_all.elapsed();
    Ok(SearchResult { results, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrassConfig;
    use trass_geo::Point;

    fn traj(id: u64, pts: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(id, pts.iter().map(|&(x, y)| Point::new(x, y)).collect())
    }

    /// A small city of trajectories around Beijing plus far-away noise.
    fn populated_store() -> (TrajectoryStore, Trajectory) {
        let store = TrajectoryStore::open(TrassConfig::default()).unwrap();
        let base =
            traj(100, &[(116.30, 39.90), (116.31, 39.905), (116.32, 39.90), (116.33, 39.91)]);
        store.insert(&base).unwrap();
        // Two shifted near-duplicates.
        for (id, dy) in [(101u64, 0.001), (102, 0.004)] {
            let pts: Vec<(f64, f64)> = base.points().iter().map(|p| (p.x, p.y + dy)).collect();
            store.insert(&traj(id, &pts)).unwrap();
        }
        // A same-shape trajectory far away.
        let far: Vec<(f64, f64)> = base.points().iter().map(|p| (p.x + 1.0, p.y + 1.0)).collect();
        store.insert(&traj(200, &far)).unwrap();
        // A much larger trajectory overlapping spatially.
        store.insert(&traj(300, &[(116.0, 39.6), (116.4, 40.0), (116.8, 39.7)])).unwrap();
        store.flush().unwrap();
        (store, base)
    }

    #[test]
    fn finds_exactly_the_similar_trajectories() {
        let (store, q) = populated_store();
        let hits = threshold_search(&store, &q, 0.002, Measure::Frechet).unwrap();
        let ids: Vec<u64> = hits.results.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![100, 101], "got {ids:?}");
        // Distances are correct and within threshold.
        for &(id, d) in &hits.results {
            assert!(d <= 0.002, "id {id} at distance {d}");
        }
        assert_eq!(hits.results[0].1, 0.0, "self-match at distance 0");
    }

    #[test]
    fn wider_threshold_finds_more() {
        let (store, q) = populated_store();
        let narrow = threshold_search(&store, &q, 0.002, Measure::Frechet).unwrap();
        let wide = threshold_search(&store, &q, 0.01, Measure::Frechet).unwrap();
        assert!(wide.results.len() > narrow.results.len());
        let wide_ids: Vec<u64> = wide.results.iter().map(|&(id, _)| id).collect();
        assert!(wide_ids.contains(&102));
        assert!(!wide_ids.contains(&200), "far twin still excluded");
    }

    #[test]
    fn results_match_brute_force() {
        // Ground truth comparison over a generated workload.
        let extent = trass_geo::Mbr::new(116.0, 39.6, 116.8, 40.2);
        let store = TrajectoryStore::open(TrassConfig::for_extent(extent)).unwrap();
        let data = trass_traj::generator::tdrive_like(7, 300);
        store.insert_all(&data).unwrap();
        store.flush().unwrap();
        let queries = trass_traj::generator::sample_queries(&data, 5, 99);
        for measure in [Measure::Frechet, Measure::Hausdorff, Measure::Dtw] {
            for q in &queries {
                let eps = 0.005;
                let got = threshold_search(&store, q, eps, measure).unwrap();
                let got_ids: Vec<u64> = got.results.iter().map(|&(id, _)| id).collect();
                let mut expected: Vec<u64> = data
                    .iter()
                    .filter(|t| measure.within(q.points(), t.points(), eps))
                    .map(|t| t.id)
                    .collect();
                expected.sort_unstable();
                assert_eq!(got_ids, expected, "measure {measure} query {}", q.id);
            }
        }
    }

    #[test]
    fn stats_are_consistent() {
        let (store, q) = populated_store();
        let hits = threshold_search(&store, &q, 0.002, Measure::Frechet).unwrap();
        let s = &hits.stats;
        assert!(s.n_ranges > 0);
        assert!(
            s.retrieved >= s.candidates,
            "retrieved {} candidates {}",
            s.retrieved,
            s.candidates
        );
        assert!(s.candidates >= s.results);
        assert_eq!(s.results, 2);
        assert!(s.precision() > 0.0 && s.precision() <= 1.0);
        assert!(s.io.range_scans as usize >= 1);
    }

    #[test]
    fn query_feeds_registry_and_slow_log() {
        let (store, q) = populated_store();
        let hits = threshold_search(&store, &q, 0.002, Measure::Frechet).unwrap();
        assert!(hits.stats.total_time >= hits.stats.scan_time);
        let text = store.render_prometheus();
        assert!(text.contains("# TYPE trass_query_stage_seconds histogram"));
        for stage in ["pruning", "scan", "local-filter", "refine"] {
            assert!(text.contains(&format!("stage=\"{stage}\"")), "missing stage {stage}");
        }
        assert!(
            text.contains("trass_query_stage_seconds_bucket{measure=\"frechet\",stage=\"scan\"")
        );
        assert!(text.contains("trass_query_stage_seconds_sum{measure=\"frechet\",stage=\"scan\"}"));
        assert!(
            text.contains("trass_query_stage_seconds_count{measure=\"frechet\",stage=\"scan\"} 1")
        );
        assert!(text.contains("trass_queries{kind=\"threshold\"} 1"));
        assert!(text.contains("trass_ingest_rows 5"));
        assert!(text.contains("trass_kv_region_scans"));
        let slow = store.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].kind, "threshold");
        assert!(slow[0].detail.contains("eps=0.002"), "detail: {}", slow[0].detail);
        assert!(slow[0].stats.total_time() > std::time::Duration::ZERO);
    }

    #[test]
    fn zero_threshold_finds_exact_duplicates_only() {
        let (store, q) = populated_store();
        let hits = threshold_search(&store, &q, 0.0, Measure::Frechet).unwrap();
        let ids: Vec<u64> = hits.results.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![100]);
    }

    #[test]
    fn negative_threshold_rejected() {
        let (store, q) = populated_store();
        assert!(threshold_search(&store, &q, -1.0, Measure::Frechet).is_err());
        assert!(threshold_search(&store, &q, f64::NAN, Measure::Frechet).is_err());
    }

    #[test]
    fn huge_threshold_completes_within_budget() {
        // Regression: an ε on the order of the whole space used to make
        // Algorithm 1 visit an exponential number of elements. The node
        // budget spills remaining subtrees into whole ranges instead.
        let (store, q) = populated_store();
        let t0 = std::time::Instant::now();
        let hits = threshold_search(&store, &q, 500.0, Measure::Frechet).unwrap();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(20),
            "budget fallback failed ({:?})",
            t0.elapsed()
        );
        // Everything in the store is within 500° of everything else.
        assert_eq!(hits.results.len(), 5);
    }

    #[test]
    fn empty_store_returns_empty() {
        let store = TrajectoryStore::open(TrassConfig::default()).unwrap();
        let q = traj(0, &[(10.0, 10.0), (10.1, 10.1)]);
        let hits = threshold_search(&store, &q, 0.01, Measure::Frechet).unwrap();
        assert!(hits.results.is_empty());
        assert_eq!(hits.stats.results, 0);
    }
}
