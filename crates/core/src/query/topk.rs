//! Top-k similarity search (§V-E, Algorithm 4 adapted).
//!
//! The paper's Algorithm 4 walks index spaces best-first by `minDistIS`,
//! tightening ε from the running k-th best. That traversal is exact but
//! degenerates on *sparse* stores: until k results exist ε is infinite, and
//! when fewer than k similar rows exist at all it must exhaust every index
//! space (4^r elements) before it can stop. The index-level primitive
//! ([`trass_index::xzstar::BestFirst`]) implements the paper's traversal
//! faithfully; this query path wraps the same pruning machinery in an
//! *iterative-deepening* driver that is exact under all data distributions:
//!
//! 1. run threshold search at a radius derived from the query's extent;
//! 2. if it returned ≥ k results, the true top-k all lie within that
//!    radius (the k-th best distance is ≤ ε and threshold search is
//!    complete) — rank and return;
//! 3. otherwise grow ε geometrically and repeat; once ε covers the whole
//!    space the search has degenerated to a full scan and terminates
//!    unconditionally.
//!
//! Rounds repeat work only on the (small) inner ranges already scanned;
//! the geometric growth bounds total work at a constant factor of the
//! final round.

use crate::query::threshold::threshold_search_impl;
use crate::stats::{QueryStats, SearchResult};
use crate::store::TrajectoryStore;
use std::sync::Arc;
use std::time::Instant;
use trass_exec::TopKBound;
use trass_kv::KvError;
use trass_obs::{QueryTrace, TraceCtx};
use trass_traj::{Measure, Trajectory};

/// Growth factor between deepening rounds.
const GROWTH: f64 = 4.0;

/// Finds the `k` stored trajectories most similar to `query`, ordered by
/// increasing distance. Exact for Fréchet and Hausdorff; for DTW the
/// threshold is a *sum* budget, which iterative deepening handles the same
/// way (Lemma 5 keeps every pruning stage sound for it).
pub fn top_k_search(
    store: &TrajectoryStore,
    query: &Trajectory,
    k: usize,
    measure: Measure,
) -> Result<SearchResult, KvError> {
    let ctx = store.begin_trace();
    let (result, _) = top_k_search_traced(store, query, k, measure, ctx)?;
    Ok(result)
}

/// [`top_k_search`] under an explicit trace context. Each deepening round
/// becomes a `round` child span (with its eps / candidates / results)
/// whose own children are that round's pruning/scan/refine stages.
pub(crate) fn top_k_search_traced(
    store: &TrajectoryStore,
    query: &Trajectory,
    k: usize,
    measure: Measure,
    ctx: TraceCtx,
) -> Result<(SearchResult, Option<Arc<QueryTrace>>), KvError> {
    let alloc_mark = trass_obs::alloc::thread_alloc_snapshot();
    let mut root = ctx.root("topk");
    root.set_label("measure", &measure.to_string());
    root.set_field("k", k);
    if root.is_enabled() {
        root.set_label("trace_id", &store.next_trace_id().to_string());
    }
    if k == 0 {
        root.finish();
        let trace = store.finish_trace(ctx);
        return Ok((SearchResult { results: Vec::new(), stats: QueryStats::default() }, trace));
    }
    let t_all = Instant::now();
    let space = &store.config().space;
    // Initial radius: a fraction of the query's own extent, floored at a
    // few cells of the finest resolution so point queries start sane.
    let cell_world = space.distance_to_world(0.5f64.powi(store.config().max_resolution as i32));
    let mbr = query.mbr();
    let mut eps = (mbr.width().max(mbr.height()) * 0.25).max(cell_world * 4.0);
    // ε covering the entire space ⇒ the search has become a full scan and
    // must terminate.
    let whole_space = space.distance_to_world(2.0);

    let mut stats = QueryStats::default();
    // Per-round summaries for the slow-log entry: the aggregate totals
    // alone hide which round did the damage.
    let mut rounds = Vec::new();
    loop {
        // Rounds go through the unrecorded body: the deepening loop logs
        // one aggregate "topk" query, not one entry per round.
        let round_no = rounds.len();
        let mut rspan = root.child("round");
        rspan.set_label("round", &round_no.to_string());
        rspan.set_field("eps", eps);
        // Early-exit bound for this round's refine stage. Fresh per round:
        // rounds rescan the inner ranges, and re-offering a duplicate hit
        // into a carried-over bound would shrink it below the true k-th
        // best. Within one round every row is offered at most once, so the
        // bound stays an upper bound on the k-th best and skipped
        // candidates are provably outside the top-k. The bound also cannot
        // change the termination test below: it only turns finite after k
        // hits are recorded, so `results.len() >= k` already holds
        // whenever anything was skipped.
        let round_bound = TopKBound::new(k);
        let round =
            match threshold_search_impl(store, query, eps, measure, Some(&round_bound), &rspan) {
                Ok(round) => round,
                Err(e) => {
                    store.record_query_error("topk");
                    return Err(e);
                }
            };
        rspan.set_field("candidates", round.stats.candidates);
        rspan.set_field("results", round.results.len());
        rspan.finish();
        rounds.push(format!(
            "r{round_no}(eps={eps:.6} candidates={} results={})",
            round.stats.candidates,
            round.results.len()
        ));
        stats.pruning_time += round.stats.pruning_time;
        stats.scan_time += round.stats.scan_time;
        stats.refine_time += round.stats.refine_time;
        stats.n_ranges += round.stats.n_ranges;
        stats.retrieved += round.stats.retrieved;
        stats.candidates += round.stats.candidates;
        stats.io = stats.io.plus(&round.stats.io);
        stats.refine_prune = stats.refine_prune.plus(&round.stats.refine_prune);
        // Per-worker busy time, summed position-wise across rounds (rounds
        // may use different worker counts when candidate sets are tiny).
        for (i, d) in round.stats.refine_worker_busy.iter().enumerate() {
            match stats.refine_worker_busy.get_mut(i) {
                Some(total) => *total += *d,
                None => stats.refine_worker_busy.push(*d),
            }
        }
        if round.results.len() >= k || eps >= whole_space {
            let mut results = round.results;
            results.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            results.truncate(k);
            stats.results = results.len() as u64;
            stats.total_time = t_all.elapsed();
            root.set_field("rounds", rounds.len());
            root.set_field("results", results.len());
            root.finish();
            let trace = store.finish_trace(ctx);
            store.record_query(
                "topk",
                format!(
                    "k={k} measure={measure} eps_final={eps} results={} rounds=[{}]",
                    results.len(),
                    rounds.join(" ")
                ),
                &stats,
                trace.clone(),
                trass_obs::QueryFingerprint::topk(&measure.to_string(), k, query.points().len()),
                trass_obs::alloc::thread_alloc_snapshot().since(&alloc_mark).bytes,
            );
            return Ok((SearchResult { results, stats }, trace));
        }
        eps = (eps * GROWTH).min(whole_space);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrassConfig;
    use trass_geo::Mbr;
    use trass_traj::TrajectoryId;

    fn workload_store(n: usize, seed: u64) -> (TrajectoryStore, Vec<Trajectory>) {
        let extent = Mbr::new(116.0, 39.6, 116.8, 40.2);
        let store = TrajectoryStore::open(TrassConfig::for_extent(extent)).unwrap();
        let data = trass_traj::generator::tdrive_like(seed, n);
        store.insert_all(&data).unwrap();
        store.flush().unwrap();
        (store, data)
    }

    fn brute_force_topk(
        data: &[Trajectory],
        q: &Trajectory,
        k: usize,
        measure: Measure,
    ) -> Vec<(TrajectoryId, f64)> {
        let mut all: Vec<(TrajectoryId, f64)> =
            data.iter().map(|t| (t.id, measure.distance(q.points(), t.points()))).collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn matches_brute_force_frechet() {
        let (store, data) = workload_store(250, 11);
        let queries = trass_traj::generator::sample_queries(&data, 4, 5);
        for q in &queries {
            let got = top_k_search(&store, q, 10, Measure::Frechet).unwrap();
            let expected = brute_force_topk(&data, q, 10, Measure::Frechet);
            assert_eq!(got.results.len(), 10);
            let got_d: Vec<f64> = got.results.iter().map(|&(_, d)| d).collect();
            let exp_d: Vec<f64> = expected.iter().map(|&(_, d)| d).collect();
            for (g, e) in got_d.iter().zip(exp_d.iter()) {
                assert!((g - e).abs() < 1e-9, "got {got_d:?} expected {exp_d:?}");
            }
        }
    }

    #[test]
    fn matches_brute_force_other_measures() {
        let (store, data) = workload_store(150, 23);
        let q = &data[17];
        for measure in [Measure::Hausdorff, Measure::Dtw] {
            let got = top_k_search(&store, q, 5, measure).unwrap();
            let expected = brute_force_topk(&data, q, 5, measure);
            let got_d: Vec<f64> = got.results.iter().map(|&(_, d)| d).collect();
            let exp_d: Vec<f64> = expected.iter().map(|&(_, d)| d).collect();
            for (g, e) in got_d.iter().zip(exp_d.iter()) {
                assert!((g - e).abs() < 1e-9, "{measure}: got {got_d:?} expected {exp_d:?}");
            }
        }
    }

    #[test]
    fn results_are_sorted_ascending() {
        let (store, data) = workload_store(200, 31);
        let got = top_k_search(&store, &data[3], 20, Measure::Frechet).unwrap();
        for w in got.results.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(got.results[0].1, 0.0, "the query itself is stored");
    }

    #[test]
    fn k_larger_than_dataset_returns_everything() {
        let (store, data) = workload_store(30, 41);
        let got = top_k_search(&store, &data[0], 100, Measure::Frechet).unwrap();
        assert_eq!(got.results.len(), 30);
    }

    #[test]
    fn k_zero_is_empty() {
        let (store, data) = workload_store(10, 43);
        let got = top_k_search(&store, &data[0], 0, Measure::Frechet).unwrap();
        assert!(got.results.is_empty());
    }

    #[test]
    fn pruning_bound_limits_retrieval() {
        // Deepening should stop well before scanning the whole store for a
        // dense neighbourhood.
        let (store, data) = workload_store(400, 53);
        let got = top_k_search(&store, &data[8], 5, Measure::Frechet).unwrap();
        assert!(
            got.stats.retrieved < 800,
            "retrieved {} rows for k=5 over 400 — no pruning happened",
            got.stats.retrieved
        );
        assert_eq!(got.results.len(), 5);
    }

    #[test]
    fn single_row_store() {
        let (store, data) = workload_store(1, 61);
        let got = top_k_search(&store, &data[0], 3, Measure::Frechet).unwrap();
        assert_eq!(got.results.len(), 1);
        assert_eq!(got.results[0].0, data[0].id);
    }
}
