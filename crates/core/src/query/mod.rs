//! Query processing (§V): threshold and top-k similarity search.
//!
//! Both searches share the same two-stage pruning pipeline:
//!
//! 1. **Global pruning** (§V-C) turns the query into a small set of index
//!    value ranges — resolution banding (Lemmas 6–7), element distance
//!    bounds (Lemmas 8–9), position-code filtering (Lemmas 10–11).
//! 2. **Local filtering** (§V-D) runs inside the store's scan, rejecting
//!    rows by endpoint distance (Lemma 12) and DP features (Lemmas 13–14)
//!    before they reach the client.
//!
//! Only the survivors pay the exact similarity computation.

mod local_filter;
pub(crate) mod range;
pub(crate) mod refine;
pub(crate) mod threshold;
mod timed_filter;
pub(crate) mod topk;

pub use local_filter::{FilterRejects, LocalFilter, QuerySide};
pub use range::range_search;
pub use threshold::threshold_search;
pub use timed_filter::TimedFilter;
pub use topk::top_k_search;
