//! TraSS: trajectory similarity search on a key-value data store.
//!
//! This crate is the framework of the paper — everything between a raw
//! trajectory and a similarity-search answer:
//!
//! * [`config`] — framework configuration (resolution, shards, DP
//!   tolerance, measure defaults).
//! * [`schema`] — the trajectory table of Table I: the rowkey
//!   `shard + index value + tid` (§IV-E) with both the integer encoding and
//!   the string encoding (`TraSS-S`) the paper compares against, plus the
//!   binary row-value layout (`points`, `dp-points`, `dp-mbrs` columns).
//! * [`store`] — [`store::TrajectoryStore`]: indexing and writing
//!   trajectories into the sharded KV cluster.
//! * [`query`] — threshold similarity search (Algorithms 1–3) and top-k
//!   similarity search (Algorithm 4), both with global pruning pushed into
//!   scan-range generation and local filtering pushed into the store's scan
//!   filter, for Fréchet (default), Hausdorff and DTW (§VII).
//! * [`stats`] — per-query accounting matching the paper's evaluation
//!   metrics (pruning time, retrieved rows, candidates, precision).
//!
//! # Quick start
//!
//! ```
//! use trass_core::{config::TrassConfig, store::TrajectoryStore, query};
//! use trass_traj::{Trajectory, Measure};
//! use trass_geo::Point;
//!
//! let store = TrajectoryStore::open(TrassConfig::default()).unwrap();
//! let t = Trajectory::new(1, vec![Point::new(116.40, 39.90), Point::new(116.41, 39.91)]);
//! store.insert(&t).unwrap();
//!
//! let query = Trajectory::new(0, vec![Point::new(116.401, 39.901)]);
//! let hits = query::threshold_search(&store, &query, 0.02, Measure::Frechet).unwrap();
//! assert_eq!(hits.results.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod query;
pub mod schema;
pub mod stats;
pub mod store;

pub use config::TrassConfig;
pub use query::{range_search, threshold_search, top_k_search};
pub use stats::{QueryStats, SearchResult};
pub use store::{SlowQueryRecord, TrajectoryStore};
