//! The trajectory table (Table I) and rowkey layout (§IV-E).
//!
//! ```text
//! rowkey = shard (1 byte) + index value (8 bytes, big-endian) + tid (8 bytes, big-endian)
//! value  = [points column][dp-points + dp-mbrs columns]   (length-prefixed)
//! ```
//!
//! Big-endian integers make byte-lexicographic key order equal numeric
//! order, so an index-value range is exactly one rowkey range per shard.
//! The alternative *string* rowkey (`TraSS-S` in Fig. 13) spells out the
//! quadrant sequence and position code as text; [`string_rowkey`] exists to
//! reproduce that storage-overhead comparison.

use bytes::Bytes;
use trass_geo::Point;
use trass_index::xzstar::IndexSpace;
use trass_kv::KeyRange;
use trass_traj::codec::{self, CodecError};
use trass_traj::{DpFeatures, TrajectoryId};

/// Length of an integer-encoded rowkey.
pub const ROWKEY_LEN: usize = 1 + 8 + 8;

/// Spreads trajectory ids over shards (the §IV-E "hash number").
/// SplitMix64 finalizer: cheap and avalanching, so sequential ids spread
/// evenly.
pub fn shard_of(tid: TrajectoryId, shards: u8) -> u8 {
    let mut z = tid.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as u8
}

/// Builds the integer rowkey `shard + index value + tid`.
pub fn rowkey(shard: u8, index_value: u64, tid: TrajectoryId) -> Vec<u8> {
    let mut key = Vec::with_capacity(ROWKEY_LEN);
    key.push(shard);
    key.extend_from_slice(&index_value.to_be_bytes());
    key.extend_from_slice(&tid.to_be_bytes());
    key
}

/// Parses a rowkey back into `(shard, index value, tid)`.
pub fn parse_rowkey(key: &[u8]) -> Option<(u8, u64, TrajectoryId)> {
    if key.len() != ROWKEY_LEN {
        return None;
    }
    let shard = *key.first()?;
    let value = u64::from_be_bytes(key.get(1..9)?.try_into().ok()?);
    let tid = u64::from_be_bytes(key.get(9..17)?.try_into().ok()?);
    Some((shard, value, tid))
}

/// The rowkey range covering index values `[lo, hi]` within one shard.
pub fn rowkey_range(shard: u8, lo: u64, hi: u64) -> KeyRange {
    debug_assert!(lo <= hi);
    let start = rowkey(shard, lo, 0);
    // End is exclusive: first key of value hi+1 (or of the next shard when
    // hi + 1 overflows, which cannot happen for real index values).
    let end = match hi.checked_add(1) {
        Some(next) => rowkey(shard, next, 0),
        None => {
            let mut k = vec![shard];
            k.extend_from_slice(&u64::MAX.to_be_bytes());
            k.extend_from_slice(&u64::MAX.to_be_bytes());
            k.push(0);
            k
        }
    };
    KeyRange::new(start, end)
}

/// The string rowkey of the `TraSS-S` ablation (Fig. 13(c)): the quadrant
/// sequence as ASCII digits, the position code, and the tid.
pub fn string_rowkey(shard: u8, space: &IndexSpace, tid: TrajectoryId) -> Vec<u8> {
    let mut key = Vec::new();
    key.push(shard);
    key.extend_from_slice(space.cell.sequence_string().as_bytes());
    key.push(b'#');
    key.extend_from_slice(space.code.0.to_string().as_bytes());
    key.push(b'#');
    key.extend_from_slice(&tid.to_be_bytes());
    key
}

/// One stored row: the `points` column plus the DP-feature columns.
#[derive(Debug, Clone, PartialEq)]
pub struct RowValue {
    /// Raw trajectory points (`points` column).
    pub points: Vec<Point>,
    /// DP representative indices and covering boxes (`dp-points` and
    /// `dp-mbrs` columns).
    pub features: DpFeatures,
}

impl RowValue {
    /// Serializes the row value: `[points_len: u32][points][features]`.
    pub fn encode(&self) -> Bytes {
        let points = codec::encode_points(&self.points);
        let features = codec::encode_features(&self.features);
        let mut out = Vec::with_capacity(4 + points.len() + features.len());
        out.extend_from_slice(&(points.len() as u32).to_le_bytes());
        out.extend_from_slice(&points);
        out.extend_from_slice(&features);
        Bytes::from(out)
    }

    /// Deserializes a row value written by [`RowValue::encode`].
    pub fn decode(buf: &[u8]) -> Result<RowValue, CodecError> {
        if buf.len() < 4 {
            return Err(CodecError::Truncated { context: "row value header" });
        }
        let header: [u8; 4] = buf[0..4]
            .try_into()
            .map_err(|_| CodecError::Truncated { context: "row value header" })?;
        let points_len = u32::from_le_bytes(header) as usize;
        let rest = &buf[4..];
        if points_len > rest.len() {
            return Err(CodecError::Truncated { context: "row value points column" });
        }
        let (points_buf, features_buf) = rest.split_at(points_len);
        let points = codec::decode_points(points_buf)?;
        let features = codec::decode_features(features_buf, &points)?;
        Ok(RowValue { points, features })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trass_traj::Trajectory;

    #[test]
    fn rowkey_roundtrip() {
        let key = rowkey(3, 0xDEAD_BEEF, 42);
        assert_eq!(key.len(), ROWKEY_LEN);
        assert_eq!(parse_rowkey(&key), Some((3, 0xDEAD_BEEF, 42)));
        assert_eq!(parse_rowkey(&key[..10]), None);
    }

    #[test]
    fn rowkey_order_matches_value_order() {
        // Big-endian: lexicographic byte order == numeric order.
        let mut keys: Vec<Vec<u8>> = [(0u64, 5u64), (1, 0), (1, 7), (2, 3), (300, 1)]
            .iter()
            .map(|&(v, t)| rowkey(1, v, t))
            .collect();
        let sorted = keys.clone();
        keys.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn rowkey_range_covers_exactly_the_values() {
        let r = rowkey_range(2, 10, 12);
        assert!(r.contains(&rowkey(2, 10, 0)));
        assert!(r.contains(&rowkey(2, 10, u64::MAX)));
        assert!(r.contains(&rowkey(2, 12, u64::MAX)));
        assert!(!r.contains(&rowkey(2, 13, 0)));
        assert!(!r.contains(&rowkey(2, 9, u64::MAX)));
        assert!(!r.contains(&rowkey(1, 11, 0)), "other shard excluded");
    }

    #[test]
    fn shard_of_disperses_sequential_ids() {
        let shards = 8u8;
        let mut counts = vec![0usize; shards as usize];
        for tid in 0..8000u64 {
            counts[shard_of(tid, shards) as usize] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "shard {s} got {c} of 8000 — poor dispersion");
        }
    }

    #[test]
    fn shard_of_is_stable() {
        assert_eq!(shard_of(12345, 8), shard_of(12345, 8));
        assert!(shard_of(1, 1) == 0);
    }

    #[test]
    fn row_value_roundtrip() {
        let points: Vec<Point> = (0..50)
            .map(|i| Point::new(116.0 + i as f64 * 0.001, 39.9 + (i % 7) as f64 * 0.002))
            .collect();
        let traj = Trajectory::new(9, points.clone());
        let features = DpFeatures::extract(&traj, 0.003);
        let row = RowValue { points, features };
        let enc = row.encode();
        assert_eq!(RowValue::decode(&enc).unwrap(), row);
    }

    #[test]
    fn row_value_rejects_corruption() {
        let points = vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)];
        let traj = Trajectory::new(1, points.clone());
        let row = RowValue { points, features: DpFeatures::extract(&traj, 0.01) };
        let enc = row.encode();
        assert!(RowValue::decode(&enc[..3]).is_err());
        assert!(RowValue::decode(&enc[..enc.len() - 2]).is_err());
        let mut huge = enc.to_vec();
        huge[0] = 0xFF;
        huge[1] = 0xFF;
        assert!(RowValue::decode(&huge).is_err());
    }

    #[test]
    fn integer_rowkey_is_smaller_than_string_rowkey() {
        // Fig. 13(c): integer encoding cuts rowkey bytes vs TraSS-S.
        use trass_index::xzstar::XzStar;
        let index = XzStar::new(16);
        let points: Vec<Point> = vec![Point::new(0.41231, 0.33127), Point::new(0.41233, 0.33129)];
        let space = index.index_points(&points);
        assert!(space.cell.level >= 10, "deep space for a fair comparison");
        let int_key = rowkey(1, index.encode(&space), 77);
        let str_key = string_rowkey(1, &space, 77);
        assert!(int_key.len() < str_key.len(), "int {} vs string {}", int_key.len(), str_key.len());
    }
}
