//! Per-query accounting, matching the paper's evaluation metrics.

use std::time::Duration;
use trass_kv::metrics::MetricsSnapshot;
use trass_traj::TrajectoryId;

/// Timing and volume statistics of one similarity query.
///
/// The fields mirror §VI-C's metrics: `pruning_time` (global pruning),
/// `retrieved` (rows visited by scans — the global-pruning filtration
/// capacity), `candidates` (rows surviving local filtering — Fig. 9(b) /
/// Fig. 10(b)), and `results` (final answers); `precision` is
/// `results / candidates` (Fig. 11(c)).
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Time spent generating scan ranges (global pruning).
    pub pruning_time: Duration,
    /// Time spent scanning the store, local filtering included (it runs
    /// inside the scan, as an HBase coprocessor would).
    pub scan_time: Duration,
    /// Time spent computing exact similarity on the candidates.
    pub refine_time: Duration,
    /// Number of rowkey range scans issued.
    pub n_ranges: usize,
    /// Rows visited by the scans (I/O volume after global pruning).
    pub retrieved: u64,
    /// Rows surviving local filtering (the paper's "candidates").
    pub candidates: u64,
    /// Final answers.
    pub results: u64,
    /// Store-level I/O deltas for this query.
    pub io: MetricsSnapshot,
    /// Measured end-to-end wall-clock time, set by the query drivers.
    /// Zero when the stats were assembled by hand (tests, aggregation).
    pub total_time: Duration,
    /// Busy wall-clock time of each refine worker (one entry per worker
    /// that participated; a single entry for sequential execution). Summed
    /// across rounds for top-k queries.
    pub refine_worker_busy: Vec<Duration>,
    /// Refine-stage outcome attribution: which lower bound (or kernel
    /// abandon) disposed of each candidate. Summed across rounds for
    /// top-k queries.
    pub refine_prune: RefinePrune,
}

/// Per-query refine-stage outcome tallies (one count per candidate that
/// reached refinement). `endpoint`/`mbr_gap`/`ref_gap` attribute prunes to
/// the lower bound that fired; `abandoned` counts kernel early-exits;
/// `computed` counts full exact evaluations (the hits); `corrupt` counts
/// skipped undecodable/empty rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefinePrune {
    /// Candidates pruned by the endpoint lower bound (Fréchet/DTW).
    pub endpoint: u64,
    /// Candidates pruned by the MBR-gap lower bound.
    pub mbr_gap: u64,
    /// Candidates pruned by the reference-point interval-gap bound.
    pub ref_gap: u64,
    /// Candidates the exact kernel abandoned once the running value
    /// crossed the threshold (no exact value computed).
    pub abandoned: u64,
    /// Candidates whose exact distance was fully computed (the hits).
    pub computed: u64,
    /// Rows skipped as corrupt at the refine call site (empty point
    /// sequence — the exact kernels reject those by assertion).
    pub corrupt: u64,
}

impl RefinePrune {
    /// Candidates disposed of by a lower bound, before any exact kernel.
    pub fn pruned_total(&self) -> u64 {
        self.endpoint + self.mbr_gap + self.ref_gap
    }

    /// Element-wise sum (top-k round aggregation).
    pub fn plus(&self, other: &RefinePrune) -> RefinePrune {
        RefinePrune {
            endpoint: self.endpoint + other.endpoint,
            mbr_gap: self.mbr_gap + other.mbr_gap,
            ref_gap: self.ref_gap + other.ref_gap,
            abandoned: self.abandoned + other.abandoned,
            computed: self.computed + other.computed,
            corrupt: self.corrupt + other.corrupt,
        }
    }
}

impl QueryStats {
    /// `results / candidates` — Fig. 11(c)'s precision (1.0 when there were
    /// no candidates).
    pub fn precision(&self) -> f64 {
        if self.candidates == 0 {
            1.0
        } else {
            self.results as f64 / self.candidates as f64
        }
    }

    /// Total wall-clock time of the query: the measured end-to-end time
    /// when the driver recorded one, otherwise the sum of the phase timers.
    /// The measured time also covers work *between* the phases (range
    /// grouping, stats assembly), so it can exceed the phase sum.
    pub fn total_time(&self) -> Duration {
        if self.total_time != Duration::ZERO {
            self.total_time
        } else {
            self.pruning_time + self.scan_time + self.refine_time
        }
    }

    /// Number of workers that participated in the refine stage (0 when no
    /// refine ran).
    pub fn refine_workers(&self) -> usize {
        self.refine_worker_busy.len()
    }

    /// Summed busy time across refine workers — CPU-style time, which
    /// exceeds `refine_time` wall clock when refinement ran in parallel.
    pub fn refine_busy_total(&self) -> Duration {
        self.refine_worker_busy.iter().sum()
    }
}

/// The outcome of a similarity search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Matching trajectories. Threshold search orders by id; top-k search
    /// orders by increasing distance.
    pub results: Vec<(TrajectoryId, f64)>,
    /// Query accounting.
    pub stats: QueryStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_handles_zero_candidates() {
        let s = QueryStats::default();
        assert_eq!(s.precision(), 1.0);
        let s = QueryStats { candidates: 4, results: 1, ..QueryStats::default() };
        assert_eq!(s.precision(), 0.25);
    }

    #[test]
    fn total_time_sums_phases_when_unmeasured() {
        let s = QueryStats {
            pruning_time: Duration::from_millis(1),
            scan_time: Duration::from_millis(2),
            refine_time: Duration::from_millis(3),
            ..QueryStats::default()
        };
        assert_eq!(s.total_time(), Duration::from_millis(6));
    }

    #[test]
    fn measured_total_time_wins_over_phase_sum() {
        let s = QueryStats {
            pruning_time: Duration::from_millis(1),
            scan_time: Duration::from_millis(2),
            refine_time: Duration::from_millis(3),
            total_time: Duration::from_millis(10),
            ..QueryStats::default()
        };
        assert_eq!(s.total_time(), Duration::from_millis(10));
    }
}
