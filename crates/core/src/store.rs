//! The trajectory store: indexing and writing (§IV-E, Fig. 8's write path).

use crate::config::TrassConfig;
use crate::schema::{rowkey, shard_of, RowValue};
use crate::stats::{QueryStats, SearchResult};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use trass_exec::ScopedPool;
use trass_geo::{Mbr, Point};
use trass_index::xzstar::{IndexSpace, XzStar};
use trass_kv::{Cluster, ClusterOptions, KvError};
use trass_obs::{
    Counter, FlightRecorder, HealthRegistry, Histogram, QueryFingerprint, QueryTrace, Registry,
    SloObjective, SlowLog, Telemetry, TelemetryOptions, TelemetrySources, TraceCtx, TraceSampler,
    WorkloadStats, WorkloadSummary,
};
use trass_traj::{DpFeatures, Measure, Trajectory, TrajectoryId};

/// How many slow queries the store retains (top-N by total time).
const SLOW_LOG_CAPACITY: usize = 32;

/// How many completed query traces the flight recorder retains.
const FLIGHT_RECORDER_CAPACITY: usize = 32;

/// One retained slow query: what ran and its full accounting.
#[derive(Debug, Clone)]
pub struct SlowQueryRecord {
    /// Query kind: `"threshold"`, `"topk"`, or `"range"`.
    pub kind: &'static str,
    /// Human-readable query parameters and outcome.
    pub detail: String,
    /// The query's full stats (timings, I/O, cardinalities).
    pub stats: QueryStats,
    /// The query's span tree, when the query was traced (sampled or
    /// explained). Untraced queries retain `None` — tracing every
    /// potential slow query would defeat sampling.
    pub trace: Option<Arc<QueryTrace>>,
}

/// A query to run under [`TrajectoryStore::explain`].
#[derive(Debug, Clone)]
pub enum ExplainQuery<'a> {
    /// Threshold similarity search (`f(Q, T) ≤ eps`).
    Threshold {
        /// The query trajectory.
        query: &'a Trajectory,
        /// Similarity threshold in world units.
        eps: f64,
        /// Similarity measure.
        measure: Measure,
    },
    /// Top-k similarity search.
    TopK {
        /// The query trajectory.
        query: &'a Trajectory,
        /// Number of results.
        k: usize,
        /// Similarity measure.
        measure: Measure,
    },
    /// Spatial range query.
    Range {
        /// Query window in world coordinates.
        window: Mbr,
    },
}

/// An explained query: its answer plus the full execution trace.
#[derive(Debug, Clone)]
pub struct Explained {
    /// The query's normal result.
    pub result: SearchResult,
    /// The execution span tree ([`QueryTrace::render_text`] /
    /// [`QueryTrace::render_json`] for the two renderings).
    pub trace: Arc<QueryTrace>,
}

/// A TraSS deployment: the XZ\* index plus the sharded KV cluster.
///
/// Two tables live in the deployment: the trajectory table keyed by
/// `shard + index value + tid` (Table I) and a small id-index table
/// (`tid → index value`) enabling point lookups, deletes, and
/// move-aware re-inserts — the operational surface a production system
/// needs beyond the paper's read-mostly evaluation.
pub struct TrajectoryStore {
    config: TrassConfig,
    index: XzStar,
    cluster: Cluster,
    /// Secondary table: tid → current index value.
    id_index: Cluster,
    /// Shared metric registry: the query pipeline, the ingest path, and
    /// every region of the main cluster report into it.
    registry: Arc<Registry>,
    /// Top-N slowest queries by total wall-clock time (shared with the
    /// telemetry endpoint's `/slowlog` route).
    slow_queries: Arc<SlowLog<SlowQueryRecord>>,
    /// Deterministic 1-in-N query trace sampling.
    tracer: TraceSampler,
    /// Ring buffer of the last N completed traces (shared with the
    /// telemetry endpoint's `/traces` route).
    flight: Arc<FlightRecorder>,
    /// Worker pool for candidate refinement (`config.query_threads`
    /// workers; `1` refines inline on the query thread).
    refine_pool: ScopedPool,
    /// Per-fingerprint workload aggregation (shared with the telemetry
    /// endpoint's `/workload` route).
    workload: Arc<WorkloadSummary>,
    /// Monotonic id handed to traced queries; the root span carries it as
    /// the `trace_id` label so slow-log entries can name their trace.
    trace_seq: AtomicU64,
    ingest_seconds: Arc<Histogram>,
    ingest_rows: Arc<Counter>,
    query_obs: QueryObs,
}

/// Pre-resolved handles for the query pipeline's cumulative (unlabelled)
/// series. The SLO evaluator reads exactly these series, so they are
/// created at open rather than lazily on the first query.
struct QueryObs {
    /// Every finished query, successful or not.
    queries_total: Arc<Counter>,
    /// End-to-end latency of successful queries.
    query_seconds: Arc<Histogram>,
    /// Queries that returned an error.
    errors_total: Arc<Counter>,
}

impl TrajectoryStore {
    /// Opens a store with the given configuration.
    pub fn open(config: TrassConfig) -> Result<Self, KvError> {
        config.validate().map_err(|m| KvError::InvalidUsage { message: m })?;
        let registry = Registry::new_shared();
        let cluster = Cluster::open(ClusterOptions {
            shards: config.shards,
            store: config.store.clone(),
            parallel_scans: config.parallel_scans,
            scan_threads: config.query_threads,
            registry: Some(Arc::clone(&registry)),
        })?;
        let mut id_store = config.store.clone();
        if let Some(dir) = &config.store.dir {
            id_store.dir = Some(dir.join("id-index"));
        }
        // The id-index keeps a private registry: its regions reuse the same
        // shard labels as the main cluster and would collide otherwise.
        let id_index = Cluster::open(ClusterOptions {
            shards: config.shards,
            store: id_store,
            parallel_scans: false, // point lookups only
            scan_threads: 1,
            registry: None,
        })?;
        let index = XzStar::new(config.max_resolution);
        let ingest_seconds = registry.timer("trass_ingest_seconds", &[]);
        let ingest_rows = registry.counter("trass_ingest_rows", &[]);
        // Deployment identity for dashboards: the value is always 1; the
        // configuration travels in the labels.
        let shards = config.shards.to_string();
        registry
            .gauge(
                "trass_build_info",
                &[
                    ("version", env!("CARGO_PKG_VERSION")),
                    ("shards", &shards),
                    ("use_position_codes", bool_label(config.use_position_codes)),
                    ("use_min_dist", bool_label(config.use_min_dist)),
                    ("use_local_filter", bool_label(config.use_local_filter)),
                ],
            )
            .set(1);
        let query_obs = QueryObs {
            queries_total: registry.counter("trass_queries_total", &[]),
            query_seconds: registry.timer("trass_query_seconds", &[]),
            errors_total: registry.counter("trass_query_errors_total", &[]),
        };
        Ok(TrajectoryStore {
            tracer: TraceSampler::every(config.trace_sample_every),
            flight: Arc::new(FlightRecorder::new(FLIGHT_RECORDER_CAPACITY)),
            refine_pool: ScopedPool::with_registry(config.query_threads, &registry, "refine"),
            workload: Arc::new(WorkloadSummary::new(config.workload_fingerprints)),
            trace_seq: AtomicU64::new(0),
            config,
            index,
            cluster,
            id_index,
            registry,
            slow_queries: Arc::new(SlowLog::new(SLOW_LOG_CAPACITY)),
            ingest_seconds,
            ingest_rows,
            query_obs,
        })
    }

    /// The configuration this store was opened with.
    pub fn config(&self) -> &TrassConfig {
        &self.config
    }

    /// The XZ\* index.
    pub fn index(&self) -> &XzStar {
        &self.index
    }

    /// The underlying KV cluster (exposed for metrics and experiments).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The deployment's metric registry (queries, ingest, and the main
    /// cluster's regions all report here).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The slowest queries seen so far, slowest first.
    pub fn slow_queries(&self) -> Vec<SlowQueryRecord> {
        self.slow_queries.snapshot().into_iter().map(|(_, r)| r).collect()
    }

    /// The flight recorder holding the last N completed query traces
    /// (sampled queries and every `explain`).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Per-fingerprint workload summary: every finished query is
    /// normalised into a shape fingerprint and aggregated here.
    pub fn workload(&self) -> &WorkloadSummary {
        &self.workload
    }

    /// Starts the embedded telemetry endpoint with default options: bound
    /// to [`TrassConfig::telemetry_addr`] (or an ephemeral localhost port
    /// when unset), 1 s collection interval, 2 min of history, and the
    /// default SLOs — query p99 latency under 500 ms at 99%, and query
    /// error rate under 0.1%.
    ///
    /// The returned [`Telemetry`] owns the server and collector threads;
    /// dropping it (or calling [`Telemetry::shutdown`]) stops both.
    pub fn serve_telemetry(&self) -> std::io::Result<Telemetry> {
        let addr = self.config.telemetry_addr.clone().unwrap_or_else(|| "127.0.0.1:0".to_string());
        self.serve_telemetry_with(TelemetryOptions {
            addr,
            objectives: Self::default_slo_objectives(),
            ..TelemetryOptions::default()
        })
    }

    /// [`TrajectoryStore::serve_telemetry`] with explicit options (bind
    /// address, collection interval, history depth, SLO objectives).
    pub fn serve_telemetry_with(&self, opts: TelemetryOptions) -> std::io::Result<Telemetry> {
        let health = HealthRegistry::new_shared();
        self.cluster.register_health_probes(&health);
        self.refine_pool.register_health_probe(&health, "refine-pool", 256);
        let slow = Arc::clone(&self.slow_queries);
        // Each scrape refreshes the cluster's I/O counters and the
        // stage-tagged allocation/CPU accounting in the same pass.
        let publish_cluster = self.cluster.metrics_publisher();
        let registry = Arc::clone(&self.registry);
        Telemetry::serve(
            opts,
            TelemetrySources {
                registry: Arc::clone(&self.registry),
                refresh: Some(Arc::new(move || {
                    publish_cluster();
                    trass_obs::alloc::publish(&registry);
                })),
                flight: Some(Arc::clone(&self.flight)),
                slowlog: Some(Arc::new(move |json| render_slowlog(&slow, json))),
                workload: Some(Arc::clone(&self.workload)),
                health,
            },
        )
    }

    /// The default SLO objectives evaluated by the telemetry endpoint.
    pub fn default_slo_objectives() -> Vec<SloObjective> {
        vec![
            SloObjective::latency_under("query-latency-p99", "trass_query_seconds", 0.5, 0.99),
            SloObjective::error_ratio(
                "query-error-rate",
                "trass_query_errors_total",
                "trass_queries_total",
                0.999,
            ),
        ]
    }

    /// Runs a query with tracing forced on and returns its result together
    /// with the execution span tree — the `EXPLAIN ANALYZE` entry point.
    /// The query runs for real (it counts in metrics, the slow log, and
    /// the flight recorder).
    pub fn explain(&self, query: ExplainQuery<'_>) -> Result<Explained, KvError> {
        let ctx = TraceCtx::enabled();
        let (result, trace) = match query {
            ExplainQuery::Threshold { query, eps, measure } => {
                crate::query::threshold::threshold_search_traced(self, query, eps, measure, ctx)?
            }
            ExplainQuery::TopK { query, k, measure } => {
                crate::query::topk::top_k_search_traced(self, query, k, measure, ctx)?
            }
            ExplainQuery::Range { window } => {
                crate::query::range::range_search_traced(self, &window, ctx)?
            }
        };
        let trace = trace.ok_or_else(|| KvError::Corruption {
            context: "explain trace context produced no trace".into(),
        })?;
        Ok(Explained { result, trace })
    }

    /// Starts a trace context for one query: enabled for 1-in-N sampled
    /// queries, otherwise the no-op context (a single branch per span on
    /// the hot path). Called by the query drivers.
    pub(crate) fn begin_trace(&self) -> TraceCtx {
        if self.tracer.sample() {
            TraceCtx::enabled()
        } else {
            TraceCtx::disabled()
        }
    }

    /// The refinement worker pool, shared by the query drivers.
    pub(crate) fn refine_pool(&self) -> &ScopedPool {
        &self.refine_pool
    }

    /// Completes a trace context: assembles the span tree and retains it
    /// in the flight recorder. `None` for untraced queries.
    pub(crate) fn finish_trace(&self, ctx: TraceCtx) -> Option<Arc<QueryTrace>> {
        let trace = Arc::new(ctx.finish()?);
        self.flight.push(Arc::clone(&trace));
        Some(trace)
    }

    /// The next trace id. Assigned to sampled/explained queries only, so
    /// ids stay dense across the traces that actually exist.
    pub(crate) fn next_trace_id(&self) -> u64 {
        self.trace_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Counts a finished query, folds it into the per-fingerprint workload
    /// summary, and offers it to the slow-query log (with its trace
    /// attached when one was recorded). Called by the query drivers.
    /// `alloc_bytes` is the driver-thread allocation delta over the whole
    /// query (0 when the counting allocator is not installed).
    pub(crate) fn record_query(
        &self,
        kind: &'static str,
        detail: String,
        stats: &QueryStats,
        trace: Option<Arc<QueryTrace>>,
        fingerprint: QueryFingerprint,
        alloc_bytes: u64,
    ) {
        self.registry.counter("trass_queries", &[("kind", kind)]).inc();
        self.query_obs.queries_total.inc();
        self.query_obs.query_seconds.record_duration(stats.total_time());
        self.workload.record(
            &fingerprint,
            &WorkloadStats {
                latency: stats.total_time(),
                bytes_scanned: stats.io.bytes_read,
                retrieved: stats.retrieved,
                candidates: stats.candidates,
                results: stats.results,
                refine_pruned: stats.refine_prune.pruned_total(),
                alloc_bytes,
            },
        );
        self.slow_queries.record(
            stats.total_time().as_nanos() as u64,
            SlowQueryRecord { kind, detail, stats: stats.clone(), trace },
        );
    }

    /// Counts a query that failed with an error. The error also counts in
    /// `trass_queries_total` so the SLO error ratio's denominator covers
    /// every attempt, not just the successful ones.
    pub(crate) fn record_query_error(&self, kind: &'static str) {
        self.registry.counter("trass_query_errors", &[("kind", kind)]).inc();
        self.query_obs.errors_total.inc();
        self.query_obs.queries_total.inc();
    }

    /// Renders every metric in the Prometheus text exposition format,
    /// after mirroring the cluster's cumulative I/O counters into the
    /// registry (so the scrape sees fresh per-shard values).
    pub fn render_prometheus(&self) -> String {
        self.cluster.publish_metrics();
        trass_obs::alloc::publish(&self.registry);
        self.registry.render_prometheus()
    }

    /// Renders every metric as a JSON document (same refresh semantics as
    /// [`TrajectoryStore::render_prometheus`]).
    pub fn render_json(&self) -> String {
        self.cluster.publish_metrics();
        trass_obs::alloc::publish(&self.registry);
        self.registry.render_json()
    }

    /// Maps a trajectory's world-space points into unit space.
    pub fn to_unit(&self, points: &[Point]) -> Vec<Point> {
        points.iter().map(|p| self.config.space.to_unit(p)).collect()
    }

    /// Computes the XZ\* index space of a trajectory (the write path's
    /// "Indexing" stage in Fig. 8).
    pub fn index_space_of(&self, traj: &Trajectory) -> IndexSpace {
        let unit = self.to_unit(traj.points());
        self.index.index_points(&unit)
    }

    /// The id-index key of a trajectory: `shard + tid`.
    fn id_key(&self, tid: TrajectoryId) -> Vec<u8> {
        let mut k = Vec::with_capacity(9);
        k.push(shard_of(tid, self.config.shards));
        k.extend_from_slice(&tid.to_be_bytes());
        k
    }

    /// The current index value of a stored trajectory, if any.
    fn stored_value_of(&self, tid: TrajectoryId) -> Result<Option<u64>, KvError> {
        match self.id_index.get(&self.id_key(tid))? {
            Some(bytes) => match <[u8; 8]>::try_from(bytes.as_ref()) {
                Ok(raw) => Ok(Some(u64::from_le_bytes(raw))),
                Err(_) => Err(KvError::Corruption { context: "id-index value size".into() }),
            },
            None => Ok(None),
        }
    }

    /// Inserts (or replaces) one trajectory: extracts DP features, computes
    /// the index value, and writes the row. A re-insert whose geometry
    /// moved to a different index space removes the stale row first.
    pub fn insert(&self, traj: &Trajectory) -> Result<(), KvError> {
        let t = Instant::now();
        let space = self.index_space_of(traj);
        let value = self.index.encode(&space);
        let shard = shard_of(traj.id, self.config.shards);
        // Move-aware replace: drop the old row if the index value changed.
        if let Some(old_value) = self.stored_value_of(traj.id)? {
            if old_value != value {
                self.cluster.delete(rowkey(shard, old_value, traj.id))?;
            }
        }
        let key = rowkey(shard, value, traj.id);
        let row = RowValue {
            points: traj.points().to_vec(),
            features: DpFeatures::extract(traj, self.config.dp_theta),
        };
        self.cluster.put(key, row.encode())?;
        self.id_index.put(self.id_key(traj.id), value.to_le_bytes().to_vec())?;
        self.ingest_rows.inc();
        self.ingest_seconds.record_duration(t.elapsed());
        Ok(())
    }

    /// Fetches a trajectory by id.
    pub fn get(&self, tid: TrajectoryId) -> Result<Option<Trajectory>, KvError> {
        let Some(value) = self.stored_value_of(tid)? else { return Ok(None) };
        let shard = shard_of(tid, self.config.shards);
        let Some(bytes) = self.cluster.get(&rowkey(shard, value, tid))? else {
            return Err(KvError::Corruption {
                context: format!("id-index points at missing row for tid {tid}"),
            });
        };
        let row = RowValue::decode(&bytes).map_err(|e| KvError::Corruption {
            context: format!("row value for tid {tid}: {e}"),
        })?;
        Ok(Trajectory::try_new(tid, row.points))
    }

    /// Removes a trajectory by id. Returns whether it existed.
    pub fn remove(&self, tid: TrajectoryId) -> Result<bool, KvError> {
        let Some(value) = self.stored_value_of(tid)? else { return Ok(false) };
        let shard = shard_of(tid, self.config.shards);
        self.cluster.delete(rowkey(shard, value, tid))?;
        self.id_index.delete(self.id_key(tid))?;
        Ok(true)
    }

    /// Inserts a batch of trajectories.
    pub fn insert_all<'a, I: IntoIterator<Item = &'a Trajectory>>(
        &self,
        trajectories: I,
    ) -> Result<usize, KvError> {
        let mut n = 0;
        for t in trajectories {
            self.insert(t)?;
            n += 1;
        }
        Ok(n)
    }

    /// Flushes all regions (mostly useful before measuring I/O).
    pub fn flush(&self) -> Result<(), KvError> {
        self.cluster.flush()?;
        self.id_index.flush()
    }
}

/// Renders the slow-query log for the telemetry endpoint's `/slowlog`
/// route: a plain-text report, or (`json = true`) a JSON array whose
/// entries carry the id of their attached trace (`null` when the query
/// ran untraced) for cross-referencing against `/traces`.
fn render_slowlog(log: &SlowLog<SlowQueryRecord>, json: bool) -> String {
    let entries = log.snapshot();
    if json {
        let mut out = String::from("[");
        for (i, (nanos, rec)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let trace_id = rec
                .trace
                .as_ref()
                .and_then(|t| t.root.label("trace_id").map(str::to_string))
                .unwrap_or_else(|| "null".to_string());
            out.push_str(&format!(
                "{{\"rank\":{},\"total_ms\":{:.3},\"kind\":\"{}\",\"detail\":\"{}\",\"trace_id\":{}}}",
                i + 1,
                *nanos as f64 / 1e6,
                rec.kind,
                escape_json(&rec.detail),
                trace_id,
            ));
        }
        out.push_str("]\n");
        return out;
    }
    if entries.is_empty() {
        return "slow-query log: empty\n".to_string();
    }
    let mut out = format!("{} retained slow queries, slowest first\n\n", entries.len());
    for (i, (nanos, rec)) in entries.iter().enumerate() {
        out.push_str(&format!(
            "{:>2}. {:>10.3} ms  {:<9} {}{}\n",
            i + 1,
            *nanos as f64 / 1e6,
            rec.kind,
            rec.detail,
            if rec.trace.is_some() { "  [traced]" } else { "" },
        ));
    }
    out
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn bool_label(v: bool) -> &'static str {
    if v {
        "true"
    } else {
        "false"
    }
}

impl std::fmt::Debug for TrajectoryStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrajectoryStore")
            .field("max_resolution", &self.config.max_resolution)
            .field("shards", &self.config.shards)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trass_kv::KeyRange;

    fn store() -> TrajectoryStore {
        TrajectoryStore::open(TrassConfig::default()).unwrap()
    }

    fn beijing_traj(id: u64, offset: f64) -> Trajectory {
        Trajectory::new(
            id,
            (0..10)
                .map(|i| Point::new(116.30 + offset + i as f64 * 0.001, 39.90 + offset))
                .collect(),
        )
    }

    #[test]
    fn insert_writes_one_row_per_trajectory() {
        let s = store();
        for i in 0..20 {
            s.insert(&beijing_traj(i, i as f64 * 0.01)).unwrap();
        }
        s.flush().unwrap();
        let rows = s.cluster().scan(KeyRange::all()).unwrap();
        assert_eq!(rows.len(), 20);
        // Every row decodes.
        for row in &rows {
            let parsed = crate::schema::parse_rowkey(&row.key).unwrap();
            assert!(parsed.0 < s.config().shards);
            let value = RowValue::decode(&row.value).unwrap();
            assert_eq!(value.points.len(), 10);
        }
    }

    #[test]
    fn reinserting_same_id_overwrites() {
        let s = store();
        let t = beijing_traj(7, 0.0);
        s.insert(&t).unwrap();
        s.insert(&t).unwrap();
        let rows = s.cluster().scan(KeyRange::all()).unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn similar_trajectories_share_index_spaces() {
        let s = store();
        let a = beijing_traj(1, 0.0);
        let mut b_points = a.points().to_vec();
        for p in &mut b_points {
            p.y += 1e-5; // nearly identical
        }
        let b = Trajectory::new(2, b_points);
        let sa = s.index_space_of(&a);
        let sb = s.index_space_of(&b);
        assert_eq!(sa, sb, "near-identical trajectories index together");
    }

    #[test]
    fn get_by_id_roundtrip() {
        let s = store();
        let t = beijing_traj(42, 0.0);
        s.insert(&t).unwrap();
        let got = s.get(42).unwrap().expect("present");
        assert_eq!(got.points(), t.points());
        assert_eq!(got.id, 42);
        assert!(s.get(43).unwrap().is_none());
    }

    #[test]
    fn remove_deletes_row_and_id_entry() {
        let s = store();
        let t = beijing_traj(7, 0.0);
        s.insert(&t).unwrap();
        assert!(s.remove(7).unwrap());
        assert!(s.get(7).unwrap().is_none());
        assert!(!s.remove(7).unwrap(), "second remove is a no-op");
        assert!(s.cluster().scan(KeyRange::all()).unwrap().is_empty());
    }

    #[test]
    fn moved_reinsert_does_not_leave_stale_rows() {
        let s = store();
        let original = beijing_traj(9, 0.0);
        s.insert(&original).unwrap();
        // Same id, geometry on the other side of the city: a different
        // index space.
        let moved = beijing_traj(9, 0.35);
        assert_ne!(
            s.index_space_of(&original),
            s.index_space_of(&moved),
            "test requires distinct index spaces"
        );
        s.insert(&moved).unwrap();
        let rows = s.cluster().scan(KeyRange::all()).unwrap();
        assert_eq!(rows.len(), 1, "stale row left behind");
        assert_eq!(s.get(9).unwrap().unwrap().points(), moved.points());
    }

    #[test]
    fn insert_all_counts() {
        let s = store();
        let data: Vec<Trajectory> = (0..15).map(|i| beijing_traj(i, i as f64 * 0.002)).collect();
        assert_eq!(s.insert_all(&data).unwrap(), 15);
    }

    #[test]
    fn invalid_config_rejected() {
        let cfg = TrassConfig { shards: 0, ..TrassConfig::default() };
        assert!(TrajectoryStore::open(cfg).is_err());
    }
}
