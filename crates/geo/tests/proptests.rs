//! Property-based tests for the geometry kernel invariants the pruning
//! lemmas rely on. If any of these break, TraSS pruning becomes unsound.

use proptest::prelude::*;
use trass_geo::{Mbr, OrientedBox, Point, Segment};

fn pt() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

fn mbr() -> impl Strategy<Value = Mbr> {
    (pt(), pt()).prop_map(|(a, b)| Mbr::from_corners(a, b))
}

fn seg() -> impl Strategy<Value = Segment> {
    (pt(), pt()).prop_map(|(a, b)| Segment::new(a, b))
}

proptest! {
    #[test]
    fn point_distance_triangle_inequality(a in pt(), b in pt(), c in pt()) {
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
    }

    #[test]
    fn segment_point_distance_below_endpoint_distances(s in seg(), p in pt()) {
        let d = s.distance_to_point(&p);
        prop_assert!(d <= p.distance(&s.a) + 1e-12);
        prop_assert!(d <= p.distance(&s.b) + 1e-12);
    }

    #[test]
    fn segment_closest_point_is_on_segment_bbox(s in seg(), p in pt()) {
        let c = s.closest_point(&p);
        let bbox = Mbr::from_corners(s.a, s.b);
        prop_assert!(bbox.extended(1e-9).contains_point(&c));
    }

    #[test]
    fn segment_distance_symmetric(s1 in seg(), s2 in seg()) {
        let d12 = s1.distance_to_segment(&s2);
        let d21 = s2.distance_to_segment(&s1);
        prop_assert!((d12 - d21).abs() < 1e-9);
    }

    #[test]
    fn segment_distance_lower_bounds_sample_points(s1 in seg(), s2 in seg()) {
        // The min distance between segments must not exceed the distance
        // between any pair of sampled points on them.
        let d = s1.distance_to_segment(&s2);
        for i in 0..=4 {
            for j in 0..=4 {
                let p = s1.a.lerp(&s1.b, i as f64 / 4.0);
                let q = s2.a.lerp(&s2.b, j as f64 / 4.0);
                prop_assert!(d <= p.distance(&q) + 1e-9);
            }
        }
    }

    #[test]
    fn mbr_contains_generating_points(a in pt(), b in pt(), c in pt()) {
        let m = Mbr::from_points([a, b, c].iter()).unwrap();
        prop_assert!(m.contains_point(&a));
        prop_assert!(m.contains_point(&b));
        prop_assert!(m.contains_point(&c));
    }

    #[test]
    fn mbr_point_distance_zero_iff_contained(m in mbr(), p in pt()) {
        let d = m.distance_to_point(&p);
        prop_assert_eq!(d == 0.0, m.contains_point(&p));
    }

    #[test]
    fn mbr_distance_lower_bounds_point_distance(m in mbr(), p in pt(), q in pt()) {
        // Key soundness invariant for Lemma 8-11 style pruning: for any
        // point q inside the MBR, dist(p, MBR) <= dist(p, q).
        let inside = Point::new(
            q.x.clamp(m.min_x, m.max_x),
            q.y.clamp(m.min_y, m.max_y),
        );
        prop_assert!(m.distance_to_point(&p) <= p.distance(&inside) + 1e-9);
    }

    #[test]
    fn mbr_mbr_distance_lower_bounds_contained_points(m1 in mbr(), m2 in mbr(), p in pt(), q in pt()) {
        let a = Point::new(p.x.clamp(m1.min_x, m1.max_x), p.y.clamp(m1.min_y, m1.max_y));
        let b = Point::new(q.x.clamp(m2.min_x, m2.max_x), q.y.clamp(m2.min_y, m2.max_y));
        prop_assert!(m1.distance_to_mbr(&m2) <= a.distance(&b) + 1e-9);
    }

    #[test]
    fn mbr_union_is_commutative_and_covering(m1 in mbr(), m2 in mbr()) {
        let u = m1.union(&m2);
        prop_assert_eq!(u, m2.union(&m1));
        prop_assert!(u.contains(&m1) && u.contains(&m2));
    }

    #[test]
    fn extended_mbr_distance_relationship(m in mbr(), p in pt(), eps in 0.0f64..10.0) {
        // Ext(MBR, eps) contains p  <=>  dist(p, MBR) <= eps (up to fp).
        let ext = m.extended(eps);
        let d = m.distance_to_point(&p);
        if d <= eps {
            // Within eps by L2 implies within eps per-axis.
            prop_assert!(ext.contains_point(&p));
        }
        if !ext.contains_point(&p) {
            prop_assert!(d > eps - 1e-9);
        }
    }

    #[test]
    fn obb_contains_its_generators(a in pt(), b in pt(), pts in prop::collection::vec(pt(), 1..20)) {
        let obb = OrientedBox::from_points_along(a, b, &pts).unwrap();
        for p in &pts {
            prop_assert!(obb.contains_point(p), "obb {:?} missing {:?}", obb, p);
        }
    }

    #[test]
    fn obb_point_distance_lower_bounds_generators(a in pt(), b in pt(), pts in prop::collection::vec(pt(), 1..20), q in pt()) {
        // Lemma 13 soundness: d(q, box) <= d(q, any covered point).
        let obb = OrientedBox::from_points_along(a, b, &pts).unwrap();
        let d = obb.distance_to_point(&q);
        for p in &pts {
            prop_assert!(d <= q.distance(p) + 1e-9);
        }
    }

    #[test]
    fn obb_mbr_cover(a in pt(), b in pt(), pts in prop::collection::vec(pt(), 1..20)) {
        let obb = OrientedBox::from_points_along(a, b, &pts).unwrap();
        let cover = obb.to_mbr().extended(1e-9);
        for p in &pts {
            prop_assert!(cover.contains_point(p));
        }
    }

    #[test]
    fn obb_box_distance_lower_bounds_point_pairs(
        a in pt(), b in pt(), pts1 in prop::collection::vec(pt(), 1..12),
        c in pt(), d in pt(), pts2 in prop::collection::vec(pt(), 1..12),
    ) {
        // Lemma 14 soundness core: box-box distance lower-bounds every
        // covered point pair distance.
        let b1 = OrientedBox::from_points_along(a, b, &pts1).unwrap();
        let b2 = OrientedBox::from_points_along(c, d, &pts2).unwrap();
        let dist = b1.distance_to_box(&b2);
        for p in &pts1 {
            for q in &pts2 {
                prop_assert!(dist <= p.distance(q) + 1e-9);
            }
        }
    }
}
