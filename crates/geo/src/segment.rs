//! Line segments and segment-level distance predicates.

use crate::Point;
use serde::{Deserialize, Serialize};

/// A line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment from its endpoints.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(&self.b)
    }

    /// Returns `true` when both endpoints coincide (within exact equality).
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.a == self.b
    }

    /// The closest point on this segment to `p`.
    pub fn closest_point(&self, p: &Point) -> Point {
        let d = self.b - self.a;
        let len_sq = d.dot(&d);
        if len_sq <= 0.0 {
            return self.a;
        }
        let t = ((*p - self.a).dot(&d) / len_sq).clamp(0.0, 1.0);
        self.a.lerp(&self.b, t)
    }

    /// Minimum distance from `p` to this segment.
    #[inline]
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// Perpendicular distance from `p` to the *infinite line* through this
    /// segment. Falls back to point distance for degenerate segments.
    ///
    /// This is the distance the Douglas-Peucker algorithm uses.
    pub fn line_distance_to_point(&self, p: &Point) -> f64 {
        let d = self.b - self.a;
        let len = d.norm();
        if len <= 0.0 {
            return self.a.distance(p);
        }
        ((*p - self.a).cross(&d)).abs() / len
    }

    /// Returns `true` when the two segments intersect (including touching).
    pub fn intersects(&self, other: &Segment) -> bool {
        #[inline]
        fn orient(a: &Point, b: &Point, c: &Point) -> f64 {
            (*b - *a).cross(&(*c - *a))
        }
        #[inline]
        fn on_segment(a: &Point, b: &Point, c: &Point) -> bool {
            // Collinear c within the bounding box of (a, b).
            c.x >= a.x.min(b.x) && c.x <= a.x.max(b.x) && c.y >= a.y.min(b.y) && c.y <= a.y.max(b.y)
        }
        let d1 = orient(&other.a, &other.b, &self.a);
        let d2 = orient(&other.a, &other.b, &self.b);
        let d3 = orient(&self.a, &self.b, &other.a);
        let d4 = orient(&self.a, &self.b, &other.b);
        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        // Exact-zero cross products are the collinearity predicate of the
        // classical orientation test; a tolerance here would misclassify
        // near-parallel segments as touching.
        // trass-lint: allow(float-eq)
        (d1 == 0.0 && on_segment(&other.a, &other.b, &self.a))
            // trass-lint: allow(float-eq)
            || (d2 == 0.0 && on_segment(&other.a, &other.b, &self.b))
            // trass-lint: allow(float-eq)
            || (d3 == 0.0 && on_segment(&self.a, &self.b, &other.a))
            // trass-lint: allow(float-eq)
            || (d4 == 0.0 && on_segment(&self.a, &self.b, &other.b))
    }

    /// Minimum distance between two segments (0 when they intersect).
    pub fn distance_to_segment(&self, other: &Segment) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        // Non-intersecting segments achieve the minimum at an endpoint.
        self.distance_to_point(&other.a)
            .min(self.distance_to_point(&other.b))
            .min(other.distance_to_point(&self.a))
            .min(other.distance_to_point(&self.b))
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.lerp(&self.b, 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn closest_point_projects_onto_interior() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.closest_point(&Point::new(3.0, 4.0)), Point::new(3.0, 0.0));
        assert_eq!(s.distance_to_point(&Point::new(3.0, 4.0)), 4.0);
    }

    #[test]
    fn closest_point_clamps_to_endpoints() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.closest_point(&Point::new(-5.0, 0.0)), Point::new(0.0, 0.0));
        assert_eq!(s.closest_point(&Point::new(15.0, 3.0)), Point::new(10.0, 0.0));
    }

    #[test]
    fn degenerate_segment_behaves_like_point() {
        let s = seg(2.0, 2.0, 2.0, 2.0);
        assert!(s.is_degenerate());
        assert_eq!(s.distance_to_point(&Point::new(2.0, 5.0)), 3.0);
        assert_eq!(s.line_distance_to_point(&Point::new(2.0, 5.0)), 3.0);
    }

    #[test]
    fn line_distance_ignores_clamping() {
        let s = seg(0.0, 0.0, 1.0, 0.0);
        // Point beyond the end of the segment but on the line's level.
        assert_eq!(s.line_distance_to_point(&Point::new(5.0, 2.0)), 2.0);
        assert!(s.distance_to_point(&Point::new(5.0, 2.0)) > 2.0);
    }

    #[test]
    fn crossing_segments_intersect() {
        let s1 = seg(0.0, 0.0, 1.0, 1.0);
        let s2 = seg(0.0, 1.0, 1.0, 0.0);
        assert!(s1.intersects(&s2));
        assert_eq!(s1.distance_to_segment(&s2), 0.0);
    }

    #[test]
    fn touching_segments_intersect() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(1.0, 0.0, 2.0, 5.0);
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn collinear_overlapping_segments_intersect() {
        let s1 = seg(0.0, 0.0, 2.0, 0.0);
        let s2 = seg(1.0, 0.0, 3.0, 0.0);
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn collinear_disjoint_segments_do_not_intersect() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(2.0, 0.0, 3.0, 0.0);
        assert!(!s1.intersects(&s2));
        assert_eq!(s1.distance_to_segment(&s2), 1.0);
    }

    #[test]
    fn parallel_segments_distance() {
        let s1 = seg(0.0, 0.0, 10.0, 0.0);
        let s2 = seg(0.0, 3.0, 10.0, 3.0);
        assert!(!s1.intersects(&s2));
        assert_eq!(s1.distance_to_segment(&s2), 3.0);
    }

    #[test]
    fn segment_distance_is_symmetric() {
        let s1 = seg(0.0, 0.0, 1.0, 2.0);
        let s2 = seg(4.0, -1.0, 6.0, 3.0);
        assert_eq!(s1.distance_to_segment(&s2), s2.distance_to_segment(&s1));
    }

    #[test]
    fn midpoint_and_length() {
        let s = seg(0.0, 0.0, 4.0, 3.0);
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.midpoint(), Point::new(2.0, 1.5));
    }
}
