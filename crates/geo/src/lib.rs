//! Geometry kernel for TraSS.
//!
//! Everything in TraSS — the XZ\* index, the pruning lemmas, the local
//! filtering over Douglas-Peucker features — reduces to a small set of
//! planar geometry primitives and distance predicates. This crate provides
//! them with no external geometry dependency:
//!
//! * [`Point`] — a 2-D point (`x` = longitude, `y` = latitude in most of the
//!   workspace, but the kernel is coordinate-system agnostic).
//! * [`Segment`] — a line segment between two points.
//! * [`Mbr`] — an axis-aligned minimum bounding rectangle.
//! * [`OrientedBox`] — a rotated rectangle, used for the DP-feature bounding
//!   boxes of §IV-D of the paper ("not necessarily parallel to the
//!   coordinate axis").
//! * [`NormalizedSpace`] — mapping between world coordinates (degrees over
//!   the whole earth) and the unit square the space-filling indexes operate
//!   on.
//!
//! All distances are Euclidean in the coordinate space of the inputs, as in
//! the paper (which measures similarity thresholds in degrees).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mbr;
mod normalize;
mod obb;
mod point;
mod segment;

pub use mbr::Mbr;
pub use normalize::{NormalizedSpace, WORLD, WORLD_SQUARE};
pub use obb::OrientedBox;
pub use point::Point;
pub use segment::Segment;

/// Relative/absolute tolerance used by approximate comparisons in tests and
/// degenerate-case handling. Coordinates live in `[0, 1]` or degree space, so
/// an absolute epsilon is appropriate.
pub const EPSILON: f64 = 1e-12;

/// Returns `true` when two floats are equal within [`EPSILON`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPSILON
}
