//! Mapping between world coordinates and the unit square.
//!
//! The XZ\* index (like GeoMesa's XZ2) operates on `[0, 1]²`. TraSS covers
//! the whole earth by default (§VI: "The entire index space of the XZ\*
//! index covers the earth"); a [`NormalizedSpace`] captures that affine
//! mapping and lets tests use smaller synthetic extents.

use crate::{Mbr, Point};
use serde::{Deserialize, Serialize};

/// An affine mapping from a world-coordinate rectangle to the unit square.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalizedSpace {
    /// World-coordinate extent mapped onto `[0,1]²`.
    pub extent: Mbr,
}

/// The whole-earth space used by TraSS by default: longitude `[-180, 180]`,
/// latitude `[-90, 90]`.
pub const WORLD: NormalizedSpace =
    NormalizedSpace { extent: Mbr { min_x: -180.0, min_y: -90.0, max_x: 180.0, max_y: 90.0 } };

/// The whole earth embedded in a *square* extent (`[-180, 180]²`).
///
/// Distance-based pruning (Lemmas 5–14) needs Euclidean distances to scale
/// uniformly between world and unit space, which requires a square extent;
/// latitudes occupy the lower half of the square and the upper half simply
/// stays unused by the index.
pub const WORLD_SQUARE: NormalizedSpace =
    NormalizedSpace { extent: Mbr { min_x: -180.0, min_y: -90.0, max_x: 180.0, max_y: 270.0 } };

impl NormalizedSpace {
    /// Creates a space over the given world extent.
    ///
    /// # Panics
    /// Panics if the extent has zero width or height.
    pub fn new(extent: Mbr) -> Self {
        assert!(extent.width() > 0.0 && extent.height() > 0.0, "degenerate space extent");
        NormalizedSpace { extent }
    }

    /// A *square* space covering `extent`: the extent is padded upward /
    /// rightward to its longer side, so world↔unit distance scaling is
    /// uniform ([`NormalizedSpace::distance_to_unit`] becomes exact).
    pub fn square(extent: Mbr) -> Self {
        let side = extent.width().max(extent.height());
        assert!(side > 0.0, "degenerate space extent");
        Self::new(Mbr::new(extent.min_x, extent.min_y, extent.min_x + side, extent.min_y + side))
    }

    /// Whether the extent is square (up to floating-point tolerance).
    pub fn is_square(&self) -> bool {
        (self.extent.width() - self.extent.height()).abs()
            <= 1e-9 * self.extent.width().max(self.extent.height())
    }

    /// Exact world→unit distance conversion for square spaces.
    ///
    /// # Panics
    /// Panics when the space is not square (use the lower/upper-bound
    /// variants there).
    pub fn distance_to_unit(&self, d: f64) -> f64 {
        assert!(self.is_square(), "exact distance scaling requires a square space");
        d / self.extent.width()
    }

    /// Exact unit→world distance conversion for square spaces.
    ///
    /// # Panics
    /// Panics when the space is not square.
    pub fn distance_to_world(&self, d: f64) -> f64 {
        assert!(self.is_square(), "exact distance scaling requires a square space");
        d * self.extent.width()
    }

    /// Maps a world point into the unit square, clamping to `[0, 1]`.
    ///
    /// Clamping means out-of-extent inputs (e.g. GPS noise slightly past the
    /// antimeridian) index to the nearest boundary cell instead of panicking.
    pub fn to_unit(&self, p: &Point) -> Point {
        Point::new(
            ((p.x - self.extent.min_x) / self.extent.width()).clamp(0.0, 1.0),
            ((p.y - self.extent.min_y) / self.extent.height()).clamp(0.0, 1.0),
        )
    }

    /// Maps a unit-square point back to world coordinates.
    pub fn to_world(&self, p: &Point) -> Point {
        Point::new(
            self.extent.min_x + p.x * self.extent.width(),
            self.extent.min_y + p.y * self.extent.height(),
        )
    }

    /// Maps a world MBR into unit space (clamped).
    pub fn mbr_to_unit(&self, mbr: &Mbr) -> Mbr {
        let ll = self.to_unit(&mbr.lower_left());
        let ur = self.to_unit(&mbr.upper_right());
        Mbr::from_corners(ll, ur)
    }

    /// Maps a unit-space MBR back to world coordinates.
    pub fn mbr_to_world(&self, mbr: &Mbr) -> Mbr {
        let ll = self.to_world(&mbr.lower_left());
        let ur = self.to_world(&mbr.upper_right());
        Mbr::from_corners(ll, ur)
    }

    /// Converts a world-space distance into unit-space, conservatively.
    ///
    /// For anisotropic extents (width ≠ height) a single world distance maps
    /// to different unit distances per axis; pruning must *underestimate*
    /// unit distance to stay sound, so we divide by the larger side.
    pub fn distance_to_unit_lower_bound(&self, d: f64) -> f64 {
        d / self.extent.width().max(self.extent.height())
    }

    /// Converts a world-space distance into unit-space, for *expansion*
    /// purposes (e.g. `Ext(MBR, ε)`), conservatively overestimating by
    /// dividing by the smaller side.
    pub fn distance_to_unit_upper_bound(&self, d: f64) -> f64 {
        d / self.extent.width().min(self.extent.height())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_roundtrip() {
        let p = Point::new(116.4, 39.9); // Beijing
        let u = WORLD.to_unit(&p);
        assert!(u.x > 0.0 && u.x < 1.0 && u.y > 0.0 && u.y < 1.0);
        let back = WORLD.to_world(&u);
        assert!((back.x - p.x).abs() < 1e-9);
        assert!((back.y - p.y).abs() < 1e-9);
    }

    #[test]
    fn corners_map_to_unit_corners() {
        assert_eq!(WORLD.to_unit(&Point::new(-180.0, -90.0)), Point::new(0.0, 0.0));
        assert_eq!(WORLD.to_unit(&Point::new(180.0, 90.0)), Point::new(1.0, 1.0));
    }

    #[test]
    fn out_of_extent_clamps() {
        assert_eq!(WORLD.to_unit(&Point::new(-200.0, 100.0)), Point::new(0.0, 1.0));
    }

    #[test]
    fn mbr_roundtrip() {
        let m = Mbr::new(100.0, 30.0, 120.0, 45.0);
        let u = WORLD.mbr_to_unit(&m);
        let back = WORLD.mbr_to_world(&u);
        assert!((back.min_x - m.min_x).abs() < 1e-9);
        assert!((back.max_y - m.max_y).abs() < 1e-9);
    }

    #[test]
    fn distance_bounds_bracket_truth_for_world() {
        // WORLD is 360 × 180: lower bound uses 360, upper uses 180.
        assert_eq!(WORLD.distance_to_unit_lower_bound(3.6), 0.01);
        assert_eq!(WORLD.distance_to_unit_upper_bound(1.8), 0.01);
        assert!(WORLD.distance_to_unit_lower_bound(1.0) <= WORLD.distance_to_unit_upper_bound(1.0));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_extent_panics() {
        NormalizedSpace::new(Mbr::new(0.0, 0.0, 0.0, 1.0));
    }

    #[test]
    fn square_space_scaling_is_exact() {
        let s = NormalizedSpace::square(Mbr::new(100.0, 30.0, 120.0, 45.0));
        assert!(s.is_square());
        assert_eq!(s.extent.width(), 20.0);
        // World distance 2° → unit 0.1, roundtrip exact.
        assert_eq!(s.distance_to_unit(2.0), 0.1);
        assert_eq!(s.distance_to_world(0.1), 2.0);
        // Point distances scale by the same factor.
        let a = Point::new(105.0, 31.0);
        let b = Point::new(108.0, 35.0);
        let (ua, ub) = (s.to_unit(&a), s.to_unit(&b));
        let scaled = ua.distance(&ub);
        assert!((scaled - s.distance_to_unit(a.distance(&b))).abs() < 1e-12);
    }

    #[test]
    fn world_square_covers_all_coordinates() {
        assert!(WORLD_SQUARE.is_square());
        let beijing = Point::new(116.4, 39.9);
        let u = WORLD_SQUARE.to_unit(&beijing);
        assert!(u.x > 0.0 && u.x < 1.0 && u.y > 0.0 && u.y < 0.5);
        let back = WORLD_SQUARE.to_world(&u);
        assert!((back.x - beijing.x).abs() < 1e-9 && (back.y - beijing.y).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn exact_scaling_rejects_non_square() {
        WORLD.distance_to_unit(1.0);
    }
}
