//! Oriented (rotated) bounding boxes.
//!
//! The Douglas-Peucker features of TraSS (§IV-D) cover the points between
//! two successive representative points with a bounding box that is "not
//! necessarily parallel to the coordinate axis": the box is aligned with the
//! chord between the two representative points. This module implements that
//! rotated rectangle together with the distance predicates local filtering
//! needs (Lemmas 13–14).

use crate::{Mbr, Point, Segment};
use serde::{Deserialize, Serialize};

/// A rectangle with arbitrary orientation, stored as a center, a unit axis
/// direction `u`, and half-extents along `u` and its perpendicular `v`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrientedBox {
    /// Center of the box.
    pub center: Point,
    /// Unit vector of the box's major axis.
    pub axis: Point,
    /// Half-extent along `axis`.
    pub half_u: f64,
    /// Half-extent along the perpendicular of `axis`.
    pub half_v: f64,
}

impl OrientedBox {
    /// Builds the tight oriented box of `points` whose major axis is the
    /// direction from `anchor_a` to `anchor_b` (the DP chord).
    ///
    /// Returns `None` for an empty point set. A degenerate chord (identical
    /// anchors) falls back to an axis-aligned box.
    pub fn from_points_along(anchor_a: Point, anchor_b: Point, points: &[Point]) -> Option<Self> {
        if points.is_empty() {
            return None;
        }
        let dir = anchor_b - anchor_a;
        let len = dir.norm();
        let u = if len > 0.0 { dir * (1.0 / len) } else { Point::new(1.0, 0.0) };
        let v = Point::new(-u.y, u.x);
        let (mut min_u, mut max_u) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_v, mut max_v) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in points {
            let d = *p - anchor_a;
            let lu = d.dot(&u);
            let lv = d.dot(&v);
            min_u = min_u.min(lu);
            max_u = max_u.max(lu);
            min_v = min_v.min(lv);
            max_v = max_v.max(lv);
        }
        let cu = (min_u + max_u) / 2.0;
        let cv = (min_v + max_v) / 2.0;
        Some(OrientedBox {
            center: anchor_a + u * cu + v * cv,
            axis: u,
            half_u: (max_u - min_u) / 2.0,
            half_v: (max_v - min_v) / 2.0,
        })
    }

    /// An axis-aligned box expressed as an `OrientedBox`.
    pub fn from_mbr(mbr: &Mbr) -> Self {
        OrientedBox {
            center: mbr.center(),
            axis: Point::new(1.0, 0.0),
            half_u: mbr.width() / 2.0,
            half_v: mbr.height() / 2.0,
        }
    }

    /// The perpendicular axis `v`.
    #[inline]
    fn perp(&self) -> Point {
        Point::new(-self.axis.y, self.axis.x)
    }

    /// The four corners, counter-clockwise.
    pub fn corners(&self) -> [Point; 4] {
        let u = self.axis * self.half_u;
        let v = self.perp() * self.half_v;
        [self.center - u - v, self.center + u - v, self.center + u + v, self.center - u + v]
    }

    /// The four boundary edges.
    pub fn edges(&self) -> [Segment; 4] {
        let c = self.corners();
        [
            Segment::new(c[0], c[1]),
            Segment::new(c[1], c[2]),
            Segment::new(c[2], c[3]),
            Segment::new(c[3], c[0]),
        ]
    }

    /// Returns `true` when `p` lies inside or on the boundary.
    pub fn contains_point(&self, p: &Point) -> bool {
        let d = *p - self.center;
        let lu = d.dot(&self.axis).abs();
        let lv = d.dot(&self.perp()).abs();
        // Tolerate tiny numerical overshoot from the rotated projection.
        lu <= self.half_u + crate::EPSILON && lv <= self.half_v + crate::EPSILON
    }

    /// Minimum distance from `p` to the box (0 when inside).
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        let d = *p - self.center;
        let lu = d.dot(&self.axis);
        let lv = d.dot(&self.perp());
        let du = (lu.abs() - self.half_u).max(0.0);
        let dv = (lv.abs() - self.half_v).max(0.0);
        (du * du + dv * dv).sqrt()
    }

    /// Minimum distance from a segment to the box (0 on overlap).
    pub fn distance_to_segment(&self, seg: &Segment) -> f64 {
        if self.contains_point(&seg.a) || self.contains_point(&seg.b) {
            return 0.0;
        }
        self.edges().iter().map(|e| e.distance_to_segment(seg)).fold(f64::INFINITY, f64::min)
    }

    /// Minimum distance between two oriented boxes (0 on overlap).
    pub fn distance_to_box(&self, other: &OrientedBox) -> f64 {
        if self.contains_point(&other.center) || other.contains_point(&self.center) {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        let other_edges = other.edges();
        for e in self.edges().iter() {
            for f in other_edges.iter() {
                best = best.min(e.distance_to_segment(f));
                // Early exit on an exact zero from the intersection test —
                // distances are non-negative, so nothing can beat it.
                // trass-lint: allow(float-eq)
                if best == 0.0 {
                    return 0.0;
                }
            }
        }
        best
    }

    /// The axis-aligned MBR of this box.
    pub fn to_mbr(&self) -> Mbr {
        let c = self.corners();
        let mut mbr = Mbr::from_point(c[0]);
        for p in &c[1..] {
            mbr.extend(*p);
        }
        mbr
    }

    /// Area of the box.
    #[inline]
    pub fn area(&self) -> f64 {
        4.0 * self.half_u * self.half_v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_aligned_roundtrip() {
        let mbr = Mbr::new(0.0, 0.0, 4.0, 2.0);
        let obb = OrientedBox::from_mbr(&mbr);
        let back = obb.to_mbr();
        assert!((back.min_x - 0.0).abs() < 1e-12);
        assert!((back.max_x - 4.0).abs() < 1e-12);
        assert!((back.max_y - 2.0).abs() < 1e-12);
        assert_eq!(obb.area(), 8.0);
    }

    #[test]
    fn from_points_along_diagonal_is_tight() {
        // Points on the line y = x: an oriented box along the diagonal has
        // zero perpendicular extent, unlike the axis-aligned MBR.
        let pts: Vec<Point> = (0..=10).map(|i| Point::new(i as f64, i as f64)).collect();
        let obb = OrientedBox::from_points_along(pts[0], *pts.last().unwrap(), &pts).unwrap();
        assert!(obb.half_v < 1e-12);
        assert!((obb.half_u - (200.0f64).sqrt() / 2.0).abs() < 1e-9);
        for p in &pts {
            assert!(obb.contains_point(p));
        }
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(OrientedBox::from_points_along(Point::ORIGIN, Point::ORIGIN, &[]).is_none());
    }

    #[test]
    fn degenerate_chord_falls_back_to_axis_aligned() {
        let pts = [Point::new(1.0, 1.0), Point::new(3.0, 2.0)];
        let obb = OrientedBox::from_points_along(pts[0], pts[0], &pts).unwrap();
        assert!(obb.contains_point(&pts[0]));
        assert!(obb.contains_point(&pts[1]));
        assert_eq!(obb.axis, Point::new(1.0, 0.0));
    }

    #[test]
    fn point_distance_rotated() {
        // Unit square rotated 45° around the origin: corners at (±√2/2·2...,)
        let obb = OrientedBox {
            center: Point::ORIGIN,
            axis: Point::new(std::f64::consts::FRAC_1_SQRT_2, std::f64::consts::FRAC_1_SQRT_2),
            half_u: 1.0,
            half_v: 1.0,
        };
        // The corner along the main axis is at distance sqrt(2) from center.
        let corner = Point::new(std::f64::consts::SQRT_2, 0.0);
        assert!(obb.distance_to_point(&corner) < 1e-9);
        // A point 1 beyond that corner along x.
        let beyond = Point::new(std::f64::consts::SQRT_2 + 1.0, 0.0);
        let d = obb.distance_to_point(&beyond);
        assert!(d > 0.5 && d <= 1.0, "d = {d}");
    }

    #[test]
    fn box_distance_zero_when_overlapping() {
        let a = OrientedBox::from_mbr(&Mbr::new(0.0, 0.0, 2.0, 2.0));
        let b = OrientedBox::from_mbr(&Mbr::new(1.0, 1.0, 3.0, 3.0));
        assert_eq!(a.distance_to_box(&b), 0.0);
    }

    #[test]
    fn box_distance_matches_axis_aligned_gap() {
        let a = OrientedBox::from_mbr(&Mbr::new(0.0, 0.0, 1.0, 1.0));
        let b = OrientedBox::from_mbr(&Mbr::new(3.0, 0.0, 4.0, 1.0));
        assert!((a.distance_to_box(&b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn contained_box_distance_zero() {
        let outer = OrientedBox::from_mbr(&Mbr::new(0.0, 0.0, 10.0, 10.0));
        let inner = OrientedBox::from_mbr(&Mbr::new(4.0, 4.0, 5.0, 5.0));
        assert_eq!(outer.distance_to_box(&inner), 0.0);
        assert_eq!(inner.distance_to_box(&outer), 0.0);
    }

    #[test]
    fn segment_distance_respects_rotation() {
        let pts: Vec<Point> = (0..=4).map(|i| Point::new(i as f64, i as f64)).collect();
        let obb = OrientedBox::from_points_along(pts[0], *pts.last().unwrap(), &pts).unwrap();
        // A horizontal segment passing far from the diagonal strip.
        let far = Segment::new(Point::new(0.0, 6.0), Point::new(1.0, 6.0));
        let d = obb.distance_to_segment(&far);
        assert!(d > 1.0, "d = {d}");
        // A segment crossing the diagonal.
        let crossing = Segment::new(Point::new(0.0, 4.0), Point::new(4.0, 0.0));
        assert_eq!(obb.distance_to_segment(&crossing), 0.0);
    }
}
