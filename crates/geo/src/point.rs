//! 2-D points and point-level distance primitives.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point in the plane.
///
/// In the TraSS workspace `x` is longitude and `y` is latitude, but nothing
/// in this crate assumes that. The type is `Copy` and 16 bytes; trajectories
/// store points in contiguous `Vec<Point>` buffers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate (longitude).
    pub x: f64,
    /// Vertical coordinate (latitude).
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to another point.
    ///
    /// Prefer this in comparison-only hot paths (e.g. the Fréchet kernel)
    /// to avoid the square root.
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Dot product, treating the points as vectors from the origin.
    #[inline]
    pub fn dot(&self, other: &Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product magnitude (z-component of the 3-D cross product).
    #[inline]
    pub fn cross(&self, other: &Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm, treating the point as a vector.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(self.x + t * (other.x - self.x), self.y + t * (other.y - self.y))
    }

    /// Returns `true` when every coordinate is finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-0.5, 7.25);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::new(1.0, 2.0));
    }

    #[test]
    fn cross_sign_reflects_orientation() {
        let e1 = Point::new(1.0, 0.0);
        let e2 = Point::new(0.0, 1.0);
        assert!(e1.cross(&e2) > 0.0);
        assert!(e2.cross(&e1) < 0.0);
        assert_eq!(e1.cross(&e1), 0.0);
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, 5.0);
        assert_eq!(a + b, Point::new(4.0, 7.0));
        assert_eq!(b - a, Point::new(2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
    }

    #[test]
    fn conversion_roundtrip() {
        let p = Point::new(0.25, -0.75);
        let t: (f64, f64) = p.into();
        assert_eq!(Point::from(t), p);
    }

    #[test]
    fn finite_check_rejects_nan_and_inf() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
