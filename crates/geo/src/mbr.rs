//! Axis-aligned minimum bounding rectangles.

use crate::{Point, Segment};
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
///
/// `Mbr` is closed on all sides. Degenerate rectangles (zero width and/or
/// height) are valid and arise naturally from single-point or axis-parallel
/// trajectories.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mbr {
    /// Smallest x coordinate.
    pub min_x: f64,
    /// Smallest y coordinate.
    pub min_y: f64,
    /// Largest x coordinate.
    pub max_x: f64,
    /// Largest y coordinate.
    pub max_y: f64,
}

impl Mbr {
    /// Creates an MBR from its bounds.
    ///
    /// # Panics
    /// Panics in debug builds if `min > max` on either axis or any bound is
    /// not finite.
    #[inline]
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(min_x <= max_x && min_y <= max_y, "inverted MBR bounds");
        debug_assert!(
            min_x.is_finite() && min_y.is_finite() && max_x.is_finite() && max_y.is_finite(),
            "non-finite MBR bounds"
        );
        Mbr { min_x, min_y, max_x, max_y }
    }

    /// The MBR of a single point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Mbr::new(p.x, p.y, p.x, p.y)
    }

    /// The MBR of two corner points given in any order.
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Mbr::new(a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y))
    }

    /// The tight MBR of a non-empty point set. Returns `None` for an empty
    /// iterator.
    pub fn from_points<'a, I: IntoIterator<Item = &'a Point>>(points: I) -> Option<Self> {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut mbr = Mbr::from_point(*first);
        for p in iter {
            mbr.extend(*p);
        }
        Some(mbr)
    }

    /// Grows the MBR in place to cover `p`.
    #[inline]
    pub fn extend(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// The smallest MBR covering both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Mbr) -> Mbr {
        Mbr::new(
            self.min_x.min(other.min_x),
            self.min_y.min(other.min_y),
            self.max_x.max(other.max_x),
            self.max_y.max(other.max_y),
        )
    }

    /// Width of the rectangle.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height of the rectangle.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half of the perimeter (used by R-tree split heuristics).
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Center point of the rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)
    }

    /// Lower-left corner.
    #[inline]
    pub fn lower_left(&self) -> Point {
        Point::new(self.min_x, self.min_y)
    }

    /// Upper-right corner.
    #[inline]
    pub fn upper_right(&self) -> Point {
        Point::new(self.max_x, self.max_y)
    }

    /// The paper's `Ext(MBR, ε)`: this rectangle grown by `eps` on every
    /// side (Definition 7).
    #[inline]
    pub fn extended(&self, eps: f64) -> Mbr {
        Mbr::new(self.min_x - eps, self.min_y - eps, self.max_x + eps, self.max_y + eps)
    }

    /// Returns `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Returns `true` when `other` is entirely inside or on the boundary.
    #[inline]
    pub fn contains(&self, other: &Mbr) -> bool {
        other.min_x >= self.min_x
            && other.max_x <= self.max_x
            && other.min_y >= self.min_y
            && other.max_y <= self.max_y
    }

    /// Returns `true` when the two (closed) rectangles share at least one
    /// point.
    #[inline]
    pub fn intersects(&self, other: &Mbr) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Area of the intersection (0 when disjoint).
    pub fn intersection_area(&self, other: &Mbr) -> f64 {
        let w = (self.max_x.min(other.max_x) - self.min_x.max(other.min_x)).max(0.0);
        let h = (self.max_y.min(other.max_y) - self.min_y.max(other.min_y)).max(0.0);
        w * h
    }

    /// Minimum distance from `p` to the rectangle (0 when inside).
    #[inline]
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        self.distance_sq_to_point(p).sqrt()
    }

    /// Squared minimum distance from `p` to the rectangle.
    #[inline]
    pub fn distance_sq_to_point(&self, p: &Point) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        dx * dx + dy * dy
    }

    /// Minimum distance between two rectangles (0 when they intersect).
    pub fn distance_to_mbr(&self, other: &Mbr) -> f64 {
        let dx = (self.min_x - other.max_x).max(0.0).max(other.min_x - self.max_x);
        let dy = (self.min_y - other.max_y).max(0.0).max(other.min_y - self.max_y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Minimum distance from a segment to the rectangle (0 on overlap).
    pub fn distance_to_segment(&self, seg: &Segment) -> f64 {
        if self.contains_point(&seg.a) || self.contains_point(&seg.b) {
            return 0.0;
        }
        self.edges().iter().map(|e| e.distance_to_segment(seg)).fold(f64::INFINITY, f64::min)
    }

    /// The four boundary edges, in order: bottom, right, top, left.
    pub fn edges(&self) -> [Segment; 4] {
        let ll = Point::new(self.min_x, self.min_y);
        let lr = Point::new(self.max_x, self.min_y);
        let ur = Point::new(self.max_x, self.max_y);
        let ul = Point::new(self.min_x, self.max_y);
        [Segment::new(ll, lr), Segment::new(lr, ur), Segment::new(ur, ul), Segment::new(ul, ll)]
    }

    /// The four corners, counter-clockwise from the lower-left.
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(self.min_x, self.min_y),
            Point::new(self.max_x, self.min_y),
            Point::new(self.max_x, self.max_y),
            Point::new(self.min_x, self.max_y),
        ]
    }

    /// Maximum distance from `p` to any point of the rectangle.
    pub fn max_distance_to_point(&self, p: &Point) -> f64 {
        self.corners().iter().map(|c| c.distance(p)).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(a: f64, b: f64, c: f64, d: f64) -> Mbr {
        Mbr::new(a, b, c, d)
    }

    #[test]
    fn from_points_is_tight() {
        let pts = [Point::new(1.0, 5.0), Point::new(-2.0, 3.0), Point::new(0.0, 7.0)];
        let mbr = Mbr::from_points(pts.iter()).unwrap();
        assert_eq!(mbr, rect(-2.0, 3.0, 1.0, 7.0));
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(Mbr::from_points([].iter()).is_none());
    }

    #[test]
    fn contains_boundary_points() {
        let m = rect(0.0, 0.0, 2.0, 2.0);
        assert!(m.contains_point(&Point::new(0.0, 0.0)));
        assert!(m.contains_point(&Point::new(2.0, 1.0)));
        assert!(!m.contains_point(&Point::new(2.0001, 1.0)));
    }

    #[test]
    fn intersects_touching_rectangles() {
        let a = rect(0.0, 0.0, 1.0, 1.0);
        let b = rect(1.0, 1.0, 2.0, 2.0);
        assert!(a.intersects(&b));
        assert_eq!(a.distance_to_mbr(&b), 0.0);
    }

    #[test]
    fn disjoint_rectangle_distance_is_diagonal() {
        let a = rect(0.0, 0.0, 1.0, 1.0);
        let b = rect(4.0, 5.0, 6.0, 7.0);
        assert_eq!(a.distance_to_mbr(&b), 5.0); // dx = 3, dy = 4
    }

    #[test]
    fn point_distance_zero_inside() {
        let m = rect(0.0, 0.0, 2.0, 2.0);
        assert_eq!(m.distance_to_point(&Point::new(1.0, 1.0)), 0.0);
        assert_eq!(m.distance_to_point(&Point::new(5.0, 1.0)), 3.0);
        assert_eq!(m.distance_to_point(&Point::new(5.0, 6.0)), 5.0);
    }

    #[test]
    fn extended_grows_all_sides() {
        let m = rect(0.0, 0.0, 1.0, 1.0).extended(0.5);
        assert_eq!(m, rect(-0.5, -0.5, 1.5, 1.5));
    }

    #[test]
    fn union_covers_both() {
        let a = rect(0.0, 0.0, 1.0, 1.0);
        let b = rect(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains(&a));
        assert!(u.contains(&b));
        assert_eq!(u, rect(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn intersection_area_basics() {
        let a = rect(0.0, 0.0, 2.0, 2.0);
        let b = rect(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.intersection_area(&b), 1.0);
        let c = rect(5.0, 5.0, 6.0, 6.0);
        assert_eq!(a.intersection_area(&c), 0.0);
    }

    #[test]
    fn segment_distance_overlap_and_offset() {
        let m = rect(0.0, 0.0, 1.0, 1.0);
        let inside = Segment::new(Point::new(0.5, 0.5), Point::new(0.6, 0.6));
        assert_eq!(m.distance_to_segment(&inside), 0.0);
        let crossing = Segment::new(Point::new(-1.0, 0.5), Point::new(2.0, 0.5));
        assert_eq!(m.distance_to_segment(&crossing), 0.0);
        let above = Segment::new(Point::new(0.0, 3.0), Point::new(1.0, 3.0));
        assert_eq!(m.distance_to_segment(&above), 2.0);
    }

    #[test]
    fn degenerate_mbr_is_a_point() {
        let m = Mbr::from_point(Point::new(1.0, 1.0));
        assert_eq!(m.width(), 0.0);
        assert_eq!(m.area(), 0.0);
        assert_eq!(m.distance_to_point(&Point::new(4.0, 5.0)), 5.0);
    }

    #[test]
    fn max_distance_uses_far_corner() {
        let m = rect(0.0, 0.0, 1.0, 1.0);
        let d = m.max_distance_to_point(&Point::new(-1.0, -1.0));
        assert!((d - (8.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn edges_form_closed_loop() {
        let m = rect(0.0, 0.0, 2.0, 3.0);
        let e = m.edges();
        assert_eq!(e[0].b, e[1].a);
        assert_eq!(e[1].b, e[2].a);
        assert_eq!(e[2].b, e[3].a);
        assert_eq!(e[3].b, e[0].a);
        let perimeter: f64 = e.iter().map(|s| s.length()).sum();
        assert_eq!(perimeter, 10.0);
    }
}
