//! `trass-lint` — workspace-specific static analysis for the TraSS codebase.
//!
//! The compiler cannot see the invariants this repo lives by: the XZ\*
//! integer encoding must stay bijective, rowkeys must sort consistently
//! with scan ranges, and the kv crate's lock-heavy LSM path must not hold
//! a guard across file I/O without saying why. This binary token-scans the
//! workspace `.rs` files (no dependencies, no proc macros, no rustc
//! internals) and enforces the project rules below with `file:line`
//! diagnostics. It exits non-zero when any rule fires.
//!
//! Rules (scopes exclude `#[cfg(test)]` regions and `src/bin/` binaries):
//!
//! | rule             | scope             | forbids                               |
//! |------------------|-------------------|---------------------------------------|
//! | `unwrap`         | kv, core, index   | `.unwrap()` / `.expect(` in lib code  |
//! | `cast`           | index, geo        | bare `as` numeric casts               |
//! | `float-eq`       | geo, traj         | `==` / `!=` against float literals    |
//! | `lock-across-io` | kv                | lock guard live across file I/O/scan  |
//! | `pub-doc`        | geo, index, core  | `pub fn` without a doc comment        |
//! | `no-print`       | all but bench     | `println!` / `eprintln!` in lib code  |
//!
//! Escape hatch: a `// trass-lint: allow(rule-a, rule-b)` comment on the
//! offending line, or on the line immediately above it, suppresses those
//! rules there. Every allow should carry a justification in the same
//! comment block — the point is to make exceptions loud, not impossible.
//!
//! Usage: `cargo run -p trass-lint` from anywhere in the workspace, or
//! `trass-lint <workspace-root>`.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// The project rules, in reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Rule {
    Unwrap,
    Cast,
    FloatEq,
    LockAcrossIo,
    PubDoc,
    NoPrint,
}

impl Rule {
    /// The name used in diagnostics and `allow(...)` comments.
    fn name(self) -> &'static str {
        match self {
            Rule::Unwrap => "unwrap",
            Rule::Cast => "cast",
            Rule::FloatEq => "float-eq",
            Rule::LockAcrossIo => "lock-across-io",
            Rule::PubDoc => "pub-doc",
            Rule::NoPrint => "no-print",
        }
    }

    fn from_name(name: &str) -> Option<Rule> {
        match name {
            "unwrap" => Some(Rule::Unwrap),
            "cast" => Some(Rule::Cast),
            "float-eq" => Some(Rule::FloatEq),
            "lock-across-io" => Some(Rule::LockAcrossIo),
            "pub-doc" => Some(Rule::PubDoc),
            "no-print" => Some(Rule::NoPrint),
            _ => None,
        }
    }

    /// Does this rule apply to library (non-bin, non-test) code of `krate`?
    fn applies_to(self, krate: &str) -> bool {
        match self {
            Rule::Unwrap => matches!(krate, "kv" | "core" | "index"),
            Rule::Cast => matches!(krate, "index" | "geo"),
            Rule::FloatEq => matches!(krate, "geo" | "traj"),
            Rule::LockAcrossIo => krate == "kv",
            Rule::PubDoc => matches!(krate, "geo" | "index" | "core"),
            Rule::NoPrint => krate != "bench",
        }
    }
}

/// One finding: where, which rule, and what to do about it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Diagnostic {
    path: String,
    line: usize,
    rule: Rule,
    message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule.name(), self.message)
    }
}

// ---------------------------------------------------------------------------
// Source preprocessing
// ---------------------------------------------------------------------------

/// A source file after comment/string stripping, with the side tables the
/// rules need. Line numbers are 1-based throughout.
struct Prepared {
    /// Source with comment bodies, string/char literal contents, and their
    /// delimiters replaced by spaces. Newlines are preserved, so byte
    /// offsets per line match the original.
    masked_lines: Vec<String>,
    /// Lines carrying a doc comment (`///`, `//!`, `/**`, `/*!`).
    doc_lines: BTreeSet<usize>,
    /// `(line, rule)` pairs from `trass-lint: allow(...)` comments.
    allows: BTreeSet<(usize, Rule)>,
    /// Lines inside a `#[cfg(test)]` item (the attribute's braced body).
    test_lines: Vec<bool>,
}

impl Prepared {
    fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line - 1).copied().unwrap_or(false)
    }

    /// An allow on the diagnostic's own line or the line directly above
    /// suppresses it.
    fn is_allowed(&self, line: usize, rule: Rule) -> bool {
        self.allows.contains(&(line, rule)) || (line > 1 && self.allows.contains(&(line - 1, rule)))
    }
}

/// Strips comments and literals while recording doc lines and allows, then
/// marks `#[cfg(test)]` regions by brace matching on the masked text.
fn prepare(source: &str) -> Prepared {
    let (masked, doc_lines, allows) = mask(source);
    let masked_lines: Vec<String> = masked.lines().map(|l| l.to_string()).collect();
    let n_lines = masked_lines.len().max(1);
    let mut test_lines = vec![false; n_lines];

    // `#[cfg(test)]` starts a pending region that binds to the next brace
    // block; a `;` first means the attribute decorated a braceless item.
    let mut depth: usize = 0;
    let mut pending = false;
    let mut test_depth: Option<usize> = None;
    for (i, line) in masked_lines.iter().enumerate() {
        if test_depth.is_some() || line.contains("#[cfg(test)]") || line.contains("#[cfg(all(test")
        {
            if line.contains("#[cfg(test)]") || line.contains("#[cfg(all(test") {
                pending = true;
            }
            test_lines[i] = test_depth.is_some() || pending;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending && test_depth.is_none() {
                        test_depth = Some(depth);
                        pending = false;
                        test_lines[i] = true;
                    }
                }
                '}' => {
                    if test_depth == Some(depth) {
                        test_depth = None;
                        // The closing line still belongs to the region.
                        test_lines[i] = true;
                    }
                    depth = depth.saturating_sub(1);
                }
                ';' if pending && test_depth.is_none() => pending = false,
                _ => {}
            }
        }
        if test_depth.is_some() {
            test_lines[i] = true;
        }
    }

    Prepared { masked_lines, doc_lines, allows, test_lines }
}

/// The comment/string stripper. Returns the masked text plus the doc-line
/// and allow side tables gathered while walking comments.
fn mask(source: &str) -> (String, BTreeSet<usize>, BTreeSet<(usize, Rule)>) {
    #[derive(PartialEq)]
    enum State {
        Normal,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let bytes = source.as_bytes();
    let mut out = String::with_capacity(source.len());
    let mut doc_lines = BTreeSet::new();
    let mut allows = BTreeSet::new();
    let mut state = State::Normal;
    let mut line = 1usize;
    let mut i = 0usize;
    let at = |j: usize| -> u8 {
        if j < bytes.len() {
            bytes[j]
        } else {
            0
        }
    };
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            if state == State::LineComment {
                state = State::Normal;
            }
            out.push('\n');
            line += 1;
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                if c == b'/' && at(i + 1) == b'/' {
                    // Doc comment? (`///` but not `////`, or `//!`.)
                    if (at(i + 2) == b'/' && at(i + 3) != b'/') || at(i + 2) == b'!' {
                        doc_lines.insert(line);
                    }
                    record_allows(&source[i..], line, &mut allows);
                    state = State::LineComment;
                    out.push(' ');
                    i += 1;
                } else if c == b'/' && at(i + 1) == b'*' {
                    if at(i + 2) == b'*' || at(i + 2) == b'!' {
                        doc_lines.insert(line);
                    }
                    state = State::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                } else if c == b'"' {
                    state = State::Str;
                    out.push(' ');
                    i += 1;
                } else if (c == b'r' || (c == b'b' && at(i + 1) == b'r'))
                    && !is_ident_byte(if i > 0 { bytes[i - 1] } else { 0 })
                {
                    // Possible raw string: r"..", r#".."#, br#".."#.
                    let mut j = i + if c == b'b' { 2 } else { 1 };
                    let mut hashes = 0;
                    while at(j) == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    if at(j) == b'"' {
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        state = State::RawStr(hashes);
                    } else {
                        out.push(c as char);
                        i += 1;
                    }
                } else if c == b'\'' {
                    // Char literal vs lifetime/label: 'x' or '\n' is a
                    // literal; 'ident not followed by a quote is a lifetime.
                    if at(i + 1) == b'\\' || (at(i + 2) == b'\'' && at(i + 1) != b'\'') {
                        state = State::Char;
                        out.push(' ');
                        i += 1;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                } else {
                    out.push(c as char);
                    i += 1;
                }
            }
            State::LineComment => {
                out.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == b'*' && at(i + 1) == b'/' {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    state = if depth == 1 { State::Normal } else { State::BlockComment(depth - 1) };
                } else if c == b'/' && at(i + 1) == b'*' {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == b'\\' {
                    out.push(' ');
                    if at(i + 1) != b'\n' {
                        out.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == b'"' {
                    out.push(' ');
                    i += 1;
                    state = State::Normal;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0;
                    while seen < hashes && at(j) == b'#' {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        for _ in i..j {
                            out.push(' ');
                        }
                        i = j;
                        state = State::Normal;
                        continue;
                    }
                }
                out.push(' ');
                i += 1;
            }
            State::Char => {
                if c == b'\\' && i + 1 < bytes.len() {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == b'\'' {
                    out.push(' ');
                    i += 1;
                    state = State::Normal;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    (out, doc_lines, allows)
}

/// Parses `trass-lint: allow(a, b)` out of a comment's text.
fn record_allows(comment: &str, line: usize, allows: &mut BTreeSet<(usize, Rule)>) {
    let comment = match comment.find('\n') {
        Some(end) => &comment[..end],
        None => comment,
    };
    let Some(tag) = comment.find("trass-lint:") else { return };
    let rest = &comment[tag + "trass-lint:".len()..];
    let Some(open) = rest.find("allow(") else { return };
    let rest = &rest[open + "allow(".len()..];
    let Some(close) = rest.find(')') else { return };
    for name in rest[..close].split(',') {
        if let Some(rule) = Rule::from_name(name.trim()) {
            allows.insert((line, rule));
        }
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

// ---------------------------------------------------------------------------
// File classification
// ---------------------------------------------------------------------------

/// What the path tells us about a file, driving rule scoping.
#[derive(Debug, Clone)]
struct FileInfo {
    /// Workspace-relative path, for diagnostics.
    rel_path: String,
    /// Crate short name: `kv`, `core`, ... or `trass` for the root package.
    krate: String,
    /// Binary targets (`src/bin/*`, `main.rs`) are exempt from lib rules.
    is_bin: bool,
    /// Files under a `tests/` or `benches/` directory are all-test.
    is_test_file: bool,
}

impl FileInfo {
    /// Classifies a path relative to the workspace root.
    fn classify(rel: &Path) -> Option<FileInfo> {
        let parts: Vec<&str> = rel.iter().filter_map(|p| p.to_str()).collect();
        if parts.last().map(|f| f.ends_with(".rs")) != Some(true) {
            return None;
        }
        let (krate, rest) = if parts.first() == Some(&"crates") && parts.len() >= 3 {
            (parts[1].to_string(), &parts[2..])
        } else {
            ("trass".to_string(), &parts[..])
        };
        let is_test_file = rest.first() == Some(&"tests") || rest.first() == Some(&"benches");
        let is_bin = rest.contains(&"bin")
            || rest.last() == Some(&"main.rs")
            || rest.first() == Some(&"examples");
        Some(FileInfo { rel_path: rel.to_string_lossy().into_owned(), krate, is_bin, is_test_file })
    }
}

// ---------------------------------------------------------------------------
// Rule checks
// ---------------------------------------------------------------------------

/// Lints one file's source, returning its (unsuppressed) findings.
fn lint_source(info: &FileInfo, source: &str) -> Vec<Diagnostic> {
    let prep = prepare(source);
    let mut out = Vec::new();
    let in_scope =
        |rule: Rule| -> bool { rule.applies_to(&info.krate) && !info.is_bin && !info.is_test_file };
    let mut push = |line: usize, rule: Rule, message: String, prep: &Prepared| {
        if !prep.is_test_line(line) && !prep.is_allowed(line, rule) {
            out.push(Diagnostic { path: info.rel_path.clone(), line, rule, message });
        }
    };

    for (idx, masked) in prep.masked_lines.iter().enumerate() {
        let line = idx + 1;
        if in_scope(Rule::Unwrap) {
            if masked.contains(".unwrap()") {
                push(
                    line,
                    Rule::Unwrap,
                    "`.unwrap()` in library code; propagate a typed error instead".into(),
                    &prep,
                );
            }
            if masked.contains(".expect(") && !masked.contains(".expect_err(") {
                push(
                    line,
                    Rule::Unwrap,
                    "`.expect(...)` in library code; propagate a typed error instead".into(),
                    &prep,
                );
            }
        }
        if in_scope(Rule::Cast) {
            if let Some(ty) = numeric_cast(masked) {
                push(
                    line,
                    Rule::Cast,
                    format!("bare `as {ty}` cast; use From/TryFrom or justify with an allow"),
                    &prep,
                );
            }
        }
        if in_scope(Rule::FloatEq) {
            if let Some(op) = float_literal_eq(masked) {
                push(
                    line,
                    Rule::FloatEq,
                    format!("`{op}` against a float literal; compare with a tolerance"),
                    &prep,
                );
            }
        }
        if in_scope(Rule::NoPrint) && (masked.contains("println!") || masked.contains("eprintln!"))
        {
            push(
                line,
                Rule::NoPrint,
                "`println!`/`eprintln!` in library code; use the obs registry or return data"
                    .into(),
                &prep,
            );
        }
    }

    if in_scope(Rule::PubDoc) {
        check_pub_doc(info, &prep, &mut out);
    }
    if in_scope(Rule::LockAcrossIo) {
        check_lock_across_io(info, &prep, &mut out);
    }
    out
}

/// Numeric types a bare `as` cast can silently truncate or round to.
const NUMERIC_TYPES: [&str; 13] =
    ["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32"];
// `f64` is handled with the list above; kept separate only to document that
// int→f64 widening can still lose precision past 2^53.

/// Returns the target type of the first bare numeric `as` cast on the line.
fn numeric_cast(masked: &str) -> Option<&'static str> {
    let mut words = Vec::new();
    let mut start = None;
    for (i, c) in masked.char_indices() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(s) = start.take() {
            words.push(&masked[s..i]);
        }
    }
    if let Some(s) = start {
        words.push(&masked[s..]);
    }
    for pair in words.windows(2) {
        if pair[0] == "as" {
            if let Some(ty) = NUMERIC_TYPES.iter().find(|t| **t == pair[1]) {
                return Some(ty);
            }
            if pair[1] == "f64" {
                return Some("f64");
            }
        }
    }
    None
}

/// Detects `==` / `!=` with a float literal on either side.
fn float_literal_eq(masked: &str) -> Option<&'static str> {
    let bytes = masked.as_bytes();
    for i in 0..bytes.len().saturating_sub(1) {
        let op = match (bytes[i], bytes[i + 1]) {
            (b'=', b'=') => "==",
            (b'!', b'=') => "!=",
            _ => continue,
        };
        // Skip `<=`, `>=`, `===`-like runs and pattern arms `=>`.
        if i > 0 && matches!(bytes[i - 1], b'<' | b'>' | b'=' | b'!') {
            continue;
        }
        if bytes.get(i + 2) == Some(&b'=') || bytes.get(i + 2) == Some(&b'>') {
            continue;
        }
        let before = masked[..i].trim_end();
        let after = masked[i + 2..].trim_start();
        if ends_with_float_literal(before) || starts_with_float_literal(after) {
            return Some(op);
        }
    }
    None
}

fn starts_with_float_literal(s: &str) -> bool {
    let s = s.strip_prefix('-').unwrap_or(s);
    let digits = s.len() - s.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    digits > 0 && s[digits..].starts_with('.')
}

fn ends_with_float_literal(s: &str) -> bool {
    // Accept `1.0`, `0.5`, `1e-9` style tails preceded by a `.digits` part.
    let tail = s.trim_end_matches(|c: char| c.is_ascii_digit() || c == '_' || c == 'e' || c == '-');
    if tail.len() == s.len() {
        return false;
    }
    tail.ends_with('.') && tail[..tail.len() - 1].ends_with(|c: char| c.is_ascii_digit())
}

/// Every `pub fn` (not `pub(crate)`) must carry a doc comment, looking
/// upward past attributes.
fn check_pub_doc(info: &FileInfo, prep: &Prepared, out: &mut Vec<Diagnostic>) {
    for (idx, masked) in prep.masked_lines.iter().enumerate() {
        let line = idx + 1;
        let t = masked.trim_start();
        let is_pub_fn = ["pub fn ", "pub const fn ", "pub unsafe fn ", "pub async fn "]
            .iter()
            .any(|p| t.starts_with(p));
        if !is_pub_fn || prep.is_test_line(line) || prep.is_allowed(line, Rule::PubDoc) {
            continue;
        }
        // Walk upward over attributes and blank lines to the nearest
        // non-attribute line; it must be a doc comment.
        let mut j = idx;
        let mut documented = false;
        while j > 0 {
            j -= 1;
            let up = prep.masked_lines[j].trim();
            if prep.doc_lines.contains(&(j + 1)) {
                documented = true;
                break;
            }
            // Skip attribute lines (masked comments are blank).
            if up.is_empty() || up.starts_with("#[") || up.starts_with("#![") || up.ends_with(")]")
            {
                continue;
            }
            break;
        }
        if !documented {
            let name = fn_name(t).unwrap_or("function");
            out.push(Diagnostic {
                path: info.rel_path.clone(),
                line,
                rule: Rule::PubDoc,
                message: format!("public function `{name}` has no doc comment"),
            });
        }
    }
}

fn fn_name(decl: &str) -> Option<&str> {
    let after = decl.split("fn ").nth(1)?;
    let end = after.find(|c: char| !c.is_ascii_alphanumeric() && c != '_')?;
    Some(&after[..end])
}

/// Calls that do file I/O or long scans; a lock guard must not be live
/// across them without an explicit allow.
const IO_MARKERS: [&str; 14] = [
    "std::fs::",
    "fs::write",
    "fs::read",
    "fs::rename",
    "fs::remove_file",
    "File::open",
    "OpenOptions",
    "::create(",
    "sync_data",
    "sync_all",
    "read_exact",
    "read_to_end",
    "write_all(",
    ".scan(",
];

/// Heuristic block-scope analysis: a `let guard = ....lock()/.read()/.write()`
/// binding is live until its enclosing block closes or it is `drop`ped;
/// any I/O marker inside that window fires.
fn check_lock_across_io(info: &FileInfo, prep: &Prepared, out: &mut Vec<Diagnostic>) {
    struct Guard {
        name: String,
        depth: usize,
        line: usize,
    }
    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    for (idx, masked) in prep.masked_lines.iter().enumerate() {
        let line = idx + 1;
        let is_test = prep.is_test_line(line);

        // I/O markers first: a guard bound on this same line (e.g. a match
        // on `.read()` + I/O in one statement) still counts as held.
        if !is_test {
            for marker in IO_MARKERS {
                if masked.contains(marker) {
                    if let Some(g) = guards.iter().find(|g| g.line < line) {
                        if !prep.is_allowed(line, Rule::LockAcrossIo) {
                            out.push(Diagnostic {
                                path: info.rel_path.clone(),
                                line,
                                rule: Rule::LockAcrossIo,
                                message: format!(
                                    "`{marker}` while lock guard `{}` (bound line {}) is live; \
                                     drop the guard first or justify with an allow",
                                    g.name, g.line
                                ),
                            });
                        }
                        break;
                    }
                }
            }
        }

        // New guard binding?
        if !is_test {
            if let Some(name) = guard_binding(masked) {
                guards.push(Guard { name: name.to_string(), depth, line });
            }
        }

        // Explicit drops release the guard.
        guards.retain(|g| !masked.contains(&format!("drop({})", g.name)));

        for c in masked.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.depth <= depth);
                }
                _ => {}
            }
        }
    }
}

/// Extracts the bound name from `let [mut] <name> = <expr>.lock()/.read()/.write()`.
fn guard_binding(masked: &str) -> Option<&str> {
    let has_acquire = [".lock()", ".read()", ".write()", ".try_lock()", ".try_read()"]
        .iter()
        .any(|p| masked.contains(p));
    if !has_acquire {
        return None;
    }
    let t = masked.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let end = rest.find(|c: char| !c.is_ascii_alphanumeric() && c != '_')?;
    let name = &rest[..end];
    if name.is_empty() || name == "_" {
        None
    } else {
        Some(name)
    }
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Lints every `.rs` file under `crates/*/src` and the root `src/`.
fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let Some(info) = FileInfo::classify(rel) else { continue };
        let source = std::fs::read_to_string(&path)?;
        out.extend(lint_source(&info, &source));
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Resolves the workspace root: explicit argument, else the lint crate's
/// grandparent (when run via cargo), else the current directory.
fn workspace_root() -> PathBuf {
    if let Some(arg) = std::env::args().nth(1) {
        return PathBuf::from(arg);
    }
    if let Some(manifest) = option_env!("CARGO_MANIFEST_DIR") {
        let p = Path::new(manifest);
        if let Some(root) = p.parent().and_then(|p| p.parent()) {
            if root.join("Cargo.toml").is_file() {
                return root.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let root = workspace_root();
    match lint_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("trass-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("trass-lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("trass-lint: I/O error: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// Self-tests: every rule demonstrated firing on a fixture, the escape
// hatch, test-region exemption, and the real workspace staying clean.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn kv_lib() -> FileInfo {
        FileInfo {
            rel_path: "crates/kv/src/fixture.rs".into(),
            krate: "kv".into(),
            is_bin: false,
            is_test_file: false,
        }
    }

    fn info_for(krate: &str) -> FileInfo {
        FileInfo {
            rel_path: format!("crates/{krate}/src/fixture.rs"),
            krate: krate.into(),
            is_bin: false,
            is_test_file: false,
        }
    }

    fn rules_fired(info: &FileInfo, src: &str) -> Vec<(usize, Rule)> {
        lint_source(info, src).into_iter().map(|d| (d.line, d.rule)).collect()
    }

    #[test]
    fn unwrap_rule_fires_with_file_and_line() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let diags = lint_source(&kv_lib(), src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
        assert_eq!(diags[0].rule, Rule::Unwrap);
        assert_eq!(diags[0].path, "crates/kv/src/fixture.rs");
    }

    #[test]
    fn expect_fires_but_expect_err_does_not() {
        let src = "fn f(x: Result<u8, u8>) -> u8 {\n    x.expect(\"boom\")\n}\n\
                   fn g(x: Result<u8, u8>) -> u8 {\n    x.expect_err(\"fine\")\n}\n";
        assert_eq!(rules_fired(&kv_lib(), src), vec![(2, Rule::Unwrap)]);
    }

    #[test]
    fn cast_rule_fires_in_index_not_in_kv() {
        let src = "fn f(x: u64) -> u32 {\n    x as u32\n}\n";
        assert_eq!(rules_fired(&info_for("index"), src), vec![(2, Rule::Cast)]);
        assert!(rules_fired(&kv_lib(), src).is_empty());
    }

    #[test]
    fn float_eq_rule_fires_on_literal_comparison() {
        let src = "fn f(d: f64) -> bool {\n    d == 0.0\n}\nfn g(a: u32, b: u32) -> bool {\n    a == b\n}\n";
        assert_eq!(rules_fired(&info_for("geo"), src), vec![(2, Rule::FloatEq)]);
    }

    #[test]
    fn float_eq_ignores_match_arms_and_orderings() {
        let src = "fn f(d: f64) -> u8 {\n    if d <= 1.0 { 0 } else { 1 }\n}\n";
        assert!(rules_fired(&info_for("geo"), src).is_empty());
    }

    #[test]
    fn lock_across_io_fires_on_guard_held_over_fs_call() {
        let src = "fn f(m: &std::sync::Mutex<u8>) {\n    let guard = m.lock();\n    \
                   let _ = std::fs::read(\"x\");\n    drop(guard);\n}\n";
        assert_eq!(rules_fired(&kv_lib(), src), vec![(3, Rule::LockAcrossIo)]);
    }

    #[test]
    fn lock_across_io_respects_drop_and_scope() {
        let dropped = "fn f(m: &std::sync::Mutex<u8>) {\n    let guard = m.lock();\n    \
                       drop(guard);\n    let _ = std::fs::read(\"x\");\n}\n";
        assert!(rules_fired(&kv_lib(), dropped).is_empty());
        let scoped =
            "fn f(m: &std::sync::Mutex<u8>) {\n    {\n        let guard = m.lock();\n    }\n    \
                      let _ = std::fs::read(\"x\");\n}\n";
        assert!(rules_fired(&kv_lib(), scoped).is_empty());
    }

    #[test]
    fn pub_doc_rule_fires_without_doc_and_passes_with() {
        let undocumented = "pub fn lonely() {}\n";
        assert_eq!(rules_fired(&info_for("geo"), undocumented), vec![(1, Rule::PubDoc)]);
        let documented = "/// Does the thing.\n#[inline]\npub fn fine() {}\n";
        assert!(rules_fired(&info_for("geo"), documented).is_empty());
        let crate_private = "pub(crate) fn hidden() {}\n";
        assert!(rules_fired(&info_for("geo"), crate_private).is_empty());
    }

    #[test]
    fn no_print_fires_in_lib_but_not_in_bench_or_bin() {
        let src = "fn f() {\n    println!(\"hi\");\n}\n";
        assert_eq!(rules_fired(&info_for("obs"), src), vec![(2, Rule::NoPrint)]);
        assert!(rules_fired(&info_for("bench"), src).is_empty());
        let bin = FileInfo {
            rel_path: "crates/kv/src/bin/tool.rs".into(),
            krate: "kv".into(),
            is_bin: true,
            is_test_file: false,
        };
        assert!(rules_fired(&bin, src).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_same_line_and_next_line() {
        let same = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // trass-lint: allow(unwrap)\n}\n";
        assert!(rules_fired(&kv_lib(), same).is_empty());
        let above = "fn f(x: Option<u8>) -> u8 {\n    // justified: trass-lint: allow(unwrap)\n    x.unwrap()\n}\n";
        assert!(rules_fired(&kv_lib(), above).is_empty());
        let wrong_rule =
            "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // trass-lint: allow(cast)\n}\n";
        assert_eq!(rules_fired(&kv_lib(), wrong_rule), vec![(2, Rule::Unwrap)]);
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                   Some(1).unwrap();\n    }\n}\n";
        assert!(rules_fired(&kv_lib(), src).is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        let src = "fn f() -> &'static str {\n    // calling .unwrap() here would be bad\n    \
                   \"x as u32 == 0.0 .unwrap()\"\n}\n";
        assert!(rules_fired(&kv_lib(), src).is_empty());
        assert!(rules_fired(&info_for("index"), src).is_empty());
    }

    #[test]
    fn raw_strings_and_chars_are_masked() {
        let src =
            "fn f() -> char {\n    let _s = r#\"x.unwrap()\"#;\n    let _t = 'a';\n    '\\n'\n}\n";
        assert!(rules_fired(&kv_lib(), src).is_empty());
    }

    #[test]
    fn doc_examples_inside_doc_comments_do_not_fire() {
        let src = "/// Example:\n/// ```\n/// let x = Some(1).unwrap();\n/// ```\npub fn f() {}\n";
        assert!(rules_fired(&kv_lib(), src).is_empty());
    }

    #[test]
    fn workspace_is_clean() {
        // The gate itself: the real tree must pass every rule. Locating the
        // root works both under cargo and when compiled with plain rustc.
        let root = option_env!("CARGO_MANIFEST_DIR")
            .map(|m| Path::new(m).join("../.."))
            .filter(|p| p.join("Cargo.toml").is_file())
            .unwrap_or_else(|| PathBuf::from("."));
        if !root.join("crates").is_dir() {
            // Running outside the workspace (e.g. a bare rustc test build
            // from another directory): nothing to check.
            return;
        }
        let diags = lint_workspace(&root).expect("workspace readable");
        assert!(
            diags.is_empty(),
            "workspace has lint violations:\n{}",
            diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
        );
    }
}
