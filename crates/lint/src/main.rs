//! trass-lint: dependency-free static analysis for the TraSS workspace.
//!
//! ```text
//! trass-lint [ROOT] [--format text|json] [--baseline PATH] [--write-baseline PATH]
//! ```
//!
//! Architecture: [`scanner`] turns each source file into a masked token
//! view plus side tables; [`rules`] holds one module per rule — per-file
//! line rules and the cross-file analyses (lock-order cycles, knob/metric
//! drift); [`report`] renders findings as text or JSON and implements the
//! checked-in-baseline workflow; [`json`] is the small parser both the
//! baseline reader and the self-tests use.
//!
//! Exit code is 0 iff there are no findings outside the baseline, which
//! makes `trass-lint --format json --baseline lint-baseline.json` the CI
//! gate: pre-existing accepted debt stays visible (and auditable, each
//! entry carries a reason) without blocking, while anything new fails.

mod json;
mod report;
mod rules;
mod scanner;

use report::{Baseline, Diagnostic};
use rules::drift::DocSet;
use scanner::{FileInfo, PreparedFile};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: trass-lint [ROOT] [--format text|json] \
                     [--baseline PATH] [--write-baseline PATH]";

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

struct Cli {
    root: PathBuf,
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli =
        Cli { root: default_root(), format: Format::Text, baseline: None, write_baseline: None };
    let mut root_set = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                i += 1;
                let v = args.get(i).ok_or("--format needs a value")?;
                cli.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format {other:?} (want text or json)")),
                };
            }
            "--baseline" => {
                i += 1;
                cli.baseline = Some(PathBuf::from(args.get(i).ok_or("--baseline needs a path")?));
            }
            "--write-baseline" => {
                i += 1;
                cli.write_baseline =
                    Some(PathBuf::from(args.get(i).ok_or("--write-baseline needs a path")?));
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path => {
                if root_set {
                    return Err(format!("unexpected second root argument {path:?}"));
                }
                cli.root = PathBuf::from(path);
                root_set = true;
            }
        }
        i += 1;
    }
    Ok(cli)
}

/// Resolves the default workspace root: the lint crate's grandparent (when
/// built via cargo), else the current directory.
fn default_root() -> PathBuf {
    if let Some(manifest) = option_env!("CARGO_MANIFEST_DIR") {
        let p = Path::new(manifest);
        if let Some(root) = p.parent().and_then(|p| p.parent()) {
            if root.join("Cargo.toml").is_file() {
                return root.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

/// Reads and prepares every `.rs` file under `crates/*/src`, `crates/*/tests`,
/// and the root `src/`, plus the doc/CI text the drift analysis uses.
fn load_workspace(root: &Path) -> std::io::Result<(Vec<PreparedFile>, DocSet)> {
    let mut paths = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let krate = entry?.path();
            for sub in ["src", "tests", "benches"] {
                let dir = krate.join(sub);
                if dir.is_dir() {
                    collect_rs(&dir, &mut paths)?;
                }
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut paths)?;
    }
    paths.sort();
    let mut files = Vec::new();
    for path in paths {
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let Some(info) = FileInfo::classify(rel) else { continue };
        let source = std::fs::read_to_string(&path)?;
        files.push(PreparedFile::new(info, &source));
    }
    Ok((files, load_docs(root)))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Loads README/DESIGN and CI workflow text (all optional; absent files
/// read as empty, which the drift analysis treats as "documents nothing").
fn load_docs(root: &Path) -> DocSet {
    let read = |p: PathBuf| std::fs::read_to_string(p).unwrap_or_default();
    let mut workflows = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join(".github").join("workflows")) {
        let mut paths: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "yml" || e == "yaml"))
            .collect();
        paths.sort();
        for p in paths {
            let rel = p.strip_prefix(root).unwrap_or(&p).to_string_lossy().into_owned();
            workflows.push((rel, read(p.clone())));
        }
    }
    DocSet { readme: read(root.join("README.md")), design: read(root.join("DESIGN.md")), workflows }
}

/// Runs every per-file rule and the cross-file analyses; sorted output.
fn lint_all(files: &[PreparedFile], docs: &DocSet) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in files {
        out.extend(rules::lint_file(file));
    }
    out.extend(rules::lint_cross_file(files, docs));
    out.sort();
    out
}

/// The process exit policy: only findings outside the baseline fail.
fn exit_code_for(new: &[Diagnostic]) -> u8 {
    u8::from(!new.is_empty())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("trass-lint: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let (files, docs) = match load_workspace(&cli.root) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("trass-lint: I/O error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let diags = lint_all(&files, &docs);

    if let Some(path) = &cli.write_baseline {
        if let Err(e) = std::fs::write(path, report::render_baseline(&diags)) {
            eprintln!("trass-lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "trass-lint: wrote {} finding(s) to {}; fill in each \"reason\" before committing",
            diags.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match &cli.baseline {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("trass-lint: cannot read baseline {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            match Baseline::parse(&text) {
                Ok(baseline) => baseline,
                Err(e) => {
                    eprintln!("trass-lint: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => Baseline::default(),
    };
    let (new, baselined) = baseline.split(diags);

    match cli.format {
        Format::Json => print!("{}", report::render_json(&new, &baselined)),
        Format::Text => {
            for d in &new {
                println!("{d}");
            }
            if new.is_empty() {
                println!("trass-lint: clean ({} baselined finding(s))", baselined.len());
            } else {
                println!("trass-lint: {} new finding(s), {} baselined", new.len(), baselined.len());
            }
        }
    }
    if exit_code_for(&new) == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// Self-tests: CLI parsing, the JSON pipeline end-to-end on the real
// workspace, and the workspace staying clean modulo the checked-in
// baseline (the living proof every accepted finding is accounted for).
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_defaults_and_flags_parse() {
        let cli = parse_args(&[]).unwrap();
        assert!(cli.format == Format::Text && cli.baseline.is_none());
        let args: Vec<String> = ["/x", "--format", "json", "--baseline", "b.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cli = parse_args(&args).unwrap();
        assert!(cli.format == Format::Json);
        assert_eq!(cli.root, PathBuf::from("/x"));
        assert_eq!(cli.baseline, Some(PathBuf::from("b.json")));
        assert!(parse_args(&["--format".into(), "xml".into()]).is_err());
        assert!(parse_args(&["--nope".into()]).is_err());
        assert!(parse_args(&["a".into(), "b".into()]).is_err());
    }

    fn real_workspace() -> Option<(Vec<PreparedFile>, DocSet, Baseline)> {
        let root = default_root();
        if !root.join("crates").is_dir() {
            return None; // out-of-tree build; nothing to lint
        }
        let (files, docs) = load_workspace(&root).expect("workspace readable");
        let baseline_path = root.join("lint-baseline.json");
        let baseline = if baseline_path.is_file() {
            let text = std::fs::read_to_string(&baseline_path).expect("baseline readable");
            Baseline::parse(&text).expect("lint-baseline.json must parse with reasons")
        } else {
            Baseline::default()
        };
        Some((files, docs, baseline))
    }

    #[test]
    fn workspace_is_clean_modulo_baseline() {
        let Some((files, docs, baseline)) = real_workspace() else { return };
        let (new, _) = baseline.split(lint_all(&files, &docs));
        let listing = new.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n");
        assert!(new.is_empty(), "new findings outside lint-baseline.json:\n{listing}");
    }

    #[test]
    fn json_report_of_real_workspace_round_trips() {
        let Some((files, docs, baseline)) = real_workspace() else { return };
        let (new, baselined) = baseline.split(lint_all(&files, &docs));
        let rendered = report::render_json(&new, &baselined);
        let doc = json::parse(&rendered).expect("report is valid JSON");
        assert_eq!(doc.get("new_findings").and_then(json::Json::as_num), Some(new.len() as f64));
        assert_eq!(
            doc.get("baselined_findings").and_then(json::Json::as_num),
            Some(baselined.len() as f64)
        );
        let findings = doc.get("findings").and_then(json::Json::as_arr).unwrap();
        assert_eq!(findings.len(), new.len() + baselined.len());
        for f in findings {
            for field in ["rule", "path", "message"] {
                assert!(f.get(field).and_then(json::Json::as_str).is_some(), "missing {field}");
            }
            assert!(f.get("line").and_then(json::Json::as_num).is_some());
        }
    }

    #[test]
    fn baselined_findings_exit_zero_and_new_findings_exit_one() {
        let finding = Diagnostic {
            path: "crates/kv/src/x.rs".into(),
            line: 7,
            rule: rules::Rule::Unwrap,
            message: "`.unwrap()` in library code; propagate a typed error instead".into(),
        };
        let baseline = Baseline::parse(
            r#"{"version": 1, "findings": [
                {"rule": "unwrap", "path": "crates/kv/src/x.rs",
                 "message": "`.unwrap()` in library code; propagate a typed error instead",
                 "reason": "accepted"}
            ]}"#,
        )
        .unwrap();
        let (new, baselined) = baseline.split(vec![finding.clone()]);
        assert_eq!((new.len(), baselined.len()), (0, 1));
        assert_eq!(exit_code_for(&new), 0, "baselined finding must pass");
        let (new, _) = Baseline::default().split(vec![finding]);
        assert_eq!(exit_code_for(&new), 1, "non-baselined finding must fail");
    }
}
