//! Finding representation and output: human text, machine JSON
//! (`--format json`), and the checked-in baseline workflow
//! (`--baseline lint-baseline.json`).
//!
//! The baseline exists so a *newly added* analysis can land with its
//! pre-existing accepted findings recorded instead of blocking CI, while
//! any finding not in the baseline still fails the build. Entries match on
//! `(rule, path, message)` — deliberately **not** on line number, so
//! unrelated edits shifting a file do not churn the baseline — and are
//! counted: two identical findings need two entries. Every entry carries a
//! human `reason`, making the accepted debt auditable in review.

use crate::json::{self, Json};
use crate::rules::Rule;
use std::collections::BTreeMap;
use std::fmt;

/// One finding: where, which rule, and what to do about it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line. Cross-file findings that have no single line use the
    /// primary acquisition/declaration site.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable description, stable across unrelated edits (used for
    /// baseline matching).
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule.name(), self.message)
    }
}

/// The multiset key baseline entries match on.
fn key(rule: &str, path: &str, message: &str) -> String {
    format!("{rule}\u{1}{path}\u{1}{message}")
}

/// A loaded `lint-baseline.json`: accepted findings as a counted multiset.
#[derive(Debug, Default)]
pub struct Baseline {
    counts: BTreeMap<String, usize>,
    /// Total entries loaded (for reporting).
    pub len: usize,
}

impl Baseline {
    /// Parses the baseline file format:
    /// `{"version": 1, "findings": [{"rule", "path", "message", "reason", ...}]}`.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        let findings = doc
            .get("findings")
            .and_then(Json::as_arr)
            .ok_or("baseline has no \"findings\" array")?;
        let mut baseline = Baseline::default();
        for (i, entry) in findings.iter().enumerate() {
            let field = |name: &str| -> Result<&str, String> {
                entry
                    .get(name)
                    .and_then(Json::as_str)
                    .ok_or(format!("baseline finding #{i} lacks string field {name:?}"))
            };
            let rule = field("rule")?;
            if Rule::from_name(rule).is_none() {
                return Err(format!("baseline finding #{i} names unknown rule {rule:?}"));
            }
            // `reason` is required: un-justified accepted debt defeats the
            // point of an auditable baseline.
            if field("reason")?.trim().is_empty() {
                return Err(format!("baseline finding #{i} has an empty reason"));
            }
            let k = key(rule, field("path")?, field("message")?);
            *baseline.counts.entry(k).or_insert(0) += 1;
            baseline.len += 1;
        }
        Ok(baseline)
    }

    /// Splits `diags` into (new, baselined). Each baseline entry absorbs at
    /// most one matching finding; extra occurrences beyond the baselined
    /// count are new.
    pub fn split(&self, diags: Vec<Diagnostic>) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
        let mut remaining = self.counts.clone();
        let mut fresh = Vec::new();
        let mut known = Vec::new();
        for d in diags {
            let k = key(d.rule.name(), &d.path, &d.message);
            match remaining.get_mut(&k) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    known.push(d);
                }
                _ => fresh.push(d),
            }
        }
        (fresh, known)
    }
}

/// Renders findings as the machine-readable report. `new` and `baselined`
/// partition all findings; the schema is stable for CI consumers:
///
/// ```json
/// {
///   "version": 1,
///   "new_findings": 0,
///   "baselined_findings": 2,
///   "findings": [
///     {"rule": "...", "path": "...", "line": 1, "message": "...", "baselined": true}
///   ]
/// }
/// ```
pub fn render_json(new: &[Diagnostic], baselined: &[Diagnostic]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"new_findings\": {},\n", new.len()));
    out.push_str(&format!("  \"baselined_findings\": {},\n", baselined.len()));
    out.push_str("  \"findings\": [\n");
    let total = new.len() + baselined.len();
    let rows = new
        .iter()
        .map(|d| (d, false))
        .chain(baselined.iter().map(|d| (d, true)))
        .enumerate()
        .map(|(i, (d, known))| {
            format!(
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\", \
                 \"baselined\": {}}}{}",
                json::escape(d.rule.name()),
                json::escape(&d.path),
                d.line,
                json::escape(&d.message),
                known,
                if i + 1 < total { "," } else { "" }
            )
        })
        .collect::<Vec<_>>();
    out.push_str(&rows.join("\n"));
    if !rows.is_empty() {
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders findings as a fresh baseline file, with placeholder reasons to
/// be filled in by hand (the parser rejects empty ones, so a generated
/// baseline cannot be committed unreviewed... unless someone writes
/// "TODO", which review should catch).
pub fn render_baseline(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [\n");
    let rows = diags
        .iter()
        .enumerate()
        .map(|(i, d)| {
            format!(
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\", \
                 \"reason\": \"TODO: justify\"}}{}",
                json::escape(d.rule.name()),
                json::escape(&d.path),
                d.line,
                json::escape(&d.message),
                if i + 1 < diags.len() { "," } else { "" }
            )
        })
        .collect::<Vec<_>>();
    out.push_str(&rows.join("\n"));
    if !rows.is_empty() {
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: Rule, path: &str, line: usize, message: &str) -> Diagnostic {
        Diagnostic { path: path.into(), line, rule, message: message.into() }
    }

    #[test]
    fn baseline_absorbs_known_findings_and_flags_new_ones() {
        let baseline = Baseline::parse(
            r#"{"version": 1, "findings": [
                {"rule": "unwrap", "path": "crates/kv/src/a.rs",
                 "message": "old debt", "reason": "accepted in PR 9"}
            ]}"#,
        )
        .unwrap();
        assert_eq!(baseline.len, 1);
        let diags = vec![
            diag(Rule::Unwrap, "crates/kv/src/a.rs", 10, "old debt"),
            diag(Rule::Unwrap, "crates/kv/src/a.rs", 20, "new debt"),
        ];
        let (new, known) = baseline.split(diags);
        assert_eq!(known.len(), 1, "baselined finding absorbed (line ignored)");
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].message, "new debt");
    }

    #[test]
    fn baseline_entries_are_counted_not_set_matched() {
        let baseline = Baseline::parse(
            r#"{"version": 1, "findings": [
                {"rule": "unwrap", "path": "a.rs", "message": "m", "reason": "r"}
            ]}"#,
        )
        .unwrap();
        // Two identical findings, one baseline entry: the second is new.
        let diags = vec![diag(Rule::Unwrap, "a.rs", 1, "m"), diag(Rule::Unwrap, "a.rs", 2, "m")];
        let (new, known) = baseline.split(diags);
        assert_eq!((new.len(), known.len()), (1, 1));
    }

    #[test]
    fn baseline_rejects_missing_reason_and_unknown_rule() {
        let no_reason = r#"{"findings": [{"rule": "unwrap", "path": "a", "message": "m"}]}"#;
        assert!(Baseline::parse(no_reason).is_err());
        let empty_reason =
            r#"{"findings": [{"rule": "unwrap", "path": "a", "message": "m", "reason": " "}]}"#;
        assert!(Baseline::parse(empty_reason).is_err());
        let bad_rule =
            r#"{"findings": [{"rule": "wat", "path": "a", "message": "m", "reason": "r"}]}"#;
        assert!(Baseline::parse(bad_rule).is_err());
    }

    #[test]
    fn json_report_round_trips_through_the_parser() {
        let new = vec![diag(Rule::LockOrder, "crates/kv/src/store.rs", 3, "cycle \"a\" -> b\n")];
        let known = vec![diag(Rule::Drift, "README.md", 0, "dead knob")];
        let rendered = render_json(&new, &known);
        let doc = json::parse(&rendered).expect("report must be valid JSON");
        assert_eq!(doc.get("new_findings").and_then(Json::as_num), Some(1.0));
        assert_eq!(doc.get("baselined_findings").and_then(Json::as_num), Some(1.0));
        let findings = doc.get("findings").and_then(Json::as_arr).unwrap();
        assert_eq!(findings.len(), 2);
        assert_eq!(
            findings[0].get("message").and_then(Json::as_str),
            Some("cycle \"a\" -> b\n"),
            "escaping must round-trip"
        );
        assert_eq!(findings[1].get("baselined"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rendered_baseline_parses_after_reasons_are_filled() {
        let diags = vec![diag(Rule::PanicSurface, "crates/obs/src/x.rs", 9, "assert! in lib")];
        let rendered = render_baseline(&diags);
        // Fresh render carries TODO reasons, which parse (auditing is a
        // review concern), and the round-trip matches the same finding.
        let baseline = Baseline::parse(&rendered).unwrap();
        let (new, known) = baseline.split(diags);
        assert!(new.is_empty());
        assert_eq!(known.len(), 1);
    }

    #[test]
    fn empty_report_is_valid_json_with_zero_counts() {
        let rendered = render_json(&[], &[]);
        let doc = json::parse(&rendered).unwrap();
        assert_eq!(doc.get("new_findings").and_then(Json::as_num), Some(0.0));
        assert_eq!(doc.get("findings").and_then(Json::as_arr).map(<[Json]>::len), Some(0));
    }
}
