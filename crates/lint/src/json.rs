//! Minimal dependency-free JSON, in the same spirit as the hand-rolled
//! flat parser in `trass-bench`: the lint crate must stay std-only, and
//! the two formats it speaks (`--format json` output, `lint-baseline.json`
//! input) are small and fully under our control. Unlike the bench gate's
//! flat `"key": number` scanner, findings nest one level (an array of
//! objects), so this is a real — if deliberately small — recursive-descent
//! parser. Numbers are `f64`; that is exact for every line number a source
//! file can plausibly have.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers included).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number. (Exercised by the report
    /// and CLI self-tests; the production path only reads strings.)
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Looks up `key`, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

/// Parses a complete JSON document. Trailing whitespace is allowed,
/// trailing garbage is an error.
pub fn parse(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                let esc = bytes.get(*pos + 1).ok_or("dangling escape")?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos + 2..*pos + 6)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        // Surrogate pairs are not needed for lint output;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("unknown escape \\{}", *other as char)),
                }
                *pos += 2;
            }
            _ => {
                // Multi-byte UTF-8: copy the full char.
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = s.chars().next().ok_or("unexpected end of string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_findings_shape() {
        let doc = r#"{
            "version": 1,
            "findings": [
                {"rule": "unwrap", "path": "crates/kv/src/x.rs", "line": 3, "message": "m"},
                {"rule": "drift", "path": "README.md", "line": 0, "message": "n"}
            ]
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("version").and_then(Json::as_num), Some(1.0));
        let findings = v.get("findings").and_then(Json::as_arr).unwrap();
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].get("rule").and_then(Json::as_str), Some("unwrap"));
        assert_eq!(findings[1].get("line").and_then(Json::as_num), Some(0.0));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote \" backslash \\ newline \n tab \t ctrl \u{1}";
        let doc = format!("{{\"m\": \"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("m").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} extra").is_err());
        assert!(parse("{\"a\": ").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" -1.5e2 ").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
    }
}
