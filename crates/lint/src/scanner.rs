//! Source preprocessing: comment/string masking, doc-line and allow
//! tracking, `#[cfg(test)]` region detection, and file classification.
//!
//! Every rule works on a [`Prepared`] view of one file: the masked text
//! keeps byte offsets per line identical to the original (comments and
//! literal contents become spaces), so diagnostics point at real columns,
//! while the side tables carry what the masking pass learned on the way —
//! which lines are doc comments, which carry `trass-lint: allow(...)`
//! escapes, which string literals exist (the drift analysis needs their
//! *contents*, which the mask erases), and which lines sit inside
//! `#[cfg(test)]` items.

use crate::rules::Rule;
use std::collections::BTreeSet;
use std::path::Path;

/// A source file after comment/string stripping, with the side tables the
/// rules need. Line numbers are 1-based throughout.
pub struct Prepared {
    /// Source with comment bodies, string/char literal contents, and their
    /// delimiters replaced by spaces. Newlines are preserved, so byte
    /// offsets per line match the original.
    pub masked_lines: Vec<String>,
    /// Lines carrying a doc comment (`///`, `//!`, `/**`, `/*!`).
    pub doc_lines: BTreeSet<usize>,
    /// `(line, rule)` pairs from `trass-lint: allow(...)` comments.
    pub allows: BTreeSet<(usize, Rule)>,
    /// Lines inside a `#[cfg(test)]` item (the attribute's braced body).
    pub test_lines: Vec<bool>,
    /// `(line, contents)` of every string literal outside comments, in
    /// source order. Raw strings included; escape sequences are kept
    /// verbatim (the consumers only pattern-match identifiers).
    pub literals: Vec<(usize, String)>,
}

impl Prepared {
    /// Whether `line` is inside a `#[cfg(test)]` region.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line - 1).copied().unwrap_or(false)
    }

    /// An allow on the diagnostic's own line or the line directly above
    /// suppresses it.
    pub fn is_allowed(&self, line: usize, rule: Rule) -> bool {
        self.allows.contains(&(line, rule)) || (line > 1 && self.allows.contains(&(line - 1, rule)))
    }
}

/// Strips comments and literals while recording doc lines and allows, then
/// marks `#[cfg(test)]` regions by brace matching on the masked text.
pub fn prepare(source: &str) -> Prepared {
    let masked = mask(source);
    let masked_lines: Vec<String> = masked.text.lines().map(|l| l.to_string()).collect();
    let n_lines = masked_lines.len().max(1);
    let mut test_lines = vec![false; n_lines];

    // `#[cfg(test)]` starts a pending region that binds to the next brace
    // block; a `;` first means the attribute decorated a braceless item.
    let mut depth: usize = 0;
    let mut pending = false;
    let mut test_depth: Option<usize> = None;
    for (i, line) in masked_lines.iter().enumerate() {
        if test_depth.is_some() || line.contains("#[cfg(test)]") || line.contains("#[cfg(all(test")
        {
            if line.contains("#[cfg(test)]") || line.contains("#[cfg(all(test") {
                pending = true;
            }
            test_lines[i] = test_depth.is_some() || pending;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending && test_depth.is_none() {
                        test_depth = Some(depth);
                        pending = false;
                        test_lines[i] = true;
                    }
                }
                '}' => {
                    if test_depth == Some(depth) {
                        test_depth = None;
                        // The closing line still belongs to the region.
                        test_lines[i] = true;
                    }
                    depth = depth.saturating_sub(1);
                }
                ';' if pending && test_depth.is_none() => pending = false,
                _ => {}
            }
        }
        if test_depth.is_some() {
            test_lines[i] = true;
        }
    }

    Prepared {
        masked_lines,
        doc_lines: masked.doc_lines,
        allows: masked.allows,
        test_lines,
        literals: masked.literals,
    }
}

/// What the masking pass returns.
struct Masked {
    text: String,
    doc_lines: BTreeSet<usize>,
    allows: BTreeSet<(usize, Rule)>,
    literals: Vec<(usize, String)>,
}

/// The comment/string stripper. Returns the masked text plus the doc-line,
/// allow, and string-literal side tables gathered while walking.
fn mask(source: &str) -> Masked {
    #[derive(PartialEq)]
    enum State {
        Normal,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let bytes = source.as_bytes();
    let mut out = String::with_capacity(source.len());
    let mut doc_lines = BTreeSet::new();
    let mut allows = BTreeSet::new();
    let mut literals: Vec<(usize, String)> = Vec::new();
    let mut current_literal: Option<(usize, String)> = None;
    let mut state = State::Normal;
    let mut line = 1usize;
    let mut i = 0usize;
    let at = |j: usize| -> u8 {
        if j < bytes.len() {
            bytes[j]
        } else {
            0
        }
    };
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            if state == State::LineComment {
                state = State::Normal;
            }
            if let Some((_, lit)) = current_literal.as_mut() {
                lit.push('\n');
            }
            out.push('\n');
            line += 1;
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                if c == b'/' && at(i + 1) == b'/' {
                    // Doc comment? (`///` but not `////`, or `//!`.)
                    if (at(i + 2) == b'/' && at(i + 3) != b'/') || at(i + 2) == b'!' {
                        doc_lines.insert(line);
                    }
                    record_allows(&source[i..], line, &mut allows);
                    state = State::LineComment;
                    out.push(' ');
                    i += 1;
                } else if c == b'/' && at(i + 1) == b'*' {
                    if at(i + 2) == b'*' || at(i + 2) == b'!' {
                        doc_lines.insert(line);
                    }
                    state = State::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                } else if c == b'"' {
                    state = State::Str;
                    current_literal = Some((line, String::new()));
                    out.push(' ');
                    i += 1;
                } else if (c == b'r' || (c == b'b' && at(i + 1) == b'r'))
                    && !is_ident_byte(if i > 0 { bytes[i - 1] } else { 0 })
                {
                    // Possible raw string: r"..", r#".."#, br#".."#.
                    let mut j = i + if c == b'b' { 2 } else { 1 };
                    let mut hashes = 0;
                    while at(j) == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    if at(j) == b'"' {
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        current_literal = Some((line, String::new()));
                        state = State::RawStr(hashes);
                    } else {
                        out.push(c as char);
                        i += 1;
                    }
                } else if c == b'\'' {
                    // Char literal vs lifetime/label: 'x' or '\n' is a
                    // literal; 'ident not followed by a quote is a lifetime.
                    if at(i + 1) == b'\\' || (at(i + 2) == b'\'' && at(i + 1) != b'\'') {
                        state = State::Char;
                        out.push(' ');
                        i += 1;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                } else {
                    out.push(c as char);
                    i += 1;
                }
            }
            State::LineComment => {
                out.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == b'*' && at(i + 1) == b'/' {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    state = if depth == 1 { State::Normal } else { State::BlockComment(depth - 1) };
                } else if c == b'/' && at(i + 1) == b'*' {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == b'\\' {
                    if let Some((_, lit)) = current_literal.as_mut() {
                        lit.push('\\');
                        if at(i + 1) != b'\n' && at(i + 1) != 0 {
                            lit.push(at(i + 1) as char);
                        }
                    }
                    out.push(' ');
                    if at(i + 1) != b'\n' {
                        out.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == b'"' {
                    if let Some(lit) = current_literal.take() {
                        literals.push(lit);
                    }
                    out.push(' ');
                    i += 1;
                    state = State::Normal;
                } else {
                    if let Some((_, lit)) = current_literal.as_mut() {
                        lit.push(c as char);
                    }
                    out.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0;
                    while seen < hashes && at(j) == b'#' {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        if let Some(lit) = current_literal.take() {
                            literals.push(lit);
                        }
                        for _ in i..j {
                            out.push(' ');
                        }
                        i = j;
                        state = State::Normal;
                        continue;
                    }
                }
                if let Some((_, lit)) = current_literal.as_mut() {
                    lit.push(c as char);
                }
                out.push(' ');
                i += 1;
            }
            State::Char => {
                if c == b'\\' && i + 1 < bytes.len() {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == b'\'' {
                    out.push(' ');
                    i += 1;
                    state = State::Normal;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    if let Some(lit) = current_literal.take() {
        // Unterminated literal at EOF: keep what we saw.
        literals.push(lit);
    }
    Masked { text: out, doc_lines, allows, literals }
}

/// Parses `trass-lint: allow(a, b)` out of a comment's text.
fn record_allows(comment: &str, line: usize, allows: &mut BTreeSet<(usize, Rule)>) {
    let comment = match comment.find('\n') {
        Some(end) => &comment[..end],
        None => comment,
    };
    let Some(tag) = comment.find("trass-lint:") else { return };
    let rest = &comment[tag + "trass-lint:".len()..];
    let Some(open) = rest.find("allow(") else { return };
    let rest = &rest[open + "allow(".len()..];
    let Some(close) = rest.find(')') else { return };
    for name in rest[..close].split(',') {
        if let Some(rule) = Rule::from_name(name.trim()) {
            allows.insert((line, rule));
        }
    }
}

/// Whether a byte can be part of an identifier.
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

// ---------------------------------------------------------------------------
// File classification
// ---------------------------------------------------------------------------

/// What the path tells us about a file, driving rule scoping.
#[derive(Debug, Clone)]
pub struct FileInfo {
    /// Workspace-relative path, for diagnostics.
    pub rel_path: String,
    /// Crate short name: `kv`, `core`, ... or `trass` for the root package.
    pub krate: String,
    /// Binary targets (`src/bin/*`, `main.rs`) are exempt from lib rules.
    pub is_bin: bool,
    /// Files under a `tests/` or `benches/` directory are all-test.
    pub is_test_file: bool,
}

impl FileInfo {
    /// Classifies a path relative to the workspace root.
    pub fn classify(rel: &Path) -> Option<FileInfo> {
        let parts: Vec<&str> = rel.iter().filter_map(|p| p.to_str()).collect();
        if parts.last().map(|f| f.ends_with(".rs")) != Some(true) {
            return None;
        }
        let (krate, rest) = if parts.first() == Some(&"crates") && parts.len() >= 3 {
            (parts[1].to_string(), &parts[2..])
        } else {
            ("trass".to_string(), &parts[..])
        };
        let is_test_file = rest.first() == Some(&"tests") || rest.first() == Some(&"benches");
        let is_bin = rest.contains(&"bin")
            || rest.last() == Some(&"main.rs")
            || rest.first() == Some(&"examples");
        Some(FileInfo { rel_path: rel.to_string_lossy().into_owned(), krate, is_bin, is_test_file })
    }

    /// The file name without extension (`store` for `crates/kv/src/store.rs`),
    /// used to qualify lock declarations.
    pub fn file_stem(&self) -> &str {
        let name = self.rel_path.rsplit('/').next().unwrap_or(&self.rel_path);
        name.strip_suffix(".rs").unwrap_or(name)
    }
}

/// One source file prepared for analysis: classification plus the masked
/// view. The per-file rules consume these one at a time; the cross-file
/// analyses see the whole slice at once.
pub struct PreparedFile {
    /// Path-derived classification.
    pub info: FileInfo,
    /// Masked source + side tables.
    pub prep: Prepared,
}

impl PreparedFile {
    /// Prepares a single in-memory source, classified as `info`.
    pub fn new(info: FileInfo, source: &str) -> PreparedFile {
        PreparedFile { info, prep: prepare(source) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_literal_contents_are_recorded_with_lines() {
        let src = "fn f() {\n    let a = \"alpha\";\n    let b = r#\"beta\"#;\n}\n";
        let prep = prepare(src);
        assert_eq!(prep.literals, vec![(2, "alpha".into()), (3, "beta".into())]);
        // And the masked text no longer contains them.
        assert!(!prep.masked_lines[1].contains("alpha"));
        assert!(!prep.masked_lines[2].contains("beta"));
    }

    #[test]
    fn literals_inside_comments_are_not_recorded() {
        let src = "// \"not a literal\"\n/* \"nor this\" */\nfn f() {}\n";
        let prep = prepare(src);
        assert!(prep.literals.is_empty());
    }

    #[test]
    fn escapes_are_kept_verbatim_in_literals() {
        let src = "fn f() { let _ = \"a\\\"b\"; }\n";
        let prep = prepare(src);
        assert_eq!(prep.literals, vec![(1, "a\\\"b".into())]);
    }

    #[test]
    fn classify_detects_crate_bin_and_test_files() {
        let lib = FileInfo::classify(Path::new("crates/kv/src/store.rs")).unwrap();
        assert_eq!(lib.krate, "kv");
        assert!(!lib.is_bin && !lib.is_test_file);
        assert_eq!(lib.file_stem(), "store");
        let bin = FileInfo::classify(Path::new("crates/bench/src/bin/repro.rs")).unwrap();
        assert!(bin.is_bin);
        let test = FileInfo::classify(Path::new("crates/kv/tests/parallel.rs")).unwrap();
        assert!(test.is_test_file);
        let root = FileInfo::classify(Path::new("src/lib.rs")).unwrap();
        assert_eq!(root.krate, "trass");
        assert!(FileInfo::classify(Path::new("crates/kv/Cargo.toml")).is_none());
    }
}
