//! Per-line token rules: `unwrap`, `cast`, `float-eq`, `no-print`, and the
//! line-local parts of `panic-surface`.

use super::{panic_surface, Rule};
use crate::report::Diagnostic;
use crate::scanner::{FileInfo, Prepared};

/// Runs every line rule that is in scope (per `in_scope`) over the file.
pub fn check(
    info: &FileInfo,
    prep: &Prepared,
    in_scope: &dyn Fn(Rule) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    let mut push = |line: usize, rule: Rule, message: String| {
        if !prep.is_test_line(line) && !prep.is_allowed(line, rule) {
            out.push(Diagnostic { path: info.rel_path.clone(), line, rule, message });
        }
    };

    for (idx, masked) in prep.masked_lines.iter().enumerate() {
        let line = idx + 1;
        if in_scope(Rule::Unwrap) {
            if masked.contains(".unwrap()") {
                push(
                    line,
                    Rule::Unwrap,
                    "`.unwrap()` in library code; propagate a typed error instead".into(),
                );
            }
            if panicking_expect(masked) {
                push(
                    line,
                    Rule::Unwrap,
                    "`.expect(...)` in library code; propagate a typed error instead".into(),
                );
            }
        }
        if in_scope(Rule::Cast) {
            if let Some(ty) = numeric_cast(masked) {
                push(
                    line,
                    Rule::Cast,
                    format!("bare `as {ty}` cast; use From/TryFrom or justify with an allow"),
                );
            }
        }
        if in_scope(Rule::FloatEq) {
            if let Some(op) = float_literal_eq(masked) {
                push(
                    line,
                    Rule::FloatEq,
                    format!("`{op}` against a float literal; compare with a tolerance"),
                );
            }
        }
        if in_scope(Rule::NoPrint) && (masked.contains("println!") || masked.contains("eprintln!"))
        {
            push(
                line,
                Rule::NoPrint,
                "`println!`/`eprintln!` in library code; use the obs registry or return data"
                    .into(),
            );
        }
        if in_scope(Rule::PanicSurface) {
            for message in panic_surface::check_line(masked) {
                push(line, Rule::PanicSurface, message);
            }
        }
    }
}

/// Detects `Option::expect`/`Result::expect` calls — `.expect(` whose
/// argument is a string message. After masking, a string-literal message
/// leaves only spaces between the parens, and `format!` messages keep the
/// macro name; anything else (e.g. a parser's own `self.expect(b'{')`
/// taking a byte) is a user method, not a panic site.
fn panicking_expect(masked: &str) -> bool {
    let mut from = 0;
    while let Some(off) = masked[from..].find(".expect(") {
        let at = from + off;
        let arg_start = at + ".expect(".len();
        if masked[at..].starts_with(".expect_err(") {
            from = arg_start;
            continue;
        }
        // Argument region: up to the matching `)` on this line, or the
        // line's end for multi-line messages.
        let bytes = masked.as_bytes();
        let mut depth = 1usize;
        let mut end = arg_start;
        while end < bytes.len() && depth > 0 {
            match bytes[end] {
                b'(' => depth += 1,
                b')' => depth -= 1,
                _ => {}
            }
            if depth == 0 {
                break;
            }
            end += 1;
        }
        let arg = &masked[arg_start..end];
        if arg.trim().is_empty() || arg.contains("format!") {
            return true;
        }
        from = arg_start;
    }
    false
}

/// Numeric types a bare `as` cast can silently truncate or round to.
const NUMERIC_TYPES: [&str; 13] =
    ["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32"];
// `f64` is handled with the list above; kept separate only to document that
// int→f64 widening can still lose precision past 2^53.

/// Returns the target type of the first bare numeric `as` cast on the line.
fn numeric_cast(masked: &str) -> Option<&'static str> {
    let mut words = Vec::new();
    let mut start = None;
    for (i, c) in masked.char_indices() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(s) = start.take() {
            words.push(&masked[s..i]);
        }
    }
    if let Some(s) = start {
        words.push(&masked[s..]);
    }
    for pair in words.windows(2) {
        if pair[0] == "as" {
            if let Some(ty) = NUMERIC_TYPES.iter().find(|t| **t == pair[1]) {
                return Some(ty);
            }
            if pair[1] == "f64" {
                return Some("f64");
            }
        }
    }
    None
}

/// Detects `==` / `!=` with a float literal on either side.
fn float_literal_eq(masked: &str) -> Option<&'static str> {
    let bytes = masked.as_bytes();
    for i in 0..bytes.len().saturating_sub(1) {
        let op = match (bytes[i], bytes[i + 1]) {
            (b'=', b'=') => "==",
            (b'!', b'=') => "!=",
            _ => continue,
        };
        // Skip `<=`, `>=`, `===`-like runs and pattern arms `=>`.
        if i > 0 && matches!(bytes[i - 1], b'<' | b'>' | b'=' | b'!') {
            continue;
        }
        if bytes.get(i + 2) == Some(&b'=') || bytes.get(i + 2) == Some(&b'>') {
            continue;
        }
        let before = masked[..i].trim_end();
        let after = masked[i + 2..].trim_start();
        if ends_with_float_literal(before) || starts_with_float_literal(after) {
            return Some(op);
        }
    }
    None
}

fn starts_with_float_literal(s: &str) -> bool {
    let s = s.strip_prefix('-').unwrap_or(s);
    let digits = s.len() - s.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    digits > 0 && s[digits..].starts_with('.')
}

fn ends_with_float_literal(s: &str) -> bool {
    // Accept `1.0`, `0.5`, `1e-9` style tails preceded by a `.digits` part.
    let tail = s.trim_end_matches(|c: char| c.is_ascii_digit() || c == '_' || c == 'e' || c == '-');
    if tail.len() == s.len() {
        return false;
    }
    tail.ends_with('.') && tail[..tail.len() - 1].ends_with(|c: char| c.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use crate::rules::{lint_file, Rule};
    use crate::scanner::{FileInfo, PreparedFile};

    fn kv_lib() -> FileInfo {
        FileInfo {
            rel_path: "crates/kv/src/fixture.rs".into(),
            krate: "kv".into(),
            is_bin: false,
            is_test_file: false,
        }
    }

    fn info_for(krate: &str) -> FileInfo {
        FileInfo {
            rel_path: format!("crates/{krate}/src/fixture.rs"),
            krate: krate.into(),
            is_bin: false,
            is_test_file: false,
        }
    }

    fn rules_fired(info: &FileInfo, src: &str) -> Vec<(usize, Rule)> {
        lint_file(&PreparedFile::new(info.clone(), src))
            .into_iter()
            .map(|d| (d.line, d.rule))
            .collect()
    }

    #[test]
    fn unwrap_rule_fires_with_file_and_line() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let diags = lint_file(&PreparedFile::new(kv_lib(), src));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
        assert_eq!(diags[0].rule, Rule::Unwrap);
        assert_eq!(diags[0].path, "crates/kv/src/fixture.rs");
    }

    #[test]
    fn expect_fires_but_expect_err_does_not() {
        let src = "fn f(x: Result<u8, u8>) -> u8 {\n    x.expect(\"boom\")\n}\n\
                   fn g(x: Result<u8, u8>) -> u8 {\n    x.expect_err(\"fine\")\n}\n";
        assert_eq!(rules_fired(&kv_lib(), src), vec![(2, Rule::Unwrap)]);
    }

    #[test]
    fn user_expect_method_with_non_string_arg_does_not_fire() {
        // A hand-rolled parser's `self.expect(b'{') -> Result<...>` is not
        // `Option::expect`; only string-message expects are panic sites.
        let src = "fn f(p: &mut P) -> Result<(), String> {\n    p.expect(b'{')?;\n    \
                   p.expect(delim)\n}\n";
        assert!(rules_fired(&kv_lib(), src).is_empty());
        let format_msg =
            "fn f(x: Option<u8>, i: usize) -> u8 {\n    x.expect(&format!(\"no {i}\"))\n}\n";
        assert_eq!(rules_fired(&kv_lib(), format_msg), vec![(2, Rule::Unwrap)]);
    }

    #[test]
    fn unwrap_rule_now_covers_exec_and_obs() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        assert_eq!(rules_fired(&info_for("exec"), src), vec![(2, Rule::Unwrap)]);
        assert_eq!(rules_fired(&info_for("obs"), src), vec![(2, Rule::Unwrap)]);
        assert!(rules_fired(&info_for("geo"), src).is_empty());
    }

    #[test]
    fn cast_rule_fires_in_index_not_in_kv() {
        let src = "fn f(x: u64) -> u32 {\n    x as u32\n}\n";
        assert_eq!(rules_fired(&info_for("index"), src), vec![(2, Rule::Cast)]);
        assert!(rules_fired(&kv_lib(), src).is_empty());
    }

    #[test]
    fn float_eq_rule_fires_on_literal_comparison() {
        let src =
            "fn f(d: f64) -> bool {\n    d == 0.0\n}\nfn g(a: u32, b: u32) -> bool {\n    a == b\n}\n";
        assert_eq!(rules_fired(&info_for("geo"), src), vec![(2, Rule::FloatEq)]);
    }

    #[test]
    fn float_eq_ignores_match_arms_and_orderings() {
        let src = "fn f(d: f64) -> u8 {\n    if d <= 1.0 { 0 } else { 1 }\n}\n";
        assert!(rules_fired(&info_for("geo"), src).is_empty());
    }

    #[test]
    fn no_print_fires_in_lib_but_not_in_bench_or_bin() {
        let src = "fn f() {\n    println!(\"hi\");\n}\n";
        assert_eq!(rules_fired(&info_for("obs"), src), vec![(2, Rule::NoPrint)]);
        assert!(rules_fired(&info_for("bench"), src).is_empty());
        let bin = FileInfo {
            rel_path: "crates/kv/src/bin/tool.rs".into(),
            krate: "kv".into(),
            is_bin: true,
            is_test_file: false,
        };
        assert!(rules_fired(&bin, src).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_same_line_and_next_line() {
        let same = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // trass-lint: allow(unwrap)\n}\n";
        assert!(rules_fired(&kv_lib(), same).is_empty());
        let above = "fn f(x: Option<u8>) -> u8 {\n    // justified: trass-lint: allow(unwrap)\n    x.unwrap()\n}\n";
        assert!(rules_fired(&kv_lib(), above).is_empty());
        let wrong_rule =
            "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // trass-lint: allow(cast)\n}\n";
        assert_eq!(rules_fired(&kv_lib(), wrong_rule), vec![(2, Rule::Unwrap)]);
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                   Some(1).unwrap();\n    }\n}\n";
        assert!(rules_fired(&kv_lib(), src).is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        let src = "fn f() -> &'static str {\n    // calling .unwrap() here would be bad\n    \
                   \"x as u32 == 0.0 .unwrap()\"\n}\n";
        assert!(rules_fired(&kv_lib(), src).is_empty());
        assert!(rules_fired(&info_for("index"), src).is_empty());
    }

    #[test]
    fn raw_strings_and_chars_are_masked() {
        let src =
            "fn f() -> char {\n    let _s = r#\"x.unwrap()\"#;\n    let _t = 'a';\n    '\\n'\n}\n";
        assert!(rules_fired(&kv_lib(), src).is_empty());
    }

    #[test]
    fn doc_examples_inside_doc_comments_do_not_fire() {
        let src = "/// Example:\n/// ```\n/// let x = Some(1).unwrap();\n/// ```\npub fn f() {}\n";
        assert!(rules_fired(&kv_lib(), src).is_empty());
    }
}
