//! The project rule set.
//!
//! Per-file rules ([`lint_file`]) see one [`PreparedFile`] at a time and
//! fire on lines; cross-file analyses ([`lint_cross_file`]) see the whole
//! prepared workspace (plus the docs/CI text the drift analysis
//! cross-references) and fire on global properties — lock-graph cycles,
//! knob/metric drift. Adding a rule means: a variant here (name +
//! `applies_to` scope), a check in the matching module, fixture tests in
//! that module, and a row in the README/DESIGN rule tables.

pub mod drift;
pub mod lock_io;
pub mod lock_order;
pub mod panic_surface;
pub mod pub_doc;
pub mod tokens;

use crate::report::Diagnostic;
use crate::scanner::PreparedFile;

/// The project rules, in reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `.unwrap()` / `.expect(` in library code.
    Unwrap,
    /// Bare `as` numeric casts.
    Cast,
    /// `==` / `!=` against float literals.
    FloatEq,
    /// Lock guard live across blocking calls (I/O, scans, pool fan-out,
    /// channel recv, joins).
    LockAcrossIo,
    /// `pub fn` without a doc comment.
    PubDoc,
    /// `println!` / `eprintln!` in library code.
    NoPrint,
    /// `assert!`, range-slice indexing, and integer `/`-`%` by non-literal
    /// divisors in library code.
    PanicSurface,
    /// Inconsistent global lock-acquisition order (cycle in the workspace
    /// lock graph) or re-entrant acquisition of one lock.
    LockOrder,
    /// Config-knob / metric-name drift between code, docs, tests, and CI.
    Drift,
}

/// Every rule, in reporting order (drives `--help` and the JSON header).
pub const ALL_RULES: [Rule; 9] = [
    Rule::Unwrap,
    Rule::Cast,
    Rule::FloatEq,
    Rule::LockAcrossIo,
    Rule::PubDoc,
    Rule::NoPrint,
    Rule::PanicSurface,
    Rule::LockOrder,
    Rule::Drift,
];

impl Rule {
    /// The name used in diagnostics and `allow(...)` comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Unwrap => "unwrap",
            Rule::Cast => "cast",
            Rule::FloatEq => "float-eq",
            Rule::LockAcrossIo => "lock-across-io",
            Rule::PubDoc => "pub-doc",
            Rule::NoPrint => "no-print",
            Rule::PanicSurface => "panic-surface",
            Rule::LockOrder => "lock-order",
            Rule::Drift => "drift",
        }
    }

    /// Parses a rule name (as used in `allow(...)` comments).
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// Does this rule apply to library (non-bin, non-test) code of `krate`?
    pub fn applies_to(self, krate: &str) -> bool {
        match self {
            Rule::Unwrap => matches!(krate, "kv" | "core" | "index" | "exec" | "obs" | "server"),
            Rule::Cast => matches!(krate, "index" | "geo"),
            Rule::FloatEq => matches!(krate, "geo" | "traj"),
            Rule::LockAcrossIo => matches!(krate, "kv" | "exec" | "obs" | "core" | "server"),
            Rule::PubDoc => matches!(krate, "geo" | "index" | "core"),
            Rule::NoPrint => krate != "bench",
            Rule::PanicSurface => {
                matches!(krate, "kv" | "core" | "index" | "exec" | "obs" | "server")
            }
            // Cross-file rules scope themselves (they are not line rules).
            Rule::LockOrder => matches!(krate, "kv" | "exec" | "obs" | "core" | "server"),
            Rule::Drift => krate != "lint",
        }
    }
}

/// Lints one file's source, returning its (unsuppressed) per-file findings.
pub fn lint_file(file: &PreparedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let info = &file.info;
    let prep = &file.prep;
    let in_scope =
        |rule: Rule| -> bool { rule.applies_to(&info.krate) && !info.is_bin && !info.is_test_file };

    if in_scope(Rule::Unwrap)
        || in_scope(Rule::Cast)
        || in_scope(Rule::FloatEq)
        || in_scope(Rule::NoPrint)
        || in_scope(Rule::PanicSurface)
    {
        tokens::check(info, prep, &in_scope, &mut out);
    }
    if in_scope(Rule::PubDoc) {
        pub_doc::check(info, prep, &mut out);
    }
    if in_scope(Rule::LockAcrossIo) {
        lock_io::check(info, prep, &mut out);
    }
    out
}

/// Runs the cross-file analyses over the prepared workspace. `docs` carries
/// the non-Rust text the drift analysis cross-references (README, DESIGN,
/// CI workflows).
pub fn lint_cross_file(files: &[PreparedFile], docs: &drift::DocSet) -> Vec<Diagnostic> {
    let mut out = lock_order::check(files);
    out.extend(drift::check(files, docs));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip() {
        for rule in ALL_RULES {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("no-such-rule"), None);
    }

    #[test]
    fn new_rules_scope_to_the_concurrent_crates() {
        for krate in ["kv", "exec", "obs", "core", "server"] {
            assert!(Rule::LockOrder.applies_to(krate), "{krate}");
            assert!(Rule::LockAcrossIo.applies_to(krate), "{krate}");
        }
        assert!(!Rule::LockOrder.applies_to("geo"));
        assert!(Rule::PanicSurface.applies_to("kv"));
        assert!(Rule::PanicSurface.applies_to("server"));
        assert!(Rule::Unwrap.applies_to("server"));
        assert!(!Rule::PanicSurface.applies_to("traj"));
        assert!(!Rule::Drift.applies_to("lint"));
    }
}
