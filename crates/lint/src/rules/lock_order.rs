//! `lock-order`: global lock-acquisition-order analysis.
//!
//! Phase 1 collects every named `Mutex`/`RwLock` declaration (struct
//! fields and statics) in the concurrent crates; a lock's identity is
//! `crate::file_stem.field`, which keeps same-named fields in different
//! modules distinct. Phase 2 walks each function's masked lines with the
//! same guard-liveness model as `lock-across-io` and records an edge
//! `A -> B` whenever lock `B` is acquired while a guard of `A` is live,
//! remembering both acquisition sites. Phase 3 reports:
//!
//! * re-entrant acquisition (`A` acquired while `A` is already held) —
//!   a guaranteed self-deadlock with `std::sync` primitives;
//! * cycles in the global edge graph — two threads taking the locks in
//!   opposite orders can each hold one and wait forever on the other.
//!
//! Acquisition receivers resolve conservatively: a `x.lock()` receiver
//! must match a declared lock field in the same file, or be unique across
//! the crate; ambiguous or unknown receivers are skipped rather than
//! guessed, so every finding names two concrete source sites.

use super::Rule;
use crate::report::Diagnostic;
use crate::rules::lock_io::guard_binding;
use crate::scanner::{is_ident_byte, PreparedFile};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One named lock declaration.
struct Decl {
    /// `crate::file_stem.field`
    node: String,
    file_idx: usize,
    krate: String,
    field: String,
}

/// Both sites of one ordered acquisition `from -> to`.
#[derive(Clone)]
struct EdgeSites {
    from_path: String,
    from_line: usize,
    to_path: String,
    to_line: usize,
}

/// Runs the analysis over the prepared workspace.
pub fn check(files: &[PreparedFile]) -> Vec<Diagnostic> {
    let in_scope = |i: usize| -> bool {
        let info = &files[i].info;
        Rule::LockOrder.applies_to(&info.krate) && !info.is_bin && !info.is_test_file
    };

    // Phase 1: lock declarations.
    let mut decls: Vec<Decl> = Vec::new();
    for (i, f) in files.iter().enumerate() {
        if !in_scope(i) {
            continue;
        }
        for (idx, masked) in f.prep.masked_lines.iter().enumerate() {
            if f.prep.is_test_line(idx + 1) {
                continue;
            }
            if let Some(field) = decl_field(masked) {
                decls.push(Decl {
                    node: format!("{}::{}.{}", f.info.krate, f.info.file_stem(), field),
                    file_idx: i,
                    krate: f.info.krate.clone(),
                    field,
                });
            }
        }
    }
    // Resolution tables: same-file first, then unique-in-crate.
    let mut by_file: BTreeMap<(usize, &str), &str> = BTreeMap::new();
    let mut by_crate: BTreeMap<(&str, &str), Vec<&str>> = BTreeMap::new();
    for d in &decls {
        by_file.entry((d.file_idx, &d.field)).or_insert(&d.node);
        by_crate.entry((&d.krate, &d.field)).or_default().push(&d.node);
    }
    let resolve = |file_idx: usize, receiver: &str| -> Option<String> {
        if let Some(node) = by_file.get(&(file_idx, receiver)) {
            return Some((*node).to_string());
        }
        let krate = files[file_idx].info.krate.as_str();
        match by_crate.get(&(krate, receiver)).map(Vec::as_slice) {
            Some([only]) => Some((*only).to_string()),
            _ => None, // unknown or ambiguous: skip, never guess
        }
    };

    // Phase 2: per-function acquisition sequences -> global edges.
    struct Guard {
        name: String,
        node: String,
        depth: usize,
        line: usize,
    }
    let mut out = Vec::new();
    let mut edges: BTreeMap<(String, String), EdgeSites> = BTreeMap::new();
    for (i, f) in files.iter().enumerate() {
        if !in_scope(i) {
            continue;
        }
        let path = &f.info.rel_path;
        let mut depth = 0usize;
        let mut guards: Vec<Guard> = Vec::new();
        for (idx, masked) in f.prep.masked_lines.iter().enumerate() {
            let line = idx + 1;
            if !f.prep.is_test_line(line) {
                let allowed = f.prep.is_allowed(line, Rule::LockOrder);
                let mut first_node: Option<String> = None;
                for (_, receiver) in acquisitions(masked) {
                    let Some(node) = resolve(i, receiver) else { continue };
                    if !allowed {
                        for g in &guards {
                            if g.node == node {
                                out.push(Diagnostic {
                                    path: path.clone(),
                                    line,
                                    rule: Rule::LockOrder,
                                    message: format!(
                                        "lock `{node}` re-acquired while already held (guard \
                                         `{}` since line {}); std sync locks self-deadlock here",
                                        g.name, g.line
                                    ),
                                });
                            } else {
                                edges.entry((g.node.clone(), node.clone())).or_insert_with(|| {
                                    EdgeSites {
                                        from_path: path.clone(),
                                        from_line: g.line,
                                        to_path: path.clone(),
                                        to_line: line,
                                    }
                                });
                            }
                        }
                    }
                    if first_node.is_none() {
                        first_node = Some(node);
                    }
                }
                // A `let g = ....lock()` binding keeps the first resolved
                // acquisition live; transient acquisitions end with the
                // statement.
                if let (Some(node), Some(name)) = (first_node, guard_binding(masked)) {
                    guards.push(Guard { name: name.to_string(), node, depth, line });
                }
                guards.retain(|g| !masked.contains(&format!("drop({})", g.name)));
            }
            for c in masked.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth = depth.saturating_sub(1);
                        guards.retain(|g| g.depth <= depth);
                    }
                    _ => {}
                }
            }
        }
    }

    // Phase 3: cycles. For every edge A -> B where B can reach A, the pair
    // participates in a cycle; report each unordered pair once.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            if n == to {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = adj.get(n) {
                    queue.extend(next.iter().copied());
                }
            }
        }
        false
    };
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for ((a, b), sites) in &edges {
        if !reaches(b, a) {
            continue;
        }
        let canon = if a <= b { (a.clone(), b.clone()) } else { (b.clone(), a.clone()) };
        if !reported.insert(canon) {
            continue;
        }
        let reverse = match edges.get(&(b.clone(), a.clone())) {
            Some(r) => {
                format!("but `{b}` is held while `{a}` is acquired at {}:{}", r.to_path, r.to_line)
            }
            None => format!("but `{b}` reaches `{a}` through intermediate locks"),
        };
        out.push(Diagnostic {
            path: sites.to_path.clone(),
            line: sites.to_line,
            rule: Rule::LockOrder,
            message: format!(
                "lock-order cycle: `{a}` (held since {}:{}) is held while `{b}` is \
                 acquired, {reverse}; acquire these locks in one global order",
                sites.from_path, sites.from_line
            ),
        });
    }
    out
}

/// Extracts the field name from a `name: [path::]Mutex<...>` /
/// `name: [path::]RwLock<...>` field or static declaration line.
fn decl_field(masked: &str) -> Option<String> {
    let m = masked.find("Mutex<").or_else(|| masked.find("RwLock<"))?;
    let t = masked.trim_start();
    // Locals, signatures, and return types are not shared named locks.
    if t.starts_with("let ") || masked.contains("fn ") || masked.contains("->") {
        return None;
    }
    // First single `:` left of the type (skipping `::` path separators).
    let bytes = masked.as_bytes();
    let mut colon = None;
    let mut i = 0;
    while i < m {
        if bytes[i] == b':' {
            if bytes.get(i + 1) == Some(&b':') {
                i += 2;
                continue;
            }
            colon = Some(i);
            break;
        }
        i += 1;
    }
    let colon = colon?;
    let mut end = colon;
    while end > 0 && bytes[end - 1] == b' ' {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    if start == end {
        return None;
    }
    Some(masked[start..end].to_string())
}

/// All `(position, receiver)` lock acquisitions on a masked line:
/// `.lock()`, `.try_lock()`, and zero-arg `.read()`/`.write()` (the
/// zero-arg form distinguishes `RwLock` from `io::Read`/`io::Write`,
/// which take buffers).
fn acquisitions(masked: &str) -> Vec<(usize, &str)> {
    const PATTERNS: [&str; 6] =
        [".lock()", ".try_lock()", ".read()", ".try_read()", ".write()", ".try_write()"];
    let mut found = Vec::new();
    for pat in PATTERNS {
        let mut from = 0;
        while let Some(off) = masked[from..].find(pat) {
            let at = from + off;
            if let Some(receiver) = receiver_before(masked, at) {
                found.push((at, receiver));
            }
            from = at + pat.len();
        }
    }
    found.sort_by_key(|(pos, _)| *pos);
    found.dedup_by_key(|(pos, _)| *pos);
    found
}

/// The identifier ending at byte `dot` (exclusive), skipping one or more
/// trailing `[...]` index groups: `self.slots[i]` -> `slots`.
fn receiver_before(masked: &str, dot: usize) -> Option<&str> {
    let bytes = masked.as_bytes();
    let mut end = dot;
    while end > 0 && bytes[end - 1] == b']' {
        let mut depth = 1usize;
        let mut m = end - 1;
        while m > 0 && depth > 0 {
            m -= 1;
            match bytes[m] {
                b']' => depth += 1,
                b'[' => depth -= 1,
                _ => {}
            }
        }
        if depth != 0 {
            return None;
        }
        end = m;
    }
    let mut start = end;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    if start == end {
        return None;
    }
    masked.get(start..end)
}

#[cfg(test)]
mod tests {
    use super::check;
    use crate::rules::Rule;
    use crate::scanner::{FileInfo, PreparedFile};

    fn pf(path: &str, krate: &str, src: &str) -> PreparedFile {
        PreparedFile::new(
            FileInfo {
                rel_path: path.into(),
                krate: krate.into(),
                is_bin: false,
                is_test_file: false,
            },
            src,
        )
    }

    const DECLS: &str =
        "struct S {\n    a: std::sync::Mutex<u8>,\n    b: std::sync::Mutex<u8>,\n}\n";

    #[test]
    fn two_function_opposite_order_cycle_fires_with_both_sites() {
        let src = format!(
            "{DECLS}impl S {{\n    fn one(&self) {{\n        let ga = self.a.lock();\n        \
             let gb = self.b.lock();\n        drop(gb);\n        drop(ga);\n    }}\n    \
             fn two(&self) {{\n        let gb = self.b.lock();\n        let ga = self.a.lock();\n        \
             drop(ga);\n        drop(gb);\n    }}\n}}\n"
        );
        let diags = check(&[pf("crates/kv/src/locks.rs", "kv", &src)]);
        assert_eq!(diags.len(), 1, "one cycle, reported once: {diags:?}");
        let d = &diags[0];
        assert_eq!(d.rule, Rule::LockOrder);
        assert!(d.message.contains("kv::locks.a") && d.message.contains("kv::locks.b"));
        assert!(
            d.message.contains("crates/kv/src/locks.rs:"),
            "both acquisition sites are cited: {}",
            d.message
        );
    }

    #[test]
    fn consistent_global_order_is_clean() {
        let src = format!(
            "{DECLS}impl S {{\n    fn one(&self) {{\n        let ga = self.a.lock();\n        \
             let gb = self.b.lock();\n        drop(gb);\n        drop(ga);\n    }}\n    \
             fn two(&self) {{\n        let ga = self.a.lock();\n        let gb = self.b.lock();\n        \
             drop(gb);\n        drop(ga);\n    }}\n}}\n"
        );
        assert!(check(&[pf("crates/kv/src/locks.rs", "kv", &src)]).is_empty());
    }

    #[test]
    fn cross_file_cycle_is_detected() {
        let one = format!(
            "{DECLS}impl S {{\n    fn one(&self) {{\n        let ga = self.a.lock();\n        \
             self.b.lock().clear();\n        drop(ga);\n    }}\n}}\n"
        );
        // The other file references the same (unique-in-crate) fields.
        let two = "fn two(s: &super::locks::S) {\n    let gb = s.b.lock();\n    \
                   s.a.lock().clear();\n    drop(gb);\n}\n";
        let diags = check(&[
            pf("crates/kv/src/locks.rs", "kv", &one),
            pf("crates/kv/src/other.rs", "kv", two),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("lock-order cycle"));
    }

    #[test]
    fn reentrant_acquisition_fires() {
        let src = format!(
            "{DECLS}impl S {{\n    fn one(&self) {{\n        let ga = self.a.lock();\n        \
             let gb = self.a.lock();\n        drop(gb);\n        drop(ga);\n    }}\n}}\n"
        );
        let diags = check(&[pf("crates/kv/src/locks.rs", "kv", &src)]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("re-acquired"), "{}", diags[0].message);
        assert_eq!(diags[0].line, 8, "fires at the second acquisition");
    }

    #[test]
    fn guard_scope_close_releases_and_allow_suppresses() {
        let scoped = format!(
            "{DECLS}impl S {{\n    fn one(&self) {{\n        {{\n            \
             let ga = self.a.lock();\n        }}\n        let ga = self.a.lock();\n        \
             drop(ga);\n    }}\n}}\n"
        );
        assert!(check(&[pf("crates/kv/src/locks.rs", "kv", &scoped)]).is_empty());
        let allowed = format!(
            "{DECLS}impl S {{\n    fn one(&self) {{\n        let ga = self.a.lock();\n        \
             // recursion is bounded here: trass-lint: allow(lock-order)\n        \
             let gb = self.a.lock();\n        drop(gb);\n        drop(ga);\n    }}\n}}\n"
        );
        assert!(check(&[pf("crates/kv/src/locks.rs", "kv", &allowed)]).is_empty());
    }

    #[test]
    fn unknown_and_ambiguous_receivers_are_skipped() {
        // Same field name declared in two files of the crate: an acquisition
        // in a third file is ambiguous and must not guess.
        let d1 = "struct A {\n    inner: std::sync::Mutex<u8>,\n}\n";
        let d2 = "struct B {\n    inner: std::sync::Mutex<u8>,\n}\n";
        let user = "fn f(x: &X, m: &M) {\n    let g = x.inner.lock();\n    \
                    m.mystery.lock().clear();\n    drop(g);\n}\n";
        let diags = check(&[
            pf("crates/kv/src/a.rs", "kv", d1),
            pf("crates/kv/src/b.rs", "kv", d2),
            pf("crates/kv/src/c.rs", "kv", user),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn rwlock_read_write_and_indexed_receivers_resolve() {
        let src = "struct P {\n    table: std::sync::RwLock<u8>,\n    \
                   slots: Vec<std::sync::Mutex<u8>>,\n}\nimpl P {\n    fn f(&self, i: usize) {\n        \
                   let t = self.table.read();\n        let s = self.slots[i].lock();\n        \
                   drop(s);\n        drop(t);\n    }\n    fn g(&self, i: usize) {\n        \
                   let s = self.slots[i].lock();\n        let t = self.table.write();\n        \
                   drop(t);\n        drop(s);\n    }\n}\n";
        let diags = check(&[pf("crates/exec/src/pool.rs", "exec", src)]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("exec::pool.table"));
        assert!(diags[0].message.contains("exec::pool.slots"));
    }
}
