//! `panic-surface`: constructs that can panic at runtime in library code.
//!
//! Three shapes beyond the `unwrap` rule's `.unwrap()`/`.expect(`:
//!
//! 1. `assert!` / `assert_eq!` / `assert_ne!` outside test code — release
//!    builds keep these, so a bad invariant takes the whole query path
//!    down instead of returning an error. `debug_assert*` is exempt.
//! 2. Range-slice indexing `&buf[a..b]` — out-of-range bounds panic;
//!    `.get(a..b)` returns an `Option` instead.
//! 3. Integer `/` or `%` with a non-literal divisor — divide-by-zero
//!    panics. Literal divisors are provably non-zero at review time;
//!    lines in float context (`f32`/`f64`/float literals) never panic.
//!
//! All checks are per-line on masked text; `tokens::check` applies scope,
//! test exemption, and allows.

use crate::scanner::is_ident_byte;

/// Returns one message per panic-surface construct on this masked line.
pub fn check_line(masked: &str) -> Vec<String> {
    let mut out = Vec::new();
    if let Some(mac) = bare_assert(masked) {
        out.push(format!(
            "`{mac}` in library code; return an error or use `debug_assert!` for \
             debug-only invariants"
        ));
    }
    if range_slice_index(masked) {
        out.push(
            "range-slice indexing can panic on out-of-range bounds; use `.get(a..b)` \
             or justify with an allow"
                .into(),
        );
    }
    if let Some(op) = int_div_non_literal(masked) {
        out.push(format!(
            "integer `{op}` with a non-literal divisor can panic on zero; use \
             `checked_{}` or justify with an allow",
            if op == '/' { "div" } else { "rem" }
        ));
    }
    out
}

/// Finds a non-debug `assert!`-family macro call.
fn bare_assert(masked: &str) -> Option<&'static str> {
    for mac in ["assert!", "assert_eq!", "assert_ne!"] {
        let mut from = 0;
        while let Some(off) = masked[from..].find(mac) {
            let at = from + off;
            // Word boundary on the left rejects `debug_assert!` and any
            // `my_assert!` helper.
            let bounded = at == 0 || !is_ident_byte(masked.as_bytes()[at - 1]);
            if bounded {
                return Some(mac);
            }
            from = at + mac.len();
        }
    }
    None
}

/// Keywords that can directly precede a `[` without it being an index
/// expression (slice patterns, array types in turbofish-free positions).
const NON_INDEX_PREFIX: [&str; 7] = ["let", "in", "ref", "mut", "as", "else", "return"];

/// Detects `expr[..contains range..]` indexing: a `[` whose preceding token
/// is an indexable expression tail (identifier, `)`, `]`) and whose bracket
/// body contains `..` with at least one bound (`[..]` cannot panic).
fn range_slice_index(masked: &str) -> bool {
    let bytes = masked.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        // Preceding non-space byte decides whether this is indexing.
        let mut j = i;
        let mut prev = None;
        while j > 0 {
            j -= 1;
            if bytes[j] != b' ' {
                prev = Some((j, bytes[j]));
                break;
            }
        }
        let Some((pj, pb)) = prev else { continue };
        if pb == b')' || pb == b']' {
            // fall through: call/index result being sliced
        } else if is_ident_byte(pb) {
            // Walk the identifier back; keywords mean pattern/type position.
            let mut s = pj;
            while s > 0 && is_ident_byte(bytes[s - 1]) {
                s -= 1;
            }
            let word = &masked[s..=pj];
            if NON_INDEX_PREFIX.contains(&word) {
                continue;
            }
        } else {
            continue;
        }
        // Find the matching close bracket on this line.
        let mut depth = 1usize;
        let mut k = i + 1;
        while k < bytes.len() {
            match bytes[k] {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let Some(inner) = masked.get(i + 1..k.min(masked.len())) else { continue };
        let inner = inner.trim();
        if inner.contains("..") && inner != ".." {
            return true;
        }
    }
    false
}

/// Detects integer `/` or `%` (including `/=`, `%=`) whose divisor is not a
/// numeric literal. Lines in float context are skipped entirely.
fn int_div_non_literal(masked: &str) -> Option<char> {
    if masked.contains("f64") || masked.contains("f32") || has_float_literal(masked) {
        return None;
    }
    let bytes = masked.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        let op = match b {
            b'/' => '/',
            b'%' => '%',
            _ => continue,
        };
        // Defensive: skip `//`, `*/`, `/*` runs (masked text should not
        // contain comments, but stay safe on pathological input).
        if op == '/' {
            let neighbor = |j: Option<&u8>| matches!(j, Some(b'/') | Some(b'*'));
            if neighbor(bytes.get(i + 1)) || (i > 0 && neighbor(bytes.get(i - 1))) {
                continue;
            }
        }
        let mut j = i + 1;
        if bytes.get(j) == Some(&b'=') {
            j += 1; // `/=` / `%=` compound assignment
        }
        while bytes.get(j) == Some(&b' ') {
            j += 1;
        }
        match bytes.get(j) {
            Some(c) if c.is_ascii_digit() => continue, // literal divisor
            Some(c) if is_ident_byte(*c) || matches!(*c, b'(' | b'*' | b'&') => return Some(op),
            _ => continue,
        }
    }
    None
}

/// Whether the line contains a `1.5`-style float literal.
fn has_float_literal(s: &str) -> bool {
    let b = s.as_bytes();
    (1..b.len()).any(|i| {
        b[i] == b'.'
            && b[i - 1].is_ascii_digit()
            && b.get(i + 1).map(u8::is_ascii_digit) == Some(true)
    })
}

#[cfg(test)]
mod tests {
    use crate::rules::{lint_file, Rule};
    use crate::scanner::{FileInfo, PreparedFile};

    fn info_for(krate: &str) -> FileInfo {
        FileInfo {
            rel_path: format!("crates/{krate}/src/fixture.rs"),
            krate: krate.into(),
            is_bin: false,
            is_test_file: false,
        }
    }

    fn fired(krate: &str, src: &str) -> Vec<(usize, Rule)> {
        lint_file(&PreparedFile::new(info_for(krate), src))
            .into_iter()
            .map(|d| (d.line, d.rule))
            .collect()
    }

    #[test]
    fn assert_macros_fire_in_lib_code() {
        let src = "fn f(x: u8) {\n    assert!(x > 0);\n    assert_eq!(x, 1);\n    \
                   debug_assert!(x < 9);\n}\n";
        assert_eq!(
            fired("kv", src),
            vec![(2, Rule::PanicSurface), (3, Rule::PanicSurface)],
            "assert! and assert_eq! fire; debug_assert! is exempt"
        );
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn t() {\n        assert!(true);\n    }\n}\n";
        assert!(fired("kv", test_src).is_empty());
    }

    #[test]
    fn range_slice_indexing_fires_but_get_and_patterns_do_not() {
        let slice = "fn f(b: &[u8], n: usize) -> &[u8] {\n    &b[1..n]\n}\n";
        assert_eq!(fired("core", slice), vec![(2, Rule::PanicSurface)]);
        let get = "fn f(b: &[u8], n: usize) -> Option<&[u8]> {\n    b.get(1..n)\n}\n";
        assert!(fired("core", get).is_empty());
        let full = "fn f(b: &[u8]) -> &[u8] {\n    &b[..]\n}\n";
        assert!(fired("core", full).is_empty(), "full-range slice cannot panic");
        let pattern = "fn f(b: &[u8; 4]) -> u8 {\n    let [first, ..] = *b;\n    first\n}\n";
        assert!(fired("core", pattern).is_empty(), "slice pattern is not indexing");
    }

    #[test]
    fn plain_single_element_indexing_is_not_flagged() {
        // Only *range* slicing is in scope for this rule; plain `b[i]`
        // stays legal (flagging it would drown the signal).
        let src = "fn f(b: &[u8], i: usize) -> u8 {\n    b[i]\n}\n";
        assert!(fired("core", src).is_empty());
    }

    #[test]
    fn integer_division_by_non_literal_fires_and_float_context_is_exempt() {
        let int_div = "fn f(a: u64, n: u64) -> u64 {\n    a / n\n}\n";
        assert_eq!(fired("index", int_div), vec![(2, Rule::PanicSurface)]);
        let int_rem = "fn f(a: u64, n: u64) -> u64 {\n    a % n\n}\n";
        assert_eq!(fired("index", int_rem), vec![(2, Rule::PanicSurface)]);
        let lit_div = "fn f(a: u64) -> u64 {\n    a / 2\n}\n";
        assert!(fired("index", lit_div).is_empty());
        // Float context is judged per line: the divisor line must carry
        // the `f64`/`f32`/float-literal marker itself.
        let float = "fn f(a: u64, n: u64) -> f64 {\n    a as f64 / n as f64\n}\n";
        assert!(fired("exec", float).is_empty(), "f64 context cannot panic");
        let float_lit = "fn f(a: u64) -> u64 {\n    ((a as u64) * 3) / 4\n}\n";
        assert!(fired("exec", float_lit).is_empty(), "literal divisor stays legal");
    }

    #[test]
    fn allow_comment_suppresses_panic_surface() {
        let src = "fn f(a: u64, n: u64) -> u64 {\n    \
                   a % n // trass-lint: allow(panic-surface)\n}\n";
        assert!(fired("kv", src).is_empty());
    }
}
