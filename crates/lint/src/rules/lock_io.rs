//! `lock-across-io`: a lock guard must not stay live across a blocking
//! call — file I/O, a region scan, worker-pool fan-out, a thread join, or
//! a channel receive. Holding a shard lock over any of these serializes
//! every other thread touching that lock for the blocking call's whole
//! duration, which is exactly the tail-latency failure mode the paper's
//! multi-stage pipeline is built to avoid.
//!
//! Heuristic block-scope analysis: a `let guard = ....lock()/.read()/.write()`
//! binding is live until its enclosing block closes or it is `drop`ped;
//! any blocking marker inside that window fires. A marker call that takes
//! the guard itself as an argument (e.g. `Condvar::wait(guard)`) consumes
//! or releases the guard and is exempt.

use super::Rule;
use crate::report::Diagnostic;
use crate::scanner::{FileInfo, Prepared};

/// Calls that do file I/O or long scans.
const IO_MARKERS: [&str; 14] = [
    "std::fs::",
    "fs::write",
    "fs::read",
    "fs::rename",
    "fs::remove_file",
    "File::open",
    "OpenOptions",
    "::create(",
    "sync_data",
    "sync_all",
    "read_exact",
    "read_to_end",
    "write_all(",
    ".scan(",
];

/// Calls that block on other threads: scoped fan-out (a `ScopedPool::run`
/// joins every worker before returning), explicit joins, channel receives,
/// condvar waits, and sleeps.
const BLOCKING_MARKERS: [&str; 8] = [
    "thread::scope(",
    ".join()",
    ".recv()",
    ".recv_timeout(",
    ".wait(",
    ".wait_timeout(",
    ".run(",
    ".run_timed(",
];

/// Runs the analysis over one file.
pub fn check(info: &FileInfo, prep: &Prepared, out: &mut Vec<Diagnostic>) {
    struct Guard {
        name: String,
        depth: usize,
        line: usize,
    }
    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    for (idx, masked) in prep.masked_lines.iter().enumerate() {
        let line = idx + 1;
        let is_test = prep.is_test_line(line);

        // Markers first: a guard bound on this same line (e.g. a match
        // on `.read()` + I/O in one statement) still counts as held.
        if !is_test {
            'marker: for marker in IO_MARKERS.iter().chain(BLOCKING_MARKERS.iter()) {
                if masked.contains(marker) {
                    // Earliest still-live guard bound on an earlier line.
                    let Some(g) = guards.iter().find(|g| g.line < line) else { continue };
                    // A call consuming the guard (Condvar::wait(guard),
                    // drop-and-rebind patterns) releases it — skip.
                    if call_mentions(masked, marker, &g.name) {
                        continue 'marker;
                    }
                    if !prep.is_allowed(line, Rule::LockAcrossIo) {
                        out.push(Diagnostic {
                            path: info.rel_path.clone(),
                            line,
                            rule: Rule::LockAcrossIo,
                            message: format!(
                                "`{marker}` while lock guard `{}` (bound line {}) is live; \
                                 drop the guard first or justify with an allow",
                                g.name, g.line
                            ),
                        });
                    }
                    break 'marker;
                }
            }
        }

        // New guard binding?
        if !is_test {
            if let Some(name) = guard_binding(masked) {
                guards.push(Guard { name: name.to_string(), depth, line });
            }
        }

        // Explicit drops release the guard.
        guards.retain(|g| !masked.contains(&format!("drop({})", g.name)));

        for c in masked.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.depth <= depth);
                }
                _ => {}
            }
        }
    }
}

/// Whether the marker call on this line takes `guard` as an argument
/// (which means the callee consumes or releases it).
fn call_mentions(masked: &str, marker: &str, guard: &str) -> bool {
    let Some(pos) = masked.find(marker) else { return false };
    let rest = &masked[pos..];
    // Look for the bare identifier inside the remainder of the statement.
    let bytes = rest.as_bytes();
    let needle = guard.as_bytes();
    let mut i = 0;
    while i + needle.len() <= bytes.len() {
        if &bytes[i..i + needle.len()] == needle {
            let before_ok = i == 0 || !crate::scanner::is_ident_byte(bytes[i - 1]);
            let after = i + needle.len();
            let after_ok = after >= bytes.len() || !crate::scanner::is_ident_byte(bytes[after]);
            if before_ok && after_ok {
                return true;
            }
        }
        i += 1;
    }
    false
}

/// Extracts the bound name from `let [mut] <name> = <expr>.lock()/.read()/.write()`.
pub fn guard_binding(masked: &str) -> Option<&str> {
    let has_acquire = [".lock()", ".read()", ".write()", ".try_lock()", ".try_read()"]
        .iter()
        .any(|p| masked.contains(p));
    if !has_acquire {
        return None;
    }
    let t = masked.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let end = rest.find(|c: char| !c.is_ascii_alphanumeric() && c != '_')?;
    let name = &rest[..end];
    if name.is_empty() || name == "_" {
        None
    } else {
        Some(name)
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::{lint_file, Rule};
    use crate::scanner::{FileInfo, PreparedFile};

    fn kv_lib() -> FileInfo {
        FileInfo {
            rel_path: "crates/kv/src/fixture.rs".into(),
            krate: "kv".into(),
            is_bin: false,
            is_test_file: false,
        }
    }

    fn info_for(krate: &str) -> FileInfo {
        FileInfo {
            rel_path: format!("crates/{krate}/src/fixture.rs"),
            krate: krate.into(),
            is_bin: false,
            is_test_file: false,
        }
    }

    fn rules_fired(info: &FileInfo, src: &str) -> Vec<(usize, Rule)> {
        lint_file(&PreparedFile::new(info.clone(), src))
            .into_iter()
            .map(|d| (d.line, d.rule))
            .collect()
    }

    #[test]
    fn lock_across_io_fires_on_guard_held_over_fs_call() {
        let src = "fn f(m: &std::sync::Mutex<u8>) {\n    let guard = m.lock();\n    \
                   let _ = std::fs::read(\"x\");\n    drop(guard);\n}\n";
        assert_eq!(rules_fired(&kv_lib(), src), vec![(3, Rule::LockAcrossIo)]);
    }

    #[test]
    fn lock_across_io_respects_drop_and_scope() {
        let dropped = "fn f(m: &std::sync::Mutex<u8>) {\n    let guard = m.lock();\n    \
                       drop(guard);\n    let _ = std::fs::read(\"x\");\n}\n";
        assert!(rules_fired(&kv_lib(), dropped).is_empty());
        let scoped =
            "fn f(m: &std::sync::Mutex<u8>) {\n    {\n        let guard = m.lock();\n    }\n    \
                      let _ = std::fs::read(\"x\");\n}\n";
        assert!(rules_fired(&kv_lib(), scoped).is_empty());
    }

    #[test]
    fn guard_across_pool_run_and_recv_fires_in_every_lock_crate() {
        let pool = "fn f(m: &std::sync::Mutex<u8>, pool: &Pool) {\n    let g = m.lock();\n    \
                    pool.run(items, work);\n    drop(g);\n}\n";
        for krate in ["kv", "exec", "obs", "core"] {
            assert_eq!(
                rules_fired(&info_for(krate), pool),
                vec![(3, Rule::LockAcrossIo)],
                "{krate}"
            );
        }
        let recv =
            "fn f(m: &std::sync::Mutex<u8>, rx: &Receiver<u8>) {\n    let g = m.lock();\n    \
                    let _ = rx.recv();\n    drop(g);\n}\n";
        assert_eq!(rules_fired(&info_for("core"), recv), vec![(3, Rule::LockAcrossIo)]);
        let join = "fn f(m: &std::sync::Mutex<u8>, h: Handle) {\n    let g = m.lock();\n    \
                    h.join();\n    drop(g);\n}\n";
        assert_eq!(rules_fired(&info_for("obs"), join), vec![(3, Rule::LockAcrossIo)]);
    }

    #[test]
    fn condvar_wait_consuming_the_guard_is_exempt() {
        // The canonical condvar loop: wait() releases the mutex while
        // blocked — flagging it would outlaw condvars entirely.
        let src =
            "fn f(pair: &(Mutex<bool>, Condvar)) {\n    let mut stopped = pair.0.lock();\n    \
                   let r = pair.1.wait_timeout(stopped, d);\n}\n";
        assert!(rules_fired(&info_for("obs"), src).is_empty());
    }

    #[test]
    fn thread_scope_under_live_guard_fires() {
        let src = "fn f(m: &std::sync::Mutex<u8>) {\n    let g = m.lock();\n    \
                   std::thread::scope(|s| {});\n    drop(g);\n}\n";
        assert_eq!(rules_fired(&info_for("exec"), src), vec![(3, Rule::LockAcrossIo)]);
    }
}
