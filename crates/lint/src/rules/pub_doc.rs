//! `pub-doc`: every `pub fn` (not `pub(crate)`) must carry a doc comment.

use super::Rule;
use crate::report::Diagnostic;
use crate::scanner::{FileInfo, Prepared};

/// Checks the file, looking upward past attributes for a doc comment.
pub fn check(info: &FileInfo, prep: &Prepared, out: &mut Vec<Diagnostic>) {
    for (idx, masked) in prep.masked_lines.iter().enumerate() {
        let line = idx + 1;
        let t = masked.trim_start();
        let is_pub_fn = ["pub fn ", "pub const fn ", "pub unsafe fn ", "pub async fn "]
            .iter()
            .any(|p| t.starts_with(p));
        if !is_pub_fn || prep.is_test_line(line) || prep.is_allowed(line, Rule::PubDoc) {
            continue;
        }
        // Walk upward over attributes and blank lines to the nearest
        // non-attribute line; it must be a doc comment.
        let mut j = idx;
        let mut documented = false;
        while j > 0 {
            j -= 1;
            let up = prep.masked_lines[j].trim();
            if prep.doc_lines.contains(&(j + 1)) {
                documented = true;
                break;
            }
            // Skip attribute lines (masked comments are blank).
            if up.is_empty() || up.starts_with("#[") || up.starts_with("#![") || up.ends_with(")]")
            {
                continue;
            }
            break;
        }
        if !documented {
            let name = fn_name(t).unwrap_or("function");
            out.push(Diagnostic {
                path: info.rel_path.clone(),
                line,
                rule: Rule::PubDoc,
                message: format!("public function `{name}` has no doc comment"),
            });
        }
    }
}

fn fn_name(decl: &str) -> Option<&str> {
    let after = decl.split("fn ").nth(1)?;
    let end = after.find(|c: char| !c.is_ascii_alphanumeric() && c != '_')?;
    Some(&after[..end])
}

#[cfg(test)]
mod tests {
    use crate::rules::{lint_file, Rule};
    use crate::scanner::{FileInfo, PreparedFile};

    fn info_for(krate: &str) -> FileInfo {
        FileInfo {
            rel_path: format!("crates/{krate}/src/fixture.rs"),
            krate: krate.into(),
            is_bin: false,
            is_test_file: false,
        }
    }

    fn rules_fired(info: &FileInfo, src: &str) -> Vec<(usize, Rule)> {
        lint_file(&PreparedFile::new(info.clone(), src))
            .into_iter()
            .map(|d| (d.line, d.rule))
            .collect()
    }

    #[test]
    fn pub_doc_rule_fires_without_doc_and_passes_with() {
        let undocumented = "pub fn lonely() {}\n";
        assert_eq!(rules_fired(&info_for("geo"), undocumented), vec![(1, Rule::PubDoc)]);
        let documented = "/// Does the thing.\n#[inline]\npub fn fine() {}\n";
        assert!(rules_fired(&info_for("geo"), documented).is_empty());
        let crate_private = "pub(crate) fn hidden() {}\n";
        assert!(rules_fired(&info_for("geo"), crate_private).is_empty());
    }
}
