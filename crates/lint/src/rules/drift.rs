//! `drift`: knob and metric drift between code, docs, tests, and CI.
//!
//! Two families of names tie the running system to its documentation:
//!
//! * **Env knobs** — `TRASS_*` environment variables read by the code.
//!   Every knob the code reads must appear in README.md or DESIGN.md
//!   (undocumented knobs are invisible to operators); every knob the
//!   docs mention must be read by the code (dead docs mislead); every
//!   knob CI sets must exist (a typo in a workflow silently tests
//!   nothing).
//! * **Metrics** — `trass_*` series names registered with the obs
//!   registry. Every produced metric must be documented; every
//!   documented metric must be produced; every metric a test or CI grep
//!   asserts on must be produced (otherwise the assertion can only pass
//!   vacuously or by luck).
//!
//! Sources: code names come from the string-literal side table the
//! scanner keeps (masking erases literal contents from the rule view);
//! lib literals count as read/produced, `#[cfg(test)]` regions and
//! `tests/` files count as asserted, and workflow YAML counts as both
//! asserted (greps) and CI-set (env). Doc tokens ending in `_` (written
//! `trass_kv_*` in prose) act as prefix wildcards. Histogram suffixes
//! `_bucket`/`_count`/`_sum` normalize away before the asserted check.

use super::Rule;
use crate::report::Diagnostic;
use crate::scanner::{is_ident_byte, PreparedFile};
use std::collections::{BTreeMap, BTreeSet};

/// The non-Rust text drift cross-references.
#[derive(Default)]
pub struct DocSet {
    /// Contents of `README.md` (empty if absent).
    pub readme: String,
    /// Contents of `DESIGN.md` (empty if absent).
    pub design: String,
    /// `(path, contents)` of each CI workflow file.
    pub workflows: Vec<(String, String)>,
}

/// One name occurrence: where it was seen.
#[derive(Clone)]
struct Site {
    path: String,
    line: usize,
}

/// A documented name; `prefix` names written `foo_*` match by prefix.
struct DocEntry {
    name: String,
    prefix: bool,
    site: Site,
}

/// Runs the analysis over the prepared workspace plus doc text.
pub fn check(files: &[PreparedFile], docs: &DocSet) -> Vec<Diagnostic> {
    // The workspace's own crate identifiers (`trass_obs`, `trass_core`,
    // ...) appear in docs as code paths; they are not metric names.
    let crate_idents: BTreeSet<String> =
        files.iter().map(|f| format!("trass_{}", f.info.krate)).collect();
    let knobs = NameSets::collect(files, docs, "TRASS_", true, &BTreeSet::new());
    let metrics = NameSets::collect(files, docs, "trass_", false, &crate_idents);
    let mut out = Vec::new();

    // Knob checks.
    for (name, site) in &knobs.code {
        if !knobs.documented(name) {
            out.push(diag(
                site,
                format!(
                "env knob `{name}` is read by the code but not documented in README.md or DESIGN.md"
            ),
            ));
        }
    }
    for entry in &knobs.doc_entries {
        if !entry.prefix && !knobs.in_code(&entry.name) {
            out.push(diag(
                &entry.site,
                format!(
                    "env knob `{}` is documented but never read by the code (dead knob or typo)",
                    entry.name
                ),
            ));
        }
    }
    for (name, site) in &knobs.ci {
        if !knobs.in_code(name) {
            out.push(diag(
                site,
                format!("CI references env knob `{name}` that no code reads (typo tests nothing)"),
            ));
        }
    }

    // Metric checks.
    for (name, site) in &metrics.code {
        if !metrics.documented(name) {
            out.push(diag(
                site,
                format!("metric `{name}` is produced but not documented in README.md or DESIGN.md"),
            ));
        }
    }
    for entry in &metrics.doc_entries {
        if !entry.prefix
            && !metrics.in_code(&entry.name)
            && !metrics.in_code(normalize(&entry.name))
        {
            out.push(diag(
                &entry.site,
                format!("metric `{}` is documented but never produced by the code", entry.name),
            ));
        }
    }
    for (name, site) in &metrics.asserted {
        if !metrics.in_code(name) && !metrics.in_code(normalize(name)) {
            out.push(diag(
                site,
                format!("tests or CI assert on metric `{name}` that no code produces"),
            ));
        }
    }
    out
}

fn diag(site: &Site, message: String) -> Diagnostic {
    Diagnostic { path: site.path.clone(), line: site.line, rule: Rule::Drift, message }
}

/// Strips histogram-export suffixes so `x_seconds_bucket` matches the
/// registered `x_seconds`.
fn normalize(name: &str) -> &str {
    for suffix in ["_bucket", "_count", "_sum"] {
        if let Some(stripped) = name.strip_suffix(suffix) {
            return stripped;
        }
    }
    name
}

/// All occurrence sets for one name family (knobs or metrics).
struct NameSets {
    /// Read/produced by non-test code: first site per name.
    code: BTreeMap<String, Site>,
    /// Dynamic `format!("trass_kv_{}_x")`-style producers: trailing-`_`
    /// code literals act as produced prefixes.
    code_prefixes: Vec<String>,
    /// Asserted by test code or workflow greps.
    asserted: BTreeMap<String, Site>,
    /// Referenced by CI workflows (env or greps).
    ci: BTreeMap<String, Site>,
    /// Documented in README/DESIGN.
    doc_entries: Vec<DocEntry>,
}

impl NameSets {
    fn collect(
        files: &[PreparedFile],
        docs: &DocSet,
        prefix: &str,
        upper: bool,
        skip: &BTreeSet<String>,
    ) -> NameSets {
        let mut sets = NameSets {
            code: BTreeMap::new(),
            code_prefixes: Vec::new(),
            asserted: BTreeMap::new(),
            ci: BTreeMap::new(),
            doc_entries: Vec::new(),
        };
        for f in files {
            if !Rule::Drift.applies_to(&f.info.krate) {
                continue; // the lint crate's own fixtures are not the system
            }
            for (line, literal) in &f.prep.literals {
                for (name, _) in scan(literal, prefix, upper) {
                    if skip.contains(&name) {
                        continue;
                    }
                    let site = Site { path: f.info.rel_path.clone(), line: *line };
                    let is_test = f.info.is_test_file || f.prep.is_test_line(*line);
                    if is_test {
                        sets.asserted.entry(name).or_insert(site);
                    } else if f.prep.is_allowed(*line, Rule::Drift) {
                        // An allow on a produced-name literal opts it out.
                    } else if let Some(stripped) = name.strip_suffix('_') {
                        if stripped.len() > prefix.len() {
                            sets.code_prefixes.push(name);
                        }
                    } else {
                        sets.code.entry(name).or_insert(site);
                    }
                }
            }
        }
        for (path, text) in [("README.md", &docs.readme), ("DESIGN.md", &docs.design)] {
            for (name, line) in scan(text, prefix, upper) {
                if skip.contains(&name) {
                    continue;
                }
                let site = Site { path: path.to_string(), line };
                match name.strip_suffix('_') {
                    // `foo_*` in prose scans as `foo_`: a prefix wildcard.
                    Some(stripped) if stripped.len() >= prefix.len() => {
                        sets.doc_entries.push(DocEntry { name, prefix: true, site });
                    }
                    _ => sets.doc_entries.push(DocEntry { name, prefix: false, site }),
                }
            }
        }
        for (path, text) in &docs.workflows {
            for (name, line) in scan(text, prefix, upper) {
                if name.ends_with('_') || skip.contains(&name) {
                    continue; // shell globs / crate idents are not assertions
                }
                let site = Site { path: path.clone(), line };
                sets.ci.entry(name.clone()).or_insert(site.clone());
                sets.asserted.entry(name).or_insert(site);
            }
        }
        sets
    }

    /// Whether the code reads/produces `name`, exactly or via a dynamic
    /// prefix producer.
    fn in_code(&self, name: &str) -> bool {
        self.code.contains_key(name)
            || self.code_prefixes.iter().any(|p| name.starts_with(p.as_str()))
    }

    /// Whether the docs cover `name`, exactly or via a `foo_*` wildcard.
    fn documented(&self, name: &str) -> bool {
        self.doc_entries.iter().any(|e| {
            if e.prefix {
                name.starts_with(&e.name)
            } else {
                e.name == name || normalize(&e.name) == name
            }
        })
    }
}

/// Finds `(token, line)` for every word starting with `prefix` in `text`.
/// Tokens extend over `[A-Z0-9_]` (knobs) or `[a-z0-9_]` (metrics), so a
/// doc's `trass_kv_*` yields the prefix-marking `trass_kv_`.
fn scan(text: &str, prefix: &str, upper: bool) -> Vec<(String, usize)> {
    let ident = |b: u8| -> bool {
        if upper {
            b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_'
        } else {
            b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_'
        }
    };
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let bytes = line.as_bytes();
        let mut from = 0;
        while let Some(off) = line[from..].find(prefix) {
            let at = from + off;
            let bounded = at == 0 || !is_ident_byte(bytes[at - 1]);
            let mut end = at + prefix.len();
            while end < bytes.len() && ident(bytes[end]) {
                end += 1;
            }
            if bounded && end > at + prefix.len() {
                out.push((line[at..end].to_string(), i + 1));
            }
            from = end.max(at + prefix.len());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::{check, DocSet};
    use crate::rules::Rule;
    use crate::scanner::{FileInfo, PreparedFile};

    fn pf(path: &str, krate: &str, src: &str) -> PreparedFile {
        PreparedFile::new(
            FileInfo {
                rel_path: path.into(),
                krate: krate.into(),
                is_bin: false,
                is_test_file: false,
            },
            src,
        )
    }

    fn docs(readme: &str, workflows: &[(&str, &str)]) -> DocSet {
        DocSet {
            readme: readme.into(),
            design: String::new(),
            workflows: workflows.iter().map(|(p, t)| (p.to_string(), t.to_string())).collect(),
        }
    }

    fn messages(diags: &[crate::report::Diagnostic]) -> Vec<String> {
        diags
            .iter()
            .map(|d| {
                assert_eq!(d.rule, Rule::Drift);
                format!("{}:{} {}", d.path, d.line, d.message)
            })
            .collect()
    }

    #[test]
    fn undocumented_knob_fires_and_documenting_it_clears() {
        let src = "fn f() -> Option<String> {\n    std::env::var(\"TRASS_FAKE_KNOB\").ok()\n}\n";
        let file = pf("crates/core/src/config.rs", "core", src);
        let found = check(&[file], &docs("nothing here", &[]));
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("`TRASS_FAKE_KNOB`"), "{}", found[0].message);
        assert!(found[0].message.contains("not documented"));
        assert_eq!((found[0].path.as_str(), found[0].line), ("crates/core/src/config.rs", 2));

        let file = pf("crates/core/src/config.rs", "core", src);
        let cured = check(&[file], &docs("set `TRASS_FAKE_KNOB` to fake it", &[]));
        assert!(cured.is_empty(), "{:?}", messages(&cured));
    }

    #[test]
    fn dead_documented_knob_and_ci_typo_fire() {
        let src = "fn f() -> Option<String> {\n    std::env::var(\"TRASS_REAL\").ok()\n}\n";
        let d = docs(
            "`TRASS_REAL` works. `TRASS_GHOST` was removed long ago.",
            &[("ci.yml", "env:\n  TRASS_REAL: 1\n  TRASS_TYPO: 2\n")],
        );
        let found = check(&[pf("crates/core/src/config.rs", "core", src)], &d);
        let msgs = messages(&found);
        assert_eq!(found.len(), 2, "{msgs:?}");
        assert!(msgs
            .iter()
            .any(|m| m.contains("`TRASS_GHOST`") && m.contains("documented but never read")));
        assert!(msgs.iter().any(|m| m.contains("`TRASS_TYPO`") && m.contains("no code reads")));
    }

    #[test]
    fn undocumented_metric_fires_and_prefix_wildcard_documents() {
        let src = "fn f(r: &Registry) {\n    r.counter(\"trass_kv_wal_appends_total\");\n    \
                   r.gauge(\"trass_orphan_series\");\n}\n";
        let d = docs("| `trass_kv_*` | kv-store metrics |", &[]);
        let found = check(&[pf("crates/kv/src/store.rs", "kv", src)], &d);
        assert_eq!(found.len(), 1, "{:?}", messages(&found));
        assert!(found[0].message.contains("`trass_orphan_series`"));
        assert!(found[0].message.contains("not documented"));
    }

    #[test]
    fn documented_but_dead_metric_fires_with_doc_site() {
        let src = "fn f(r: &Registry) {\n    r.counter(\"trass_live_total\");\n}\n";
        let d = docs("line one\n`trass_live_total` and `trass_dead_total` here\n", &[]);
        let found = check(&[pf("crates/obs/src/registry.rs", "obs", src)], &d);
        assert_eq!(found.len(), 1, "{:?}", messages(&found));
        assert!(found[0].message.contains("`trass_dead_total`"));
        assert_eq!((found[0].path.as_str(), found[0].line), ("README.md", 2));
    }

    #[test]
    fn asserted_metric_must_be_produced_with_histogram_normalization() {
        let src = "fn f(r: &Registry) {\n    r.timer(\"trass_query_seconds\");\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn t() {\n        \
                   assert!(out.contains(\"trass_query_seconds_bucket\"));\n        \
                   assert!(out.contains(\"trass_vanished_total\"));\n    }\n}\n";
        let d = docs("`trass_query_seconds` and `trass_vanished_total`", &[]);
        let found = check(&[pf("crates/obs/src/registry.rs", "obs", src)], &d);
        let msgs = messages(&found);
        // `_bucket` normalizes to the produced timer; `trass_vanished_total`
        // fires twice: documented-but-dead and asserted-but-dead.
        assert_eq!(found.len(), 2, "{msgs:?}");
        assert!(msgs.iter().all(|m| m.contains("`trass_vanished_total`")));
        assert!(msgs.iter().any(|m| m.contains("never produced")));
        assert!(msgs.iter().any(|m| m.contains("no code produces")));
    }

    #[test]
    fn crate_path_mentions_in_docs_are_not_metrics() {
        // Docs routinely reference `trass_obs::Histogram`-style paths; the
        // crate identifier must not read as a documented-but-dead metric.
        let src = "fn f(r: &Registry) {\n    r.counter(\"trass_queries_total\");\n}\n";
        let d = docs("see `trass_obs::Histogram`; `trass_queries_total` counts queries", &[]);
        let found = check(&[pf("crates/obs/src/registry.rs", "obs", src)], &d);
        assert!(found.is_empty(), "{:?}", messages(&found));
    }

    #[test]
    fn lint_crate_fixtures_and_test_literals_do_not_count_as_produced() {
        // The lint crate's own fixture strings must not register "reads".
        let fixture = "fn f() {\n    let _ = \"TRASS_FIXTURE_ONLY\";\n    \
                       let _ = \"trass_fixture_total\";\n}\n";
        let found = check(&[pf("crates/lint/src/rules/drift.rs", "lint", fixture)], &docs("", &[]));
        assert!(found.is_empty(), "{:?}", messages(&found));
    }

    #[test]
    fn allow_comment_opts_a_literal_out() {
        let src = "fn f() -> Option<String> {\n    \
                   // internal-only escape hatch: trass-lint: allow(drift)\n    \
                   std::env::var(\"TRASS_SECRET_DEBUG\").ok()\n}\n";
        let found = check(&[pf("crates/core/src/config.rs", "core", src)], &docs("", &[]));
        assert!(found.is_empty(), "{:?}", messages(&found));
    }
}
