//! XZ-Ordering (Böhm et al.) — the baseline index.
//!
//! This is the index family GeoMesa, TrajMesa and JUST use to store
//! trajectories in key-value stores, and the comparator for the paper's
//! I/O-reduction claims. It shares the quadrant-sequence machinery with
//! XZ\* but stops at element granularity: a trajectory is represented by
//! the smallest enlarged element covering its MBR, with no shape
//! information. Elements are numbered in pre-order (element before its
//! children), so every subtree is one contiguous code range.

use crate::quad::{sequence_length, Cell, MAX_RESOLUTION};
use crate::ranges::{coalesce, ValueRange};
use serde::{Deserialize, Serialize};
use trass_geo::Mbr;

/// The XZ-Ordering index over the unit square.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Xz2 {
    max_resolution: u8,
}

impl Xz2 {
    /// Creates an index with the given maximum resolution.
    ///
    /// # Panics
    /// Panics unless `1 <= max_resolution <= 30`.
    pub fn new(max_resolution: u8) -> Self {
        assert!(
            (1..=MAX_RESOLUTION).contains(&max_resolution),
            "max_resolution must be in 1..={MAX_RESOLUTION}"
        );
        Xz2 { max_resolution }
    }

    /// The configured maximum resolution.
    #[inline]
    pub fn max_resolution(&self) -> u8 {
        self.max_resolution
    }

    /// Number of elements in the subtree rooted at a level-`l` element
    /// (including itself): `(4^{r−l+1} − 1) / 3`.
    pub fn subtree_size(&self, level: u8) -> u64 {
        debug_assert!(level <= self.max_resolution);
        (4u64.pow(u32::from(self.max_resolution - level + 1)) - 1) / 3
    }

    /// Total number of element codes (the whole tree, root included).
    pub fn total_values(&self) -> u64 {
        self.subtree_size(0)
    }

    /// The element representing an MBR: the smallest enlarged element
    /// covering it (Lemmas 1–2).
    pub fn index_mbr(&self, mbr: &Mbr) -> Cell {
        let level = sequence_length(mbr, self.max_resolution);
        Cell::containing(mbr.min_x, mbr.min_y, level)
    }

    /// Pre-order sequence code: the root is 0; the `q`-th child of an
    /// element at code `c`, level `l`, starts at
    /// `c + 1 + q · subtree_size(l+1)`.
    pub fn encode(&self, cell: &Cell) -> u64 {
        let mut code = 0u64;
        for (depth, &digit) in (1u8..).zip(cell.sequence().iter()) {
            code += 1 + u64::from(digit) * self.subtree_size(depth);
        }
        code
    }

    /// Inverse of [`Xz2::encode`].
    pub fn decode(&self, value: u64) -> Option<Cell> {
        if value >= self.total_values() {
            return None;
        }
        let mut cell = Cell::ROOT;
        let mut rem = value;
        while rem > 0 {
            rem -= 1;
            let child_size = self.subtree_size(cell.level + 1);
            let q = rem / child_size;
            debug_assert!(q < 4);
            cell = cell.child(u8::try_from(q & 3).unwrap_or(0));
            rem %= child_size;
        }
        Some(cell)
    }

    /// Window query: codes of every element whose *enlarged* region
    /// intersects `window`, coalesced into scan ranges. Subtrees fully
    /// inside the window collapse to a single contiguous range.
    ///
    /// For trajectory similarity on XZ-Ordering (the JUST baseline) the
    /// window is `Ext(Q.MBR, ε)`: any similar trajectory lies inside it, so
    /// its covering element's enlarged region must intersect it.
    pub fn query_ranges(&self, window: &Mbr, gap: u64) -> Vec<ValueRange> {
        let mut values = Vec::new();
        let mut ranges = Vec::new();
        self.collect(&Cell::ROOT, window, &mut values, &mut ranges);
        ranges.extend(coalesce(values, gap));
        // Merge singleton-derived ranges with whole-subtree ranges.
        ranges.sort_by_key(|r| r.start);
        let mut out: Vec<ValueRange> = Vec::new();
        for r in ranges {
            match out.last_mut() {
                Some(last) if r.start <= last.end.saturating_add(gap + 1) => {
                    last.end = last.end.max(r.end);
                }
                _ => out.push(r),
            }
        }
        out
    }

    fn collect(
        &self,
        cell: &Cell,
        window: &Mbr,
        values: &mut Vec<u64>,
        ranges: &mut Vec<ValueRange>,
    ) {
        let ee = cell.enlarged();
        if !ee.intersects(window) {
            return;
        }
        let code = self.encode(cell);
        if window.contains(&ee) {
            // The whole subtree's enlarged regions sit inside the window.
            ranges.push(ValueRange { start: code, end: code + self.subtree_size(cell.level) - 1 });
            return;
        }
        values.push(code);
        if cell.level < self.max_resolution {
            for child in cell.children() {
                self.collect(&child, window, values, ranges);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtree_sizes_r2() {
        let x = Xz2::new(2);
        assert_eq!(x.subtree_size(2), 1);
        assert_eq!(x.subtree_size(1), 5);
        assert_eq!(x.subtree_size(0), 21);
        assert_eq!(x.total_values(), 21);
    }

    #[test]
    fn preorder_codes_r2() {
        let x = Xz2::new(2);
        let code = |seq: &[u8]| x.encode(&Cell::from_sequence(seq));
        assert_eq!(code(&[]), 0);
        assert_eq!(code(&[0]), 1);
        assert_eq!(code(&[0, 0]), 2);
        assert_eq!(code(&[0, 3]), 5);
        assert_eq!(code(&[1]), 6);
        assert_eq!(code(&[3]), 16);
        assert_eq!(code(&[3, 3]), 20);
    }

    #[test]
    fn encode_decode_roundtrip_exhaustive() {
        let x = Xz2::new(3);
        let mut seen = std::collections::HashSet::new();
        for value in 0..x.total_values() {
            let cell = x.decode(value).unwrap();
            assert_eq!(x.encode(&cell), value);
            assert!(seen.insert(cell));
        }
        assert_eq!(x.decode(x.total_values()), None);
    }

    #[test]
    fn preorder_subtree_contiguity() {
        let x = Xz2::new(4);
        let cell = Cell::from_sequence(&[2, 1]);
        let base = x.encode(&cell);
        for v in base..base + x.subtree_size(2) {
            let decoded = x.decode(v).unwrap();
            let seq = decoded.sequence();
            assert!(seq.len() >= 2 && seq[0] == 2 && seq[1] == 1, "value {v} escaped");
        }
    }

    #[test]
    fn index_mbr_uses_smallest_covering_element() {
        let x = Xz2::new(16);
        let mbr = Mbr::new(0.30, 0.30, 0.33, 0.32);
        let cell = x.index_mbr(&mbr);
        assert!(cell.enlarged().extended(1e-12).contains(&mbr));
        // One level deeper would not cover.
        let deeper = Cell::containing(mbr.min_x, mbr.min_y, cell.level + 1);
        assert!(!deeper.enlarged().extended(1e-12).contains(&mbr));
    }

    #[test]
    fn window_query_finds_stored_element() {
        let x = Xz2::new(12);
        let mbr = Mbr::new(0.40, 0.40, 0.43, 0.42);
        let code = x.encode(&x.index_mbr(&mbr));
        let ranges = x.query_ranges(&mbr.extended(0.01), 0);
        assert!(ranges.iter().any(|r| r.contains(code)), "stored code {code} missed by {ranges:?}");
    }

    #[test]
    fn window_query_excludes_far_elements() {
        let x = Xz2::new(10);
        let far_mbr = Mbr::new(0.9, 0.9, 0.95, 0.95);
        let far_code = x.encode(&x.index_mbr(&far_mbr));
        let ranges = x.query_ranges(&Mbr::new(0.1, 0.1, 0.15, 0.12), 0);
        assert!(!ranges.iter().any(|r| r.contains(far_code)));
    }

    #[test]
    fn full_window_covers_everything_in_one_range() {
        let x = Xz2::new(6);
        let ranges = x.query_ranges(&Mbr::new(-0.5, -0.5, 2.5, 2.5), 0);
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0], ValueRange { start: 0, end: x.total_values() - 1 });
    }

    #[test]
    fn ranges_are_sorted_and_disjoint() {
        let x = Xz2::new(10);
        let ranges = x.query_ranges(&Mbr::new(0.2, 0.2, 0.25, 0.22), 0);
        assert!(!ranges.is_empty());
        for w in ranges.windows(2) {
            assert!(w[0].end < w[1].start, "overlap: {:?}", w);
        }
    }

    #[test]
    fn xz2_candidates_exceed_xzstar_candidates() {
        // The heart of the paper: XZ* visits fewer index spaces than
        // XZ-Ordering for the same query. Here in *space* terms: the number
        // of values XZ2 scans is >= the element count XZ* scans, because
        // XZ2 cannot discriminate by shape or resolution band.
        use crate::xzstar::{GlobalPruning, PruningConfig, QueryContext, XzStar};
        use trass_geo::Point;
        let r = 10;
        let xz2 = Xz2::new(r);
        let star = XzStar::new(r);
        let points: Vec<Point> =
            vec![Point::new(0.31, 0.42), Point::new(0.33, 0.45), Point::new(0.36, 0.41)];
        let eps = 0.002;
        let q = QueryContext::new(&star, points.clone(), eps);
        let star_values: u64 = GlobalPruning::new(&star, PruningConfig::default())
            .query_ranges(&q)
            .iter()
            .map(|r| r.len())
            .sum();
        let mbr = Mbr::from_points(points.iter()).unwrap();
        let xz2_values: u64 = xz2.query_ranges(&mbr.extended(eps), 0).iter().map(|r| r.len()).sum();
        // XZ2 ranges cover whole subtrees of elements; XZ* covers a narrow
        // resolution band with shape filtering. Compare per-element scan
        // volume: each XZ2 value ~ 1 element of trajectories, each XZ*
        // value ~ 1/10 of an element.
        assert!(
            (star_values as f64) / 10.0 < xz2_values as f64,
            "XZ* {} spaces vs XZ2 {} elements",
            star_values,
            xz2_values
        );
    }
}
