//! An in-memory R-tree.
//!
//! Used by the DFT-like baseline (which partitions trajectory MBRs with an
//! R-tree, as the original system does on Spark) and available as a general
//! substrate. Supports incremental insertion with quadratic splits, STR
//! bulk loading, window queries, and best-first nearest-neighbour search by
//! MBR distance.
//!
//! The paper's §VI observes that dynamic indexes like this pay heavy
//! restructuring costs at scale — `Fig. 13` measures exactly that against
//! the static XZ\* encoding, so the insert path here is deliberately the
//! textbook algorithm.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use trass_geo::Mbr;

const MAX_ENTRIES: usize = 16;
const MIN_ENTRIES: usize = 6;

#[derive(Debug)]
enum Node<T> {
    Leaf { entries: Vec<(Mbr, T)> },
    Inner { children: Vec<(Mbr, Box<Node<T>>)> },
}

impl<T> Node<T> {
    fn mbr(&self) -> Mbr {
        let rects: Vec<Mbr> = match self {
            Node::Leaf { entries } => entries.iter().map(|(m, _)| *m).collect(),
            Node::Inner { children } => children.iter().map(|(m, _)| *m).collect(),
        };
        rects.into_iter().reduce(|a, b| a.union(&b)).unwrap_or(Mbr::new(0.0, 0.0, 0.0, 0.0))
    }
}

/// An R-tree mapping rectangles to items.
#[derive(Debug)]
pub struct RTree<T> {
    root: Node<T>,
    len: usize,
    height: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RTree<T> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RTree { root: Node::Leaf { entries: Vec::new() }, len: 0, height: 1 }
    }

    /// Bulk-loads items with the Sort-Tile-Recursive algorithm, producing a
    /// well-packed tree much faster than repeated insertion.
    pub fn bulk_load(mut items: Vec<(Mbr, T)>) -> Self {
        let len = items.len();
        if len == 0 {
            return Self::new();
        }
        // STR: sort by center-x, slice into vertical strips, sort each
        // strip by center-y, pack runs of MAX_ENTRIES into leaves.
        items.sort_by(|a, b| a.0.center().x.total_cmp(&b.0.center().x));
        let n_leaves = len.div_ceil(MAX_ENTRIES);
        // Smallest n_strips with n_strips² ≥ n_leaves (integer ceil-sqrt).
        let mut n_strips = 1usize;
        while n_strips * n_strips < n_leaves {
            n_strips += 1;
        }
        let strip_len = len.div_ceil(n_strips);
        let mut leaves: Vec<(Mbr, Box<Node<T>>)> = Vec::with_capacity(n_leaves);
        let mut items = items.into_iter().peekable();
        while items.peek().is_some() {
            let mut strip: Vec<(Mbr, T)> = (&mut items).take(strip_len).collect();
            strip.sort_by(|a, b| a.0.center().y.total_cmp(&b.0.center().y));
            let mut strip = strip.into_iter().peekable();
            while strip.peek().is_some() {
                let entries: Vec<(Mbr, T)> = (&mut strip).take(MAX_ENTRIES).collect();
                let node = Node::Leaf { entries };
                leaves.push((node.mbr(), Box::new(node)));
            }
        }
        // Pack upward.
        let mut height = 1;
        let mut level = leaves;
        while level.len() > 1 {
            let mut next: Vec<(Mbr, Box<Node<T>>)> =
                Vec::with_capacity(level.len().div_ceil(MAX_ENTRIES));
            let mut level_iter = level.into_iter().peekable();
            while level_iter.peek().is_some() {
                let children: Vec<(Mbr, Box<Node<T>>)> =
                    (&mut level_iter).take(MAX_ENTRIES).collect();
                let node = Node::Inner { children };
                next.push((node.mbr(), Box::new(node)));
            }
            level = next;
            height += 1;
        }
        let Some((_, root)) = level.into_iter().next() else {
            unreachable!("the packing loop always leaves exactly one node")
        };
        RTree { root: *root, len, height }
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no items are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = a single leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Inserts an item.
    pub fn insert(&mut self, mbr: Mbr, item: T) {
        self.len += 1;
        if let Some((left, right)) = insert_rec(&mut self.root, mbr, item) {
            // Root split: grow the tree.
            let old_root = std::mem::replace(&mut self.root, Node::Leaf { entries: Vec::new() });
            drop(old_root); // fully replaced by the two split halves
            self.root = Node::Inner {
                children: vec![(left.mbr(), Box::new(left)), (right.mbr(), Box::new(right))],
            };
            self.height += 1;
        }
    }

    /// All items whose MBR intersects `window`.
    pub fn query_intersecting(&self, window: &Mbr) -> Vec<(&Mbr, &T)> {
        let mut out = Vec::new();
        query_rec(&self.root, window, &mut out);
        out
    }

    /// The `k` items nearest to `target` by MBR-to-MBR distance,
    /// best-first. Returns `(distance, mbr, item)` in increasing order.
    pub fn nearest<'a>(&'a self, target: &Mbr, k: usize) -> Vec<(f64, &'a Mbr, &'a T)> {
        #[derive(PartialEq)]
        struct HeapDist(f64);
        impl Eq for HeapDist {}
        impl PartialOrd for HeapDist {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for HeapDist {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }
        enum Candidate<'a, T> {
            Node(&'a Node<T>),
            Item(&'a Mbr, &'a T),
        }
        if self.len == 0 || k == 0 {
            return Vec::new();
        }
        let mut heap: BinaryHeap<Reverse<(HeapDist, usize)>> = BinaryHeap::new();
        let mut arena: Vec<Candidate<'a, T>> = vec![Candidate::Node(&self.root)];
        heap.push(Reverse((HeapDist(0.0), 0)));
        let mut out = Vec::new();
        while let Some(Reverse((HeapDist(dist), idx))) = heap.pop() {
            match arena[idx] {
                Candidate::Item(mbr, item) => {
                    out.push((dist, mbr, item));
                    if out.len() == k {
                        break;
                    }
                }
                Candidate::Node(node) => match node {
                    Node::Leaf { entries } => {
                        for (mbr, item) in entries {
                            let d = target.distance_to_mbr(mbr);
                            arena.push(Candidate::Item(mbr, item));
                            heap.push(Reverse((HeapDist(d), arena.len() - 1)));
                        }
                    }
                    Node::Inner { children } => {
                        for (mbr, child) in children {
                            let d = target.distance_to_mbr(mbr);
                            arena.push(Candidate::Node(child));
                            heap.push(Reverse((HeapDist(d), arena.len() - 1)));
                        }
                    }
                },
            }
        }
        out
    }

    /// Visits every stored item.
    pub fn for_each(&self, mut f: impl FnMut(&Mbr, &T)) {
        fn walk<T>(node: &Node<T>, f: &mut impl FnMut(&Mbr, &T)) {
            match node {
                Node::Leaf { entries } => {
                    for (m, t) in entries {
                        f(m, t);
                    }
                }
                Node::Inner { children } => {
                    for (_, c) in children {
                        walk(c, f);
                    }
                }
            }
        }
        walk(&self.root, &mut f);
    }
}

fn query_rec<'a, T>(node: &'a Node<T>, window: &Mbr, out: &mut Vec<(&'a Mbr, &'a T)>) {
    match node {
        Node::Leaf { entries } => {
            for (mbr, item) in entries {
                if mbr.intersects(window) {
                    out.push((mbr, item));
                }
            }
        }
        Node::Inner { children } => {
            for (mbr, child) in children {
                if mbr.intersects(window) {
                    query_rec(child, window, out);
                }
            }
        }
    }
}

/// Recursive insert; returns the two halves when the node split.
fn insert_rec<T>(node: &mut Node<T>, mbr: Mbr, item: T) -> Option<(Node<T>, Node<T>)> {
    match node {
        Node::Leaf { entries } => {
            entries.push((mbr, item));
            if entries.len() <= MAX_ENTRIES {
                return None;
            }
            let moved = std::mem::take(entries);
            let (a, b) = quadratic_split(moved);
            Some((Node::Leaf { entries: a }, Node::Leaf { entries: b }))
        }
        Node::Inner { children } => {
            // Choose the child needing least enlargement (ties by area).
            let best = children
                .iter()
                .enumerate()
                .min_by(|(_, (m1, _)), (_, (m2, _))| {
                    let e1 = m1.union(&mbr).area() - m1.area();
                    let e2 = m2.union(&mbr).area() - m2.area();
                    e1.total_cmp(&e2).then(m1.area().total_cmp(&m2.area()))
                })
                .map(|(i, _)| i);
            let Some(best) = best else { unreachable!("inner nodes are never empty") };
            let split = insert_rec(&mut children[best].1, mbr, item);
            children[best].0 = children[best].1.mbr();
            if let Some((left, right)) = split {
                children.remove(best);
                children.push((left.mbr(), Box::new(left)));
                children.push((right.mbr(), Box::new(right)));
                if children.len() > MAX_ENTRIES {
                    let moved = std::mem::take(children);
                    let (a, b) = quadratic_split(moved);
                    return Some((Node::Inner { children: a }, Node::Inner { children: b }));
                }
            }
            None
        }
    }
}

/// One half of a node split: the entries assigned to a group.
type SplitGroup<E> = Vec<(Mbr, E)>;

/// Guttman's quadratic split over any (Mbr, payload) entries.
fn quadratic_split<E>(entries: Vec<(Mbr, E)>) -> (SplitGroup<E>, SplitGroup<E>) {
    debug_assert!(entries.len() >= 2);
    // Pick the pair wasting the most area as seeds.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in i + 1..entries.len() {
            let waste = entries[i].0.union(&entries[j].0).area()
                - entries[i].0.area()
                - entries[j].0.area();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    let mut a: Vec<(Mbr, E)> = Vec::new();
    let mut b: Vec<(Mbr, E)> = Vec::new();
    let mut a_mbr = entries[s1].0;
    let mut b_mbr = entries[s2].0;
    let total = entries.len();
    for (idx, entry) in entries.into_iter().enumerate() {
        if idx == s1 {
            a.push(entry);
            continue;
        }
        if idx == s2 {
            b.push(entry);
            continue;
        }
        // Force balance so both halves satisfy MIN_ENTRIES.
        let remaining = total - idx; // entries not yet distributed (incl. this)
        if a.len() + remaining <= MIN_ENTRIES {
            a_mbr = a_mbr.union(&entry.0);
            a.push(entry);
            continue;
        }
        if b.len() + remaining <= MIN_ENTRIES {
            b_mbr = b_mbr.union(&entry.0);
            b.push(entry);
            continue;
        }
        let ea = a_mbr.union(&entry.0).area() - a_mbr.area();
        let eb = b_mbr.union(&entry.0).area() - b_mbr.area();
        if ea <= eb {
            a_mbr = a_mbr.union(&entry.0);
            a.push(entry);
        } else {
            b_mbr = b_mbr.union(&entry.0);
            b.push(entry);
        }
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_items(n: usize) -> Vec<(Mbr, usize)> {
        (0..n)
            .map(|i| {
                let x = (i % 100) as f64;
                let y = (i / 100) as f64;
                (Mbr::new(x, y, x + 0.5, y + 0.5), i)
            })
            .collect()
    }

    #[test]
    fn insert_and_query() {
        let mut t = RTree::new();
        for (mbr, i) in grid_items(500) {
            t.insert(mbr, i);
        }
        assert_eq!(t.len(), 500);
        let hits = t.query_intersecting(&Mbr::new(10.0, 1.0, 12.0, 2.0));
        let ids: Vec<usize> = hits.iter().map(|(_, &i)| i).collect();
        // x in 10..=12, y in 1..=2 → i = y*100 + x.
        for expect in [110, 111, 112, 210, 211, 212] {
            assert!(ids.contains(&expect), "{expect} missing from {ids:?}");
        }
    }

    #[test]
    fn bulk_load_matches_insert_results() {
        let items = grid_items(1000);
        let bulk = RTree::bulk_load(items.clone());
        let mut incremental = RTree::new();
        for (m, i) in items {
            incremental.insert(m, i);
        }
        assert_eq!(bulk.len(), incremental.len());
        let window = Mbr::new(25.0, 3.0, 40.0, 7.0);
        let mut from_bulk: Vec<usize> =
            bulk.query_intersecting(&window).iter().map(|(_, &i)| i).collect();
        let mut from_incr: Vec<usize> =
            incremental.query_intersecting(&window).iter().map(|(_, &i)| i).collect();
        from_bulk.sort_unstable();
        from_incr.sort_unstable();
        assert_eq!(from_bulk, from_incr);
        assert!(!from_bulk.is_empty());
    }

    #[test]
    fn query_empty_tree() {
        let t: RTree<u32> = RTree::new();
        assert!(t.query_intersecting(&Mbr::new(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert!(t.nearest(&Mbr::new(0.0, 0.0, 1.0, 1.0), 5).is_empty());
    }

    #[test]
    fn query_misses_outside_window() {
        let t = RTree::bulk_load(grid_items(200));
        let hits = t.query_intersecting(&Mbr::new(500.0, 500.0, 501.0, 501.0));
        assert!(hits.is_empty());
    }

    #[test]
    fn nearest_returns_increasing_distances() {
        let t = RTree::bulk_load(grid_items(1000));
        let target = Mbr::new(50.2, 5.2, 50.3, 5.3);
        let results = t.nearest(&target, 10);
        assert_eq!(results.len(), 10);
        assert_eq!(results[0].0, 0.0, "containing cell first");
        for w in results.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        // Best-first matches brute force.
        let mut brute: Vec<(f64, usize)> =
            grid_items(1000).into_iter().map(|(m, i)| (target.distance_to_mbr(&m), i)).collect();
        brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (got, want) in results.iter().zip(brute.iter()) {
            assert!((got.0 - want.0).abs() < 1e-12);
        }
    }

    #[test]
    fn for_each_visits_everything() {
        let t = RTree::bulk_load(grid_items(300));
        let mut seen = vec![false; 300];
        t.for_each(|_, &i| seen[i] = true);
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn tree_height_grows_logarithmically() {
        let mut t = RTree::new();
        for (m, i) in grid_items(2000) {
            t.insert(m, i);
        }
        assert!(t.height() >= 3);
        assert!(t.height() <= 7, "height {} too tall for 2000 items", t.height());
    }

    #[test]
    fn duplicate_rectangles_supported() {
        let mut t = RTree::new();
        let m = Mbr::new(1.0, 1.0, 2.0, 2.0);
        for i in 0..50 {
            t.insert(m, i);
        }
        assert_eq!(t.query_intersecting(&m).len(), 50);
    }
}
