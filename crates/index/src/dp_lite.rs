//! Minimal Douglas-Peucker used internally by query pruning.
//!
//! `trass-traj` owns the full-featured DP-feature machinery; this crate
//! only needs the raw index selection to build the Lemma 10 covering boxes
//! without a dependency edge onto the trajectory crate.

use trass_geo::{Point, Segment};

/// Returns the indices Douglas-Peucker keeps at tolerance `theta`
/// (always including the first and last point). Iterative, matching
/// `trass_traj::dp::douglas_peucker`.
pub fn douglas_peucker(points: &[Point], theta: f64) -> Vec<u32> {
    assert!(!points.is_empty(), "Douglas-Peucker on empty point set");
    let n = points.len();
    if n <= 2 {
        return (0..u32::try_from(n).unwrap_or(u32::MAX)).collect();
    }
    let mut keep = vec![false; n];
    keep[0] = true;
    keep[n - 1] = true;
    let mut stack = vec![(0usize, n - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let chord = Segment::new(points[lo], points[hi]);
        let mut best = 0.0f64;
        let mut best_idx = lo;
        for (i, p) in points.iter().enumerate().take(hi).skip(lo + 1) {
            let d = chord.line_distance_to_point(p);
            if d > best {
                best = d;
                best_idx = i;
            }
        }
        if best > theta {
            keep[best_idx] = true;
            stack.push((lo, best_idx));
            stack.push((best_idx, hi));
        }
    }
    // Trajectories are far below 2^32 points; saturate rather than wrap if
    // one ever is not.
    keep.iter()
        .enumerate()
        .filter(|&(_, &k)| k)
        .map(|(i, _)| u32::try_from(i).unwrap_or(u32::MAX))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_endpoints_and_extrema() {
        let pts: Vec<Point> = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 5.0),
            Point::new(2.0, -5.0),
            Point::new(3.0, 0.0),
        ];
        let kept = douglas_peucker(&pts, 0.5);
        assert_eq!(kept, vec![0, 1, 2, 3]);
        let coarse = douglas_peucker(&pts, 100.0);
        assert_eq!(coarse, vec![0, 3]);
    }

    #[test]
    fn tiny_inputs() {
        let p = Point::new(1.0, 1.0);
        assert_eq!(douglas_peucker(&[p], 0.1), vec![0]);
        assert_eq!(douglas_peucker(&[p, p], 0.1), vec![0, 1]);
    }
}
