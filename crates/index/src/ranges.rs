//! Coalescing index values into contiguous scan ranges.
//!
//! Global pruning emits a set of index values; each value becomes a rowkey
//! range scan against the store. Because the XZ\* encoding numbers spatially
//! close index spaces with close integers (§IV-C), sorting and coalescing
//! adjacent values collapses the set into few wide scans — the paper's
//! "carefully generates range scans" step.

/// An inclusive range of index values `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ValueRange {
    /// First value in the range.
    pub start: u64,
    /// Last value in the range (inclusive).
    pub end: u64,
}

impl ValueRange {
    /// A single-value range.
    pub fn single(v: u64) -> Self {
        ValueRange { start: v, end: v }
    }

    /// Number of values covered.
    pub fn len(&self) -> u64 {
        self.end - self.start + 1
    }

    /// Never true — ranges are non-empty by construction — provided for API
    /// completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `v` falls in the range.
    pub fn contains(&self, v: u64) -> bool {
        v >= self.start && v <= self.end
    }
}

/// Sorts, deduplicates, and coalesces `values` into inclusive ranges.
/// Values whose gap is `<= max_gap` are merged into one range (a gap of 0
/// merges only consecutive integers). A small positive `max_gap` trades a
/// few extra scanned rows for fewer range scans — the same trade HBase scan
/// planning makes.
pub fn coalesce(mut values: Vec<u64>, max_gap: u64) -> Vec<ValueRange> {
    if values.is_empty() {
        return Vec::new();
    }
    values.sort_unstable();
    values.dedup();
    let mut out = Vec::new();
    let mut current = ValueRange::single(values[0]);
    for &v in &values[1..] {
        if v - current.end <= max_gap + 1 {
            current.end = v;
        } else {
            out.push(current);
            current = ValueRange::single(v);
        }
    }
    out.push(current);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        assert!(coalesce(vec![], 0).is_empty());
    }

    #[test]
    fn consecutive_values_merge() {
        let r = coalesce(vec![3, 1, 2, 7, 8, 10], 0);
        assert_eq!(
            r,
            vec![
                ValueRange { start: 1, end: 3 },
                ValueRange { start: 7, end: 8 },
                ValueRange::single(10),
            ]
        );
    }

    #[test]
    fn duplicates_collapse() {
        let r = coalesce(vec![5, 5, 5, 6, 6], 0);
        assert_eq!(r, vec![ValueRange { start: 5, end: 6 }]);
    }

    #[test]
    fn gap_tolerance_merges_across_holes() {
        let values = vec![1, 2, 5, 6, 20];
        assert_eq!(coalesce(values.clone(), 0).len(), 3);
        assert_eq!(coalesce(values.clone(), 2).len(), 2);
        assert_eq!(coalesce(values, 100).len(), 1);
    }

    #[test]
    fn single_value() {
        assert_eq!(coalesce(vec![42], 0), vec![ValueRange::single(42)]);
    }

    #[test]
    fn range_accessors() {
        let r = ValueRange { start: 3, end: 7 };
        assert_eq!(r.len(), 5);
        assert!(r.contains(3) && r.contains(7) && !r.contains(8));
        assert!(!r.is_empty());
    }

    #[test]
    fn coalescing_preserves_coverage() {
        let values: Vec<u64> = (0..1000).filter(|v| v % 7 != 0).collect();
        for gap in [0u64, 1, 5] {
            let ranges = coalesce(values.clone(), gap);
            for &v in &values {
                assert!(ranges.iter().any(|r| r.contains(v)), "value {v} lost at gap {gap}");
            }
            // Ranges are sorted and non-overlapping.
            for w in ranges.windows(2) {
                assert!(w[0].end < w[1].start);
            }
        }
    }
}
