//! Spatial indexes for trajectory data on key-value stores.
//!
//! This crate contains the paper's primary contribution and its
//! comparators:
//!
//! * [`quad`] — quadrant sequences and quad-tree cells over the unit square
//!   (the shared foundation; §IV-B "Quadrant Sequence").
//! * [`xzstar`] — the **XZ\*** index: enlarged elements, position codes,
//!   the bijective integer encoding `V(s, p)` (§IV-B/C), global pruning
//!   (Lemmas 6–11, Algorithm 1) and the best-first traversal used by top-k
//!   search (Algorithm 4).
//! * [`xz2`] — classic XZ-Ordering (Böhm et al.), the index GeoMesa/JUST
//!   use; the baseline the paper's I/O-reduction numbers are measured
//!   against.
//! * [`rtree`] — an in-memory R-tree used by the DFT-like baseline and as a
//!   general substrate.
//! * [`ranges`] — coalescing of index values into contiguous scan ranges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Asserts an index invariant under `debug_assertions`, compiling to
/// nothing in release builds.
///
/// Used at encode/decode boundaries to check bijectivity (`decode(encode(s))
/// == s`) and at range construction to check monotonicity (`start <= end`)
/// without taxing release-mode query latency.
#[macro_export]
macro_rules! debug_invariant {
    ($cond:expr $(, $($arg:tt)+)?) => {
        debug_assert!($cond $(, $($arg)+)?)
    };
}

pub(crate) mod dp_lite;
pub mod quad;
pub mod ranges;
pub mod rtree;
pub mod xz2;
pub mod xzstar;

pub use quad::Cell;
pub use ranges::ValueRange;
pub use xzstar::{IndexSpace, PositionCode, XzStar};
