//! Best-first traversal for top-k search (§V-E, Algorithm 4).
//!
//! Top-k search has no threshold up front; it discovers index spaces in
//! increasing `minDistIS` order, letting the caller tighten ε as results
//! accumulate. [`BestFirst`] maintains the paper's two priority queues —
//! `EQ` over enlarged elements (by `minDistEE`) and `IQ` over index spaces
//! (by `minDistIS`) — and interleaves them so a space is only emitted once
//! no unexpanded element could produce a nearer one.

use super::position_code::{PositionCode, QuadSet};
use super::pruning::{
    cover_boxes, max_resolution_bound, min_dist_ee, min_dist_is, min_point_dist_to_rect,
    PRUNE_SLACK,
};
use super::{IndexSpace, XzStar};
use crate::quad::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use trass_geo::{Mbr, Point};

/// An `f64` with a total order (inputs are guaranteed non-NaN).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// An index space surfaced by the traversal, with its lower-bound distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpaceCandidate {
    /// Encoded index value (the rowkey component).
    pub value: u64,
    /// The decoded index space.
    pub space: IndexSpace,
    /// `minDistIS(Q, space)` — a lower bound on the similarity distance of
    /// any trajectory stored under this space.
    pub dist: f64,
}

/// Best-first enumerator of index spaces by increasing `minDistIS`.
pub struct BestFirst<'a> {
    index: &'a XzStar,
    q_mbr: Mbr,
    points: Vec<Point>,
    /// Lemma 10 covering boxes (see `pruning::cover_boxes`). Built with the
    /// tightest tolerance since ε is unknown up front.
    boxes: Vec<trass_geo::OrientedBox>,
    /// Elements pending expansion, keyed by `minDistEE`.
    eq: BinaryHeap<Reverse<(OrdF64, Cell)>>,
    /// Index spaces pending emission, keyed by `minDistIS`.
    iq: BinaryHeap<Reverse<(OrdF64, u64)>>,
}

impl<'a> BestFirst<'a> {
    /// Starts a traversal for the given unit-space query points.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn new(index: &'a XzStar, points: Vec<Point>) -> Self {
        assert!(!points.is_empty(), "empty query trajectory");
        let Some(q_mbr) = Mbr::from_points(points.iter()) else {
            unreachable!("asserted non-empty just above")
        };
        let mut eq = BinaryHeap::new();
        eq.push(Reverse((OrdF64(min_dist_ee(&q_mbr, &Cell::ROOT.enlarged())), Cell::ROOT)));
        // Coarse covering boxes: a quarter of the finest cell is the
        // tightest tolerance that can ever matter for quad pruning.
        let boxes = cover_boxes(&points, 0.5f64.powi(i32::from(index.max_resolution())) / 4.0);
        BestFirst { index, q_mbr, points, boxes, eq, iq: BinaryHeap::new() }
    }

    /// Lemma 10 lower bound against the covering boxes (points fallback).
    fn dist_to_rect_lb(&self, rect: &Mbr) -> f64 {
        if self.boxes.is_empty() {
            return min_point_dist_to_rect(&self.points, rect);
        }
        let rect_box = trass_geo::OrientedBox::from_mbr(rect);
        self.boxes.iter().map(|b| b.distance_to_box(&rect_box)).fold(f64::INFINITY, f64::min)
    }

    /// Pops the nearest index space whose lower-bound distance is `<= eps`.
    /// `eps` is the caller's current pruning bound (`f64::INFINITY` until k
    /// results exist); it may tighten between calls but must never loosen.
    /// Returns `None` when no remaining space can beat `eps`.
    pub fn next_space(&mut self, eps: f64) -> Option<SpaceCandidate> {
        let min_r =
            if eps.is_finite() { self.index.sequence_length(&self.q_mbr.extended(eps)) } else { 0 };
        let max_r = max_resolution_bound(self.index, &self.q_mbr, eps);
        loop {
            // Expand elements while the nearest unexpanded element could
            // still yield a space nearer than the best queued space.
            while let Some(&Reverse((OrdF64(e_dist), cell))) = self.eq.peek() {
                if e_dist > eps {
                    self.eq.clear(); // everything left is worse
                    break;
                }
                if let Some(&Reverse((OrdF64(s_dist), _))) = self.iq.peek() {
                    if s_dist <= e_dist {
                        break;
                    }
                }
                self.eq.pop();
                self.expand(cell, eps, min_r, max_r);
            }
            let Reverse((OrdF64(dist), value)) = self.iq.pop()?;
            if dist > eps {
                // All remaining spaces are at least this far.
                self.iq.clear();
                return None;
            }
            // Every queued value came from `encode` in `expand`, so decode
            // cannot fail; a corrupt value would only drop a candidate.
            let Some(space) = self.index.decode(value) else { continue };
            // ε may have tightened since this space was queued; re-check
            // the resolution band (Lemmas 6–7 at the current ε).
            if space.cell.level < min_r || space.cell.level > max_r {
                continue;
            }
            return Some(SpaceCandidate { value, space, dist });
        }
    }

    fn expand(&mut self, cell: Cell, eps: f64, min_r: u8, max_r: u8) {
        let rects = XzStar::quad_rects(&cell);
        // Queue this element's index spaces (Lemmas 6, 7, 10, 11).
        if cell.level >= min_r && cell.level <= max_r {
            let at_max = cell.level == self.index.max_resolution();
            let mut far = QuadSet::EMPTY;
            for (i, rect) in rects.iter().enumerate() {
                if self.dist_to_rect_lb(rect) > eps + PRUNE_SLACK {
                    far = far.union(QuadSet(1 << i));
                }
            }
            for code in PositionCode::all(at_max) {
                if code.quads().intersects(far) {
                    continue;
                }
                let is_rects: Vec<Mbr> =
                    code.quads().iter().filter_map(|s| s.quad_index().map(|i| rects[i])).collect();
                let dist = min_dist_is(&self.q_mbr, &is_rects);
                if dist <= eps {
                    let value = self.index.encode(&IndexSpace { cell, code });
                    self.iq.push(Reverse((OrdF64(dist), value)));
                }
            }
        }
        // Queue children (Lemmas 8–9 via minDistEE).
        if cell.level < max_r && cell.level < self.index.max_resolution() {
            for child in cell.children() {
                let dist = min_dist_ee(&self.q_mbr, &child.enlarged());
                if dist <= eps {
                    self.eq.push(Reverse((OrdF64(dist), child)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn emits_spaces_in_nondecreasing_distance_order() {
        let index = XzStar::new(8);
        let mut bf = BestFirst::new(&index, pts(&[(0.3, 0.3), (0.32, 0.34)]));
        let mut last = 0.0f64;
        let mut count = 0;
        while let Some(c) = bf.next_space(f64::INFINITY) {
            assert!(c.dist >= last - 1e-12, "order violated: {} after {}", c.dist, last);
            last = c.dist;
            count += 1;
            if count >= 200 {
                break;
            }
        }
        assert!(count >= 200, "traversal starved early at {count}");
    }

    #[test]
    fn first_spaces_include_the_query_own_space() {
        let index = XzStar::new(8);
        let points = pts(&[(0.52, 0.41), (0.55, 0.44), (0.58, 0.42)]);
        let own = index.encode(&index.index_points(&points));
        let mut bf = BestFirst::new(&index, points);
        let mut found = false;
        for _ in 0..100 {
            match bf.next_space(f64::INFINITY) {
                Some(c) if c.value == own => {
                    assert_eq!(c.dist, 0.0, "own space has zero lower bound");
                    found = true;
                    break;
                }
                Some(c) => assert_eq!(c.dist, 0.0, "own space must precede nonzero spaces"),
                None => break,
            }
        }
        assert!(found, "own space never emitted");
    }

    #[test]
    fn tightening_eps_terminates_enumeration() {
        let index = XzStar::new(8);
        let mut bf = BestFirst::new(&index, pts(&[(0.2, 0.2), (0.22, 0.21)]));
        // Consume a few spaces at infinite eps.
        for _ in 0..5 {
            assert!(bf.next_space(f64::INFINITY).is_some());
        }
        // A very tight eps must end the stream quickly (only zero-distance
        // spaces survive, and they are finitely many).
        let mut remaining = 0;
        while let Some(c) = bf.next_space(1e-9) {
            assert!(c.dist <= 1e-9);
            remaining += 1;
            assert!(remaining < 1000, "stream failed to terminate");
        }
    }

    #[test]
    fn no_space_farther_than_eps_is_emitted() {
        let index = XzStar::new(8);
        let mut bf = BestFirst::new(&index, pts(&[(0.7, 0.7)]));
        while let Some(c) = bf.next_space(0.05) {
            assert!(c.dist <= 0.05);
        }
    }

    #[test]
    fn matches_global_pruning_at_fixed_eps() {
        // The set of spaces best-first emits under a fixed eps must equal
        // the set Algorithm 1 computes for that eps.
        use super::super::pruning::{GlobalPruning, PruningConfig, QueryContext};
        let index = XzStar::new(8);
        let points = pts(&[(0.41, 0.33), (0.44, 0.37), (0.46, 0.33)]);
        let eps = 0.004;

        let pruner = GlobalPruning::new(&index, PruningConfig::default());
        let ctx = QueryContext::new(&index, points.clone(), eps);
        let mut expected = pruner.query_values(&ctx);
        expected.sort_unstable();

        let mut bf = BestFirst::new(&index, points);
        let mut got = Vec::new();
        while let Some(c) = bf.next_space(eps) {
            got.push(c.value);
        }
        got.sort_unstable();
        assert_eq!(got, expected);
    }
}
