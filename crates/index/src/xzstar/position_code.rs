//! Position codes: the ten feasible sub-quad combinations (§IV-B, Fig. 3(e)).
//!
//! Every enlarged element is split into four equal sub-quads:
//!
//! ```text
//!   c | d        a = the original cell (lower-left),
//!   --+--        b = right, c = above, d = upper-right
//!   a | b
//! ```
//!
//! A trajectory indexed by the element occupies some subset of the quads.
//! Because its MBR's lower-left corner lies in quad `a`, the subset always
//! intersects the left column `{a, c}` and the bottom row `{a, b}`; exactly
//! ten subsets satisfy that, and each gets a *position code*:
//!
//! | code | quads | MBR kind (§IV-B) |
//! |------|-------|------------------|
//! | 1 | a,b | MBR-2 |
//! | 2 | a,c | MBR-3 |
//! | 3 | a,d | MBR-4 |
//! | 4 | a,c,d | MBR-4 |
//! | 5 | a,b,c,d | MBR-4 |
//! | 6 | b,c | MBR-4 |
//! | 7 | a,b,d | MBR-4 |
//! | 8 | b,c,d | MBR-4 |
//! | 9 | a,b,c | MBR-4 |
//! | 10 | a | MBR-1, max resolution only |
//!
//! The codes for `{a,d}` (3), `{a,b,d}` (7) and `{a}` (10) are pinned by the
//! paper's worked pruning examples ("quad-c far ⇒ prune 2,4,5,6,8,9";
//! "quad-b and quad-c far ⇒ only 10 and 3 remain"); the rest follow the
//! paper's MBR-kind grouping with a fixed arbitrary order. The §IV-B
//! average-I/O-reduction figure (83.6 %) is reproduced exactly by a test
//! below, validating the assignment.

use serde::{Deserialize, Serialize};

/// A set of sub-quads, as a 4-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuadSet(pub u8);

impl QuadSet {
    /// Quad `a` (the cell itself, lower-left).
    pub const A: QuadSet = QuadSet(0b0001);
    /// Quad `b` (lower-right).
    pub const B: QuadSet = QuadSet(0b0010);
    /// Quad `c` (upper-left).
    pub const C: QuadSet = QuadSet(0b0100);
    /// Quad `d` (upper-right).
    pub const D: QuadSet = QuadSet(0b1000);
    /// The empty set.
    pub const EMPTY: QuadSet = QuadSet(0);
    /// All four quads.
    pub const ALL: QuadSet = QuadSet(0b1111);

    /// Set union.
    #[inline]
    pub fn union(self, other: QuadSet) -> QuadSet {
        QuadSet(self.0 | other.0)
    }

    /// Whether the intersection with `other` is non-empty.
    #[inline]
    pub fn intersects(self, other: QuadSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether `self` contains every quad of `other`.
    #[inline]
    pub fn contains(self, other: QuadSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the individual quads in the set (as singleton sets), in
    /// a, b, c, d order.
    pub fn iter(self) -> impl Iterator<Item = QuadSet> {
        (0..4).filter_map(move |i| {
            let q = QuadSet(1 << i);
            self.contains(q).then_some(q)
        })
    }

    /// Index 0–3 of a singleton quad (a=0, b=1, c=2, d=3).
    pub fn quad_index(self) -> Option<usize> {
        match self {
            QuadSet::A => Some(0),
            QuadSet::B => Some(1),
            QuadSet::C => Some(2),
            QuadSet::D => Some(3),
            _ => None,
        }
    }
}

/// A position code, 1–10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PositionCode(pub u8);

/// `CODE_SETS[code - 1]` is the quad set of that position code.
pub const CODE_SETS: [QuadSet; 10] = [
    QuadSet(0b0011), // 1: {a,b}
    QuadSet(0b0101), // 2: {a,c}
    QuadSet(0b1001), // 3: {a,d}
    QuadSet(0b1101), // 4: {a,c,d}
    QuadSet(0b1111), // 5: {a,b,c,d}
    QuadSet(0b0110), // 6: {b,c}
    QuadSet(0b1011), // 7: {a,b,d}
    QuadSet(0b1110), // 8: {b,c,d}
    QuadSet(0b0111), // 9: {a,b,c}
    QuadSet(0b0001), // 10: {a}
];

impl PositionCode {
    /// Code 1 (`{a, b}`), the first code of every element — the anchor of
    /// subtree value ranges.
    pub const P1: PositionCode = PositionCode(1);
    /// Number of codes available below the maximum resolution.
    pub const REGULAR_COUNT: u8 = 9;
    /// Number of codes at the maximum resolution (code 10 = `{a}` appears
    /// only there).
    pub const MAX_RES_COUNT: u8 = 10;

    /// Creates a code, validating the 1–10 range.
    pub fn new(code: u8) -> Option<PositionCode> {
        (1..=10).contains(&code).then_some(PositionCode(code))
    }

    /// The sub-quad combination this code denotes.
    pub fn quads(self) -> QuadSet {
        CODE_SETS[usize::from(self.0.saturating_sub(1)).min(CODE_SETS.len() - 1)]
    }

    /// The code for a quad set, if it is one of the ten feasible sets.
    pub fn from_quads(set: QuadSet) -> Option<PositionCode> {
        CODE_SETS
            .iter()
            .position(|&s| s == set)
            .and_then(|i| u8::try_from(i).ok())
            .map(|i| PositionCode(i + 1))
    }

    /// Whether a quad set is feasible: it must intersect the left column
    /// `{a, c}` and the bottom row `{a, b}` (see module docs).
    pub fn is_feasible(set: QuadSet) -> bool {
        !set.is_empty()
            && set.intersects(QuadSet::A.union(QuadSet::C))
            && set.intersects(QuadSet::A.union(QuadSet::B))
    }

    /// All codes valid at a resolution: 1–9 normally, 1–10 at the maximum
    /// resolution.
    pub fn all(at_max_resolution: bool) -> impl Iterator<Item = PositionCode> {
        let n = if at_max_resolution { 10 } else { 9 };
        (1..=n).map(PositionCode)
    }
}

/// Position codes that survive when the quads in `far` are all farther than
/// ε from the query (Lemma 10 at the granularity of whole elements): a code
/// survives iff none of its quads is far.
pub fn surviving_codes(far: QuadSet, at_max_resolution: bool) -> Vec<PositionCode> {
    PositionCode::all(at_max_resolution).filter(|c| !c.quads().intersects(far)).collect()
}

/// The §IV-B discussion's I/O-reduction fraction for a given far-quad set,
/// assuming trajectories uniform across the ten index spaces.
pub fn io_reduction(far: QuadSet) -> f64 {
    let surviving = surviving_codes(far, true).len();
    // At most 10 codes exist, so the count always fits losslessly.
    f64::from(10 - u8::try_from(surviving.min(10)).unwrap_or(10)) / 10.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_code_sets_are_feasible_and_distinct() {
        for (i, &s) in CODE_SETS.iter().enumerate() {
            assert!(PositionCode::is_feasible(s), "code {} infeasible", i + 1);
        }
        let mut sets = CODE_SETS.to_vec();
        sets.sort_by_key(|s| s.0);
        sets.dedup();
        assert_eq!(sets.len(), 10);
    }

    #[test]
    fn exactly_ten_feasible_sets_exist() {
        let feasible = (1u8..16).filter(|&m| PositionCode::is_feasible(QuadSet(m))).count();
        assert_eq!(feasible, 10);
        for m in 1u8..16 {
            let set = QuadSet(m);
            assert_eq!(
                PositionCode::is_feasible(set),
                PositionCode::from_quads(set).is_some(),
                "set {m:04b}"
            );
        }
    }

    #[test]
    fn roundtrip_code_quads() {
        for c in 1..=10u8 {
            let code = PositionCode::new(c).unwrap();
            assert_eq!(PositionCode::from_quads(code.quads()), Some(code));
        }
        assert!(PositionCode::new(0).is_none());
        assert!(PositionCode::new(11).is_none());
    }

    #[test]
    fn paper_example_quad_c_far() {
        // §IV-B: "quad-c far ⇒ do not extract codes 2, 4, 5, 6, 8, 9".
        let surviving = surviving_codes(QuadSet::C, true);
        let codes: Vec<u8> = surviving.iter().map(|c| c.0).collect();
        assert_eq!(codes, vec![1, 3, 7, 10]);
    }

    #[test]
    fn paper_example_quads_b_and_c_far() {
        // §IV-B: "if quad-b and quad-c are both away, except for position
        // codes 10 and 3, we can discard other index spaces".
        let surviving = surviving_codes(QuadSet::B.union(QuadSet::C), true);
        let codes: Vec<u8> = surviving.iter().map(|c| c.0).collect();
        assert_eq!(codes, vec![3, 10]);
    }

    #[test]
    fn paper_single_quad_reductions() {
        // §IV-B: a → 80 %, b → 60 %, c → 60 %, d → 50 %.
        assert_eq!(io_reduction(QuadSet::A), 0.8);
        assert_eq!(io_reduction(QuadSet::B), 0.6);
        assert_eq!(io_reduction(QuadSet::C), 0.6);
        assert_eq!(io_reduction(QuadSet::D), 0.5);
    }

    #[test]
    fn paper_pair_and_triple_reductions() {
        let pair = |x: QuadSet, y: QuadSet| io_reduction(x.union(y));
        assert_eq!(pair(QuadSet::A, QuadSet::B), 1.0);
        assert_eq!(pair(QuadSet::A, QuadSet::C), 1.0);
        assert_eq!(pair(QuadSet::A, QuadSet::D), 0.9);
        assert_eq!(pair(QuadSet::B, QuadSet::C), 0.8);
        assert_eq!(pair(QuadSet::B, QuadSet::D), 0.8);
        assert_eq!(pair(QuadSet::C, QuadSet::D), 0.8);
        let triple = |m: u8| io_reduction(QuadSet(m));
        assert_eq!(triple(0b0111), 1.0); // abc
        assert_eq!(triple(0b1011), 1.0); // abd
        assert_eq!(triple(0b1101), 1.0); // acd
        assert_eq!(triple(0b1110), 0.9); // bcd
    }

    #[test]
    fn paper_average_reduction_is_83_6_percent() {
        // §IV-B: "On average, we reduce I/O overhead by 83.6 %", averaging
        // the 4 singles, 6 pairs, and 4 triples.
        let mut total = 0.0;
        let mut count = 0;
        for m in 1u8..15 {
            let set = QuadSet(m);
            let quads = (0..4).filter(|i| m >> i & 1 == 1).count();
            if (1..=3).contains(&quads) {
                total += io_reduction(set);
                count += 1;
            }
        }
        assert_eq!(count, 14);
        let avg = total / count as f64;
        assert!((avg - 0.836).abs() < 0.001, "average = {avg}");
    }

    #[test]
    fn code_10_only_at_max_resolution() {
        assert_eq!(PositionCode::all(false).count(), 9);
        assert_eq!(PositionCode::all(true).count(), 10);
        assert!(!PositionCode::all(false).any(|c| c.0 == 10));
    }

    #[test]
    fn quadset_operations() {
        let ab = QuadSet::A.union(QuadSet::B);
        assert!(ab.contains(QuadSet::A));
        assert!(!ab.contains(QuadSet::C));
        assert!(ab.intersects(QuadSet::B.union(QuadSet::D)));
        assert!(!ab.intersects(QuadSet::C.union(QuadSet::D)));
        assert_eq!(ab.iter().count(), 2);
        assert_eq!(QuadSet::C.quad_index(), Some(2));
        assert_eq!(ab.quad_index(), None);
    }
}
