//! Global pruning (§V-C, Algorithm 1).
//!
//! Given a query trajectory and a threshold ε, global pruning walks the
//! element tree from the root and produces the index values whose spaces
//! could still contain similar trajectories:
//!
//! * **Lemmas 6–7** bound the useful resolutions to `[MinR, MaxR]`:
//!   elements much larger or much smaller than the query cannot hold
//!   similar trajectories.
//! * **Lemma 8** prunes subtrees whose enlarged element misses
//!   `Ext(Q.MBR, ε)` entirely.
//! * **Lemma 9** prunes subtrees by `minDistEE` (Definition 10): the
//!   largest, over the query MBR's four edges, of the minimum distance from
//!   that edge to the element — a lower bound on the similarity distance,
//!   monotone down the tree.
//! * **Lemma 10** drops position codes containing a sub-quad farther than ε
//!   from the query's point set.
//! * **Lemma 11** drops index spaces by `minDistIS` (Definition 11), the
//!   edge-based bound against the code's quad union.
//!
//! Lemmas are evaluated cheap-first, exactly as §V-E prescribes.

use super::position_code::{PositionCode, QuadSet};
use super::{IndexSpace, XzStar};
use crate::quad::Cell;
use crate::ranges::{coalesce, ValueRange};
use std::collections::VecDeque;
use trass_geo::{Mbr, OrientedBox, Point};

/// Absolute slack added to every rejection comparison: pruning may only
/// drop a space when the lower bound *certainly* exceeds ε, and oriented
/// box arithmetic leaves ~1e-16 residue that would otherwise break exact
/// (ε = 0) queries.
pub(crate) const PRUNE_SLACK: f64 = 1e-12;

/// Tuning and ablation switches for global pruning.
#[derive(Debug, Clone, Copy)]
pub struct PruningConfig {
    /// Coalescing gap when turning values into scan ranges (0 = only merge
    /// strictly adjacent values).
    pub range_gap: u64,
    /// Apply position-code filtering (Lemmas 10–11). Disabling reduces XZ\*
    /// to element-granularity pruning — the ablation of §VI-D.
    pub use_position_codes: bool,
    /// Apply the distance bounds (Lemmas 9 and 11). Disabling leaves only
    /// intersection tests (Lemma 8) and the resolution band.
    pub use_min_dist: bool,
    /// Traversal budget in visited elements. Pathological queries (ε on
    /// the order of the whole space) would otherwise visit an exponential
    /// number of elements; past the budget, remaining subtrees are emitted
    /// as whole contiguous value ranges — a sound superset that trades
    /// scan precision for bounded planning time.
    pub node_budget: usize,
}

impl Default for PruningConfig {
    fn default() -> Self {
        PruningConfig {
            range_gap: 0,
            use_position_codes: true,
            use_min_dist: true,
            node_budget: 1 << 16,
        }
    }
}

/// Pre-computed per-query state shared by threshold and top-k search.
#[derive(Debug, Clone)]
pub struct QueryContext {
    /// Query MBR in unit space.
    pub mbr: Mbr,
    /// `Ext(Q.MBR, ε)` (Definition 7).
    pub ext_mbr: Mbr,
    /// Query points in unit space.
    pub points: Vec<Point>,
    /// Threshold in unit space.
    pub eps: f64,
    /// Lemma 6 resolution floor.
    pub min_r: u8,
    /// Lemma 7 resolution ceiling.
    pub max_r: u8,
    /// Covering boxes of the query (a coarse Douglas-Peucker pass): every
    /// query point lies inside their union, so a distance to the union
    /// lower-bounds the distance to the point set. Lemma 10 evaluates
    /// against these instead of the raw points — same soundness, O(boxes)
    /// instead of O(points) per sub-quad.
    pub cover_boxes: Vec<OrientedBox>,
}

impl QueryContext {
    /// Builds the context for unit-space query points and threshold.
    ///
    /// # Panics
    /// Panics if `points` is empty or `eps` is negative/NaN.
    pub fn new(index: &XzStar, points: Vec<Point>, eps: f64) -> Self {
        assert!(!points.is_empty(), "empty query trajectory");
        assert!(eps >= 0.0, "negative or NaN threshold");
        let Some(mbr) = Mbr::from_points(points.iter()) else {
            unreachable!("asserted non-empty just above")
        };
        let ext_mbr = mbr.extended(eps);
        let min_r = index.sequence_length(&ext_mbr);
        let max_r = max_resolution_bound(index, &mbr, eps);
        // Tolerance floor at a quarter of the finest cell: finer boxes buy
        // no pruning power and explode the box count for tiny ε.
        let theta = (eps / 4.0).max(0.5f64.powi(i32::from(index.max_resolution())) / 4.0);
        let cover_boxes = cover_boxes(&points, theta);
        QueryContext { mbr, ext_mbr, points, eps, min_r, max_r, cover_boxes }
    }
}

/// Builds a small set of oriented boxes covering every point of `points`,
/// via a coarse Douglas-Peucker pass at tolerance `theta` (callers keep
/// the slack well below their pruning threshold).
pub(crate) fn cover_boxes(points: &[Point], theta: f64) -> Vec<OrientedBox> {
    if points.len() < 2 {
        return Vec::new();
    }
    let rep = crate::dp_lite::douglas_peucker(points, theta.max(1e-12));
    let mut boxes = Vec::with_capacity(rep.len().saturating_sub(1));
    for w in rep.windows(2) {
        let (s, e) = (w[0] as usize, w[1] as usize); // trass-lint: allow(cast) u32 → usize widening
        if let Some(b) = OrientedBox::from_points_along(points[s], points[e], &points[s..=e]) {
            boxes.push(b);
        }
    }
    boxes
}

/// Lemma 10 distance: a lower bound on `min_{q ∈ Q} d(q, rect)`, computed
/// against the query's covering boxes (or the raw points when no boxes
/// exist). Marking a quad "far" requires certainty that the true distance
/// exceeds ε; a lower bound gives exactly that.
pub(crate) fn query_dist_to_rect_lb(ctx: &QueryContext, rect: &Mbr) -> f64 {
    if ctx.cover_boxes.is_empty() {
        return min_point_dist_to_rect(&ctx.points, rect);
    }
    let rect_box = OrientedBox::from_mbr(rect);
    ctx.cover_boxes.iter().map(|b| b.distance_to_box(&rect_box)).fold(f64::INFINITY, f64::min)
}

/// Definition 9 / Lemma 7: the largest resolution whose enlarged elements
/// can still hold trajectories similar to a query with the given MBR.
pub(crate) fn max_resolution_bound(index: &XzStar, query_mbr: &Mbr, eps: f64) -> u8 {
    let r = index.max_resolution();
    if !eps.is_finite() {
        return r;
    }
    // Need an EE of size 2·0.5^res with (max_dim − 2·0.5^res)/2 ≤ ε,
    // i.e. 0.5^res ≥ t where t = max_dim/2 − ε.
    let t = query_mbr.width().max(query_mbr.height()) / 2.0 - eps;
    if t <= 0.0 {
        return r;
    }
    let mut max_r = (t.ln() / 0.5f64.ln()).floor();
    if max_r < 0.0 {
        return 0;
    }
    if max_r >= f64::from(r) {
        return r;
    }
    // Guard the floating-point floor against boundary error. The float is
    // in [0, r) here, so the truncating casts below are exact.
    // trass-lint: allow(cast)
    while max_r > 0.0 && 0.5f64.powi(max_r as i32) < t {
        max_r -= 1.0;
    }
    max_r as u8 // trass-lint: allow(cast)
}

/// Definition 10: `minDistEE` — the largest, over the four edges of the
/// query MBR, of the minimum distance from that edge to `region`. Each MBR
/// edge is guaranteed to carry a trajectory point, so this lower-bounds the
/// similarity distance to any trajectory inside `region` (Lemma 9).
pub fn min_dist_ee(query_mbr: &Mbr, region: &Mbr) -> f64 {
    query_mbr.edges().iter().map(|edge| region.distance_to_segment(edge)).fold(0.0f64, f64::max)
}

/// Definition 11: `minDistIS` against a union of rectangles (the quads of
/// one index space).
pub fn min_dist_is(query_mbr: &Mbr, rects: &[Mbr]) -> f64 {
    query_mbr
        .edges()
        .iter()
        .map(|edge| rects.iter().map(|r| r.distance_to_segment(edge)).fold(f64::INFINITY, f64::min))
        .fold(0.0f64, f64::max)
}

/// Lemma 10 helper: minimum distance from the query's *point set* to a
/// rectangle.
pub(crate) fn min_point_dist_to_rect(points: &[Point], rect: &Mbr) -> f64 {
    points.iter().map(|p| rect.distance_sq_to_point(p)).fold(f64::INFINITY, f64::min).sqrt()
}

/// Per-query pruning outcome counters: how many elements each lemma
/// killed, how many position codes were dropped, and what was emitted.
/// Filled by [`GlobalPruning::query_ranges_stats`]; feeds trace spans and
/// ablation reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Elements that survived lemmas 8–9 and were expanded.
    pub visited: u64,
    /// Subtrees dropped by the lemma 8 intersection test.
    pub lemma8_pruned: u64,
    /// Subtrees dropped by the lemma 9 `minDistEE` bound.
    pub lemma9_pruned: u64,
    /// Position codes dropped by the lemma 10 far-quad test.
    pub lemma10_codes_pruned: u64,
    /// Position codes dropped by the lemma 11 `minDistIS` bound.
    pub lemma11_codes_pruned: u64,
    /// Index values emitted as candidates.
    pub codes_emitted: u64,
    /// Subtrees emitted whole because the traversal budget ran out.
    pub spilled_subtrees: u64,
    /// Wall-clock time of the traversal plus range coalescing. Pruning
    /// runs single-threaded on the query thread; this is its share of the
    /// per-worker timing the query stats break down.
    pub elapsed: std::time::Duration,
}

/// The global pruning engine.
#[derive(Debug, Clone, Copy)]
pub struct GlobalPruning<'a> {
    index: &'a XzStar,
    config: PruningConfig,
}

impl<'a> GlobalPruning<'a> {
    /// Creates a pruning engine over `index`.
    pub fn new(index: &'a XzStar, config: PruningConfig) -> Self {
        GlobalPruning { index, config }
    }

    /// Algorithm 1: the candidate index values for a query context,
    /// unsorted. Exact (no traversal budget) — prefer
    /// [`GlobalPruning::query_ranges`] in query paths.
    pub fn query_values(&self, q: &QueryContext) -> Vec<u64> {
        let (values, spill) = self.traverse(q, usize::MAX, &mut PruneStats::default());
        debug_assert!(spill.is_empty());
        values
    }

    /// Candidate values coalesced into contiguous scan ranges, respecting
    /// the traversal budget.
    pub fn query_ranges(&self, q: &QueryContext) -> Vec<ValueRange> {
        self.query_ranges_stats(q).0
    }

    /// [`GlobalPruning::query_ranges`] plus per-lemma pruning counters.
    pub fn query_ranges_stats(&self, q: &QueryContext) -> (Vec<ValueRange>, PruneStats) {
        let t0 = std::time::Instant::now();
        let mut stats = PruneStats::default();
        let (values, mut ranges) = self.traverse(q, self.config.node_budget, &mut stats);
        ranges.extend(coalesce(values, self.config.range_gap));
        ranges.sort_by_key(|r| r.start);
        let mut out: Vec<ValueRange> = Vec::new();
        for r in ranges {
            match out.last_mut() {
                Some(last) if r.start <= last.end.saturating_add(self.config.range_gap + 1) => {
                    last.end = last.end.max(r.end);
                }
                _ => out.push(r),
            }
        }
        stats.elapsed = t0.elapsed();
        (out, stats)
    }

    /// BFS core: returns exact candidate values plus whole-subtree spill
    /// ranges for anything past `budget` visited elements.
    fn traverse(
        &self,
        q: &QueryContext,
        budget: usize,
        stats: &mut PruneStats,
    ) -> (Vec<u64>, Vec<ValueRange>) {
        let mut out = Vec::new();
        let mut spill = Vec::new();
        let mut visited = 0usize;
        let mut queue = VecDeque::new();
        queue.push_back(Cell::ROOT);
        while let Some(cell) = queue.pop_front() {
            let ee = cell.enlarged();
            // Lemma 8 (cheap intersection), then Lemma 9 (edge distances).
            if !ee.intersects(&q.ext_mbr) {
                stats.lemma8_pruned += 1;
                continue;
            }
            if self.config.use_min_dist && min_dist_ee(&q.mbr, &ee) > q.eps + PRUNE_SLACK {
                stats.lemma9_pruned += 1;
                continue;
            }
            visited += 1;
            if visited > budget {
                // Sound fallback: the whole subtree as one scan range.
                let (start, end) = self.index.subtree_range(&cell);
                spill.push(ValueRange { start, end });
                stats.spilled_subtrees += 1;
                continue;
            }
            stats.visited += 1;
            if cell.level >= q.min_r && cell.level <= q.max_r {
                self.emit_codes(&cell, q, &mut out, stats);
            }
            if cell.level < q.max_r && cell.level < self.index.max_resolution() {
                queue.extend(cell.children());
            }
        }
        stats.codes_emitted += u64::try_from(out.len()).unwrap_or(u64::MAX);
        (out, spill)
    }

    fn emit_codes(
        &self,
        cell: &Cell,
        q: &QueryContext,
        out: &mut Vec<u64>,
        stats: &mut PruneStats,
    ) {
        let rects = XzStar::quad_rects(cell);
        let at_max = cell.level == self.index.max_resolution();
        // Lemma 10: which quads are too far from the query's points?
        let far = if self.config.use_position_codes {
            let mut far = QuadSet::EMPTY;
            for (i, rect) in rects.iter().enumerate() {
                if query_dist_to_rect_lb(q, rect) > q.eps + PRUNE_SLACK {
                    far = far.union(QuadSet(1 << i));
                }
            }
            far
        } else {
            QuadSet::EMPTY
        };
        for code in PositionCode::all(at_max) {
            if self.config.use_position_codes {
                if code.quads().intersects(far) {
                    stats.lemma10_codes_pruned += 1;
                    continue; // Lemma 10
                }
                if self.config.use_min_dist {
                    let is_rects: Vec<Mbr> = code
                        .quads()
                        .iter()
                        .filter_map(|s| s.quad_index().map(|i| rects[i]))
                        .collect();
                    if min_dist_is(&q.mbr, &is_rects) > q.eps + PRUNE_SLACK {
                        stats.lemma11_codes_pruned += 1;
                        continue; // Lemma 11
                    }
                }
            }
            out.push(self.index.encode(&IndexSpace { cell: *cell, code }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn min_dist_ee_zero_when_mbr_inside() {
        let q = Mbr::new(0.3, 0.3, 0.4, 0.4);
        let region = Mbr::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(min_dist_ee(&q, &region), 0.0);
    }

    #[test]
    fn min_dist_ee_for_centered_small_region() {
        // Fig. 6(b): a small EE centered in the query MBR leaves the MBR's
        // edges at distance (dim - ee_dim) / 2.
        let q = Mbr::new(0.0, 0.0, 1.0, 1.0);
        let ee = Mbr::new(0.4, 0.4, 0.6, 0.6);
        let d = min_dist_ee(&q, &ee);
        assert!((d - 0.4).abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn min_dist_ee_for_far_region() {
        let q = Mbr::new(0.0, 0.0, 0.1, 0.1);
        let ee = Mbr::new(0.5, 0.0, 0.6, 0.1);
        // Every edge of q is at least 0.4 away horizontally; the left edge
        // is 0.5 away.
        let d = min_dist_ee(&q, &ee);
        assert!((d - 0.5).abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn min_dist_is_uses_union() {
        let q = Mbr::new(0.0, 0.0, 0.2, 0.2);
        let near = Mbr::new(0.25, 0.0, 0.3, 0.2);
        let far = Mbr::new(0.9, 0.9, 1.0, 1.0);
        // With both rects, each edge's distance is to the nearest rect.
        let with_near = min_dist_is(&q, &[near, far]);
        let only_far = min_dist_is(&q, &[far]);
        assert!(with_near < only_far);
    }

    #[test]
    fn max_resolution_bound_cases() {
        let index = XzStar::new(16);
        // Point query: no lower size bound → full depth.
        let point = Mbr::new(0.5, 0.5, 0.5, 0.5);
        assert_eq!(max_resolution_bound(&index, &point, 0.001), 16);
        // Large query, tiny eps: deep elements are impossible.
        let big = Mbr::new(0.0, 0.0, 0.5, 0.5);
        let bound = max_resolution_bound(&index, &big, 1e-6);
        assert!(bound <= 3, "bound = {bound}");
        // EE at the bound really is big enough; one deeper is not.
        let t = 0.25 - 1e-6;
        assert!(0.5f64.powi(bound as i32) >= t);
        assert!(0.5f64.powi(bound as i32 + 1) < t);
        // Infinite eps → unbounded.
        assert_eq!(max_resolution_bound(&index, &big, f64::INFINITY), 16);
    }

    #[test]
    fn query_band_always_contains_query_own_space() {
        // MinR <= L_Q <= MaxR must hold, else the query's twin would be
        // missed (soundness argument in DESIGN.md).
        let index = XzStar::new(16);
        let shapes = [
            pts(&[(0.2, 0.2), (0.21, 0.23), (0.22, 0.2)]),
            pts(&[(0.1, 0.1), (0.4, 0.45)]),
            pts(&[(0.5, 0.5)]),
            pts(&[(0.01, 0.01), (0.9, 0.95)]),
        ];
        for points in shapes {
            for eps in [0.0, 1e-5, 1e-3, 0.05] {
                let q = QueryContext::new(&index, points.clone(), eps);
                let own = index.index_points(&points);
                assert!(
                    q.min_r <= own.cell.level && own.cell.level <= q.max_r,
                    "band [{}, {}] misses own level {} (eps {eps})",
                    q.min_r,
                    q.max_r,
                    own.cell.level
                );
            }
        }
    }

    #[test]
    fn pruning_always_keeps_identical_trajectory() {
        // Soundness: the query's own index value must survive pruning.
        let index = XzStar::new(12);
        let pruner = GlobalPruning::new(&index, PruningConfig::default());
        let shapes = [
            pts(&[(0.31, 0.42), (0.33, 0.45), (0.36, 0.41)]),
            pts(&[(0.7, 0.1), (0.7, 0.3)]),
            pts(&[(0.111, 0.222)]),
            pts(&[(0.05, 0.05), (0.5, 0.06), (0.9, 0.05)]),
        ];
        for points in shapes {
            for eps in [0.0, 1e-4, 0.01] {
                let own = index.encode(&index.index_points(&points));
                let q = QueryContext::new(&index, points.clone(), eps);
                let values = pruner.query_values(&q);
                assert!(
                    values.contains(&own),
                    "own value {own} pruned (eps {eps}, points {points:?})"
                );
            }
        }
    }

    #[test]
    fn pruning_excludes_far_spaces() {
        let index = XzStar::new(10);
        let pruner = GlobalPruning::new(&index, PruningConfig::default());
        let query = pts(&[(0.1, 0.1), (0.12, 0.12)]);
        let q = QueryContext::new(&index, query, 0.001);
        let values = pruner.query_values(&q);
        // A trajectory in the far corner must not be in the candidate set.
        let far = index.encode(&index.index_points(&pts(&[(0.9, 0.9), (0.92, 0.92)])));
        assert!(!values.contains(&far));
        // Candidate count is a tiny fraction of the total space.
        assert!((values.len() as u64) < index.total_values() / 1000, "{} candidates", values.len());
    }

    #[test]
    fn position_codes_tighten_the_candidate_set() {
        let index = XzStar::new(10);
        let full = GlobalPruning::new(&index, PruningConfig::default());
        let no_codes = GlobalPruning::new(
            &index,
            PruningConfig { use_position_codes: false, ..PruningConfig::default() },
        );
        let query = pts(&[(0.31, 0.42), (0.33, 0.45), (0.36, 0.41)]);
        let q = QueryContext::new(&index, query, 0.002);
        let tight = full.query_values(&q);
        let loose = no_codes.query_values(&q);
        assert!(tight.len() < loose.len(), "tight {} loose {}", tight.len(), loose.len());
        // The tight set is a subset of the loose one.
        let loose_set: std::collections::HashSet<u64> = loose.into_iter().collect();
        assert!(tight.iter().all(|v| loose_set.contains(v)));
    }

    #[test]
    fn larger_eps_never_shrinks_candidates() {
        let index = XzStar::new(10);
        let pruner = GlobalPruning::new(&index, PruningConfig::default());
        let query = pts(&[(0.25, 0.25), (0.27, 0.28), (0.3, 0.26)]);
        let mut prev: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for eps in [1e-5, 1e-4, 1e-3, 1e-2] {
            let q = QueryContext::new(&index, query.clone(), eps);
            let values: std::collections::HashSet<u64> =
                pruner.query_values(&q).into_iter().collect();
            assert!(prev.is_subset(&values), "candidates lost when eps grew to {eps}");
            prev = values;
        }
    }

    #[test]
    fn ranges_cover_all_values() {
        let index = XzStar::new(10);
        let pruner = GlobalPruning::new(&index, PruningConfig::default());
        let query = pts(&[(0.4, 0.4), (0.42, 0.44)]);
        let q = QueryContext::new(&index, query, 0.005);
        let values = pruner.query_values(&q);
        let ranges = pruner.query_ranges(&q);
        for v in &values {
            assert!(ranges.iter().any(|r| r.contains(*v)), "value {v} lost");
        }
        // Ranges are fewer than values (encoding continuity pays off).
        assert!(ranges.len() <= values.len());
    }

    #[test]
    fn huge_trajectory_stays_retrievable() {
        // A trajectory spanning most of the space lands at level 1 (a
        // level-1 enlarged element anchored at the lower-left cell covers
        // the whole unit square, so level 0 never occurs for clamped
        // inputs) and must be discoverable by an equally huge query.
        let index = XzStar::new(8);
        let pruner = GlobalPruning::new(&index, PruningConfig::default());
        let giant = pts(&[(0.05, 0.05), (0.5, 0.6), (0.95, 0.9)]);
        let own_space = index.index_points(&giant);
        assert!(own_space.cell.level <= 1, "level {}", own_space.cell.level);
        let own = index.encode(&own_space);
        let q = QueryContext::new(&index, giant, 0.01);
        assert!(pruner.query_values(&q).contains(&own));
    }

    #[test]
    #[should_panic(expected = "empty query")]
    fn empty_query_rejected() {
        QueryContext::new(&XzStar::new(8), vec![], 0.1);
    }

    #[test]
    fn prune_stats_account_for_the_traversal() {
        let index = XzStar::new(10);
        let pruner = GlobalPruning::new(&index, PruningConfig::default());
        let query = pts(&[(0.31, 0.42), (0.33, 0.45), (0.36, 0.41)]);
        let q = QueryContext::new(&index, query, 0.002);
        let (ranges, stats) = pruner.query_ranges_stats(&q);
        assert!(!ranges.is_empty());
        assert!(stats.visited > 0);
        // A small query in a deep tree must prune something somewhere.
        assert!(stats.lemma8_pruned + stats.lemma9_pruned > 0, "{stats:?}");
        assert!(stats.lemma10_codes_pruned + stats.lemma11_codes_pruned > 0, "{stats:?}");
        assert!(stats.codes_emitted > 0);
        assert_eq!(stats.spilled_subtrees, 0);
        // The stats-carrying path returns the same plan as the plain one.
        assert_eq!(ranges, pruner.query_ranges(&q));
    }

    #[test]
    fn prune_stats_record_budget_spills() {
        let index = XzStar::new(10);
        let pruner = GlobalPruning::new(
            &index,
            PruningConfig { node_budget: 4, ..PruningConfig::default() },
        );
        // A whole-space threshold visits far more than 4 elements.
        let query = pts(&[(0.1, 0.1), (0.6, 0.7)]);
        let q = QueryContext::new(&index, query, 0.5);
        let (_, stats) = pruner.query_ranges_stats(&q);
        assert!(stats.spilled_subtrees > 0, "{stats:?}");
        assert!(stats.visited <= 4);
    }
}
